#!/usr/bin/env python
"""Dependency-free lint pass: unused imports, duplicate imports, bare prints.

The container has no third-party linter, so this covers the checks the repo
actually relies on in CI:

* **unused imports** — a name imported at module level that is never read
  anywhere in the module (attribute roots count; ``__all__`` strings count;
  names re-exported by ``__init__`` modules via ``__all__`` count);
* **duplicate imports** — the same name imported twice at module level;
* **per-tuple loops in engine hot sections** — a ``for`` statement binding
  a ``row`` (or iterating ``.rows()``) inside the matching-engine modules
  and the chase trigger-application paths (``engine/matching.py``,
  ``engine/columnar.py``, ``engine/triggers.py``, ``datalog/chase.py``,
  ``datalog/seminaive.py``, ``relational/csvio.py``): the columnar engine
  and the batched trigger path exist so that relation-sized iteration
  happens in batch kernels, not in Python loops.  Loops that are genuinely
  per-tuple-sized (delta rows, result rows) or deliberately row-at-a-time
  (the naive oracle, batch-ineligible fallbacks) carry a
  ``# per-tuple: ok — <reason>`` comment on the loop line or the line
  above, which suppresses the check;
* **un-floored wall-clock assertions in tests and benchmarks** — an
  ``assert`` comparing a timing-derived value (anything computed from
  ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``,
  tracked through assignments) against a bare numeric literal.  Loaded CI
  runners make such assertions flaky; compare against a noise-floored
  budget (``max(FLOOR, ratio * baseline)``) or a named budget variable
  instead, or annotate ``# wall-clock: ok — <reason>`` on the assert line
  or the line above;
* **syntax errors** — files that do not parse at all.

Usage::

    python tools/lint.py src [more dirs...]

Exit status is non-zero when any issue is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple


def _imported_names(tree: ast.Module) -> List[Tuple[str, int]]:
    """(bound name, line) for every module-level import."""
    names: List[Tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                names.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                names.append((bound, node.lineno))
    return names


def _used_names(tree: ast.Module) -> Set[str]:
    """Every identifier read anywhere in the module (plus __all__ strings)."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for element in ast.walk(node.value):
                        if isinstance(element, ast.Constant) and isinstance(element.value, str):
                            used.add(element.value)
    return used


#: modules whose inner loops are the engine hot path (see module docstring)
HOT_MODULES = ("engine/matching.py", "engine/columnar.py",
               "engine/triggers.py", "datalog/chase.py",
               "datalog/seminaive.py", "relational/csvio.py")
SUPPRESS = "# per-tuple: ok"


def _binds_row(target: ast.AST) -> bool:
    return any(isinstance(node, ast.Name) and node.id == "row"
               for node in ast.walk(target))


def _iterates_rows(iterated: ast.AST) -> bool:
    return (isinstance(iterated, ast.Call)
            and isinstance(iterated.func, ast.Attribute)
            and iterated.func.attr == "rows")


def _per_tuple_loops(path: Path, tree: ast.Module,
                     lines: List[str]) -> Iterator[str]:
    if not str(path).replace("\\", "/").endswith(HOT_MODULES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.For):
            continue
        if not (_binds_row(node.target) or _iterates_rows(node.iter)):
            continue
        nearby = lines[max(node.lineno - 2, 0):node.lineno]
        if any(SUPPRESS in line for line in nearby):
            continue
        yield (f"{path}:{node.lineno}: per-tuple row loop in an engine hot "
               f"section (batch it, or annotate '{SUPPRESS} — <reason>')")


#: directories whose files carry timing assertions worth floor-checking
WALL_CLOCK_ROOTS = ("tests/", "benchmarks/")
WALL_SUPPRESS = "# wall-clock: ok"
_TIMING_ATTRS = {"time", "monotonic", "perf_counter"}


def _is_timing_call(node: ast.AST) -> bool:
    """``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``
    (module-qualified or imported bare)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (func.attr in _TIMING_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time")
    return (isinstance(func, ast.Name)
            and func.id in ("monotonic", "perf_counter"))


def _expr_tainted(expr: ast.AST, tainted: Set[str]) -> bool:
    return any(_is_timing_call(node)
               or (isinstance(node, ast.Name) and node.id in tainted)
               for node in ast.walk(expr))


def _tainted_names(tree: ast.Module) -> Set[str]:
    """Names whose values derive (transitively) from a timing call."""
    assigns = [node for node in ast.walk(tree)
               if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign))
               and node.value is not None]
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in assigns:
            if not _expr_tainted(node.value, tainted):
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name) and name.id not in tainted:
                        tainted.add(name.id)
                        changed = True
    return tainted


def _is_bare_number(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _unfloored_wall_clock_asserts(path: Path, tree: ast.Module,
                                  lines: List[str]) -> Iterator[str]:
    normalized = str(path).replace("\\", "/")
    if not any(root in normalized for root in WALL_CLOCK_ROOTS):
        return
    tainted = _tainted_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assert):
            continue
        compares = [inner for inner in ast.walk(node.test)
                    if isinstance(inner, ast.Compare)]
        if not any(
                _expr_tainted(timing, tainted) and _is_bare_number(literal)
                for compare in compares
                for left, right in zip([compare.left] + compare.comparators,
                                       compare.comparators)
                for timing, literal in ((left, right), (right, left))):
            continue
        nearby = lines[max(node.lineno - 2, 0):node.lineno]
        if any(WALL_SUPPRESS in line for line in nearby):
            continue
        yield (f"{path}:{node.lineno}: wall-clock delta asserted against a "
               f"bare numeric literal (noise-floor it with a "
               f"max(FLOOR, ...) budget, or annotate "
               f"'{WALL_SUPPRESS} — <reason>')")


def lint_file(path: Path) -> Iterator[str]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        yield f"{path}:{error.lineno}: syntax error: {error.msg}"
        return
    yield from _per_tuple_loops(path, tree, source.splitlines())
    yield from _unfloored_wall_clock_asserts(path, tree, source.splitlines())
    imported = _imported_names(tree)
    used = _used_names(tree)
    seen: Set[str] = set()
    for name, lineno in imported:
        if name in seen:
            yield f"{path}:{lineno}: duplicate import {name!r}"
        seen.add(name)
        if name == "annotations":
            continue
        if name not in used:
            yield f"{path}:{lineno}: unused import {name!r}"


def main(argv: List[str]) -> int:
    roots = [Path(arg) for arg in (argv or ["src"])]
    issues: List[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            checked += 1
            issues.extend(lint_file(path))
    for issue in issues:
        print(issue)
    print(f"lint: {checked} files checked, {len(issues)} issues", file=sys.stderr)
    return 1 if issues else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
