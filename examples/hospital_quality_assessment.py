"""The paper's running example, end to end (Examples 1, 4, 7; Tables I and II).

The script

1. loads the Hospital/Time dimensions, the categorical relations of Fig. 1
   and the ``Measurements`` table (Table I);
2. builds the MD ontology with dimensional rules (7)-(9) and constraint (6);
3. builds the Example-7 quality context (``TakenByNurse``, ``TakenWithTherm``,
   the quality version ``Measurements_q``);
4. materializes the quality version of ``Measurements`` — which comes out as
   Table II of the paper — and answers the doctor's query through it;
5. reports the data-quality measures and the effect of the closure
   constraint of Example 1.

Run with::

    python examples/hospital_quality_assessment.py
"""

from __future__ import annotations

from repro.hospital import HospitalScenario, build_ontology
from repro.quality.cleaning import compare_answers


def main() -> None:
    scenario = HospitalScenario()

    print("== the instance under assessment (Table I) ==")
    print(scenario.measurements.relation("Measurements").pretty())

    print("\n== ontology analysis (Section III claims) ==")
    for key, value in scenario.ontology.analysis().summary().items():
        print(f"  {key:>15}: {value}")

    print("\n== quality version of Measurements (expected: Table II) ==")
    print(scenario.quality_measurements().pretty())

    print("\n== the doctor's query ==")
    print("  direct answers (no context):")
    comparison = compare_answers(
        scenario.context, scenario.measurements,
        "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
    for row in comparison.direct:
        print(f"    {row}")
    print("  quality answers (through the MD context):")
    for row in comparison.quality:
        print(f"    {row}")
    print(f"  {comparison}")

    print("\n== doctor's query restricted to Sep/5 around noon (Example 7) ==")
    for row in scenario.quality_answers_to_doctor_query():
        print(f"  {row}")

    print("\n== quality assessment of the instance ==")
    print(scenario.assess())

    print("\n== live update: two new measurements arrive (incremental chase) ==")
    update = scenario.record_measurements([
        ("Sep/5-12:10", "Lou Reed", 37.0),
        ("Sep/6-11:50", "Lou Reed", 36.5),
    ])
    print(f"  strategy: {update.strategy}, triggers fired: {update.steps}, "
          f"touched: {sorted(update.changed_predicates or [])}")
    print("  re-assessment (only touched relations recomputed):")
    print("  " + str(scenario.assess()).replace("\n", "\n  "))
    session = scenario.session()
    print(f"  session caches: {session.stats.cache_hits} hits / "
          f"{session.stats.cache_misses} misses; updates: "
          f"{session.materialized.stats.incremental_updates} incremental, "
          f"{session.materialized.stats.full_rechases} full re-chases")

    print("\n== Example 1's closure constraint (intensive care closed) ==")
    constrained = build_ontology(include_closure_constraints=True)
    result = constrained.check_consistency()
    if result.is_consistent:
        print("  no violation found")
    else:
        for violation in result.violations:
            print(f"  {violation}")


if __name__ == "__main__":
    main()
