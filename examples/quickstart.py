"""Quickstart: build a small multidimensional ontology and ask it questions.

This example builds a two-level Store dimension (Store → City), a sales
categorical relation at the Store level, adds one upward-navigation
dimensional rule (the analogue of the paper's rule (7)), and then answers a
query at the City level — data the database never stored explicitly.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.md import DimensionBuilder, MDModelBuilder
from repro.ontology import MDOntology


def build_ontology() -> MDOntology:
    """A tiny retail ontology: stores roll up to cities."""
    store_dimension = (
        DimensionBuilder("Location")
        .category_chain("Store", "City", "Country")
        .member_edge("Store", "S1", "City", "Ottawa")
        .member_edge("Store", "S2", "City", "Ottawa")
        .member_edge("Store", "S3", "City", "Toronto")
        .member_edge("City", "Ottawa", "Country", "Canada")
        .member_edge("City", "Toronto", "Country", "Canada")
        .build()
    )

    md = (
        MDModelBuilder()
        .dimension(store_dimension)
        .relation("StoreSales",
                  categorical=[("Store", "Location", "Store")],
                  non_categorical=["Product", "Amount"],
                  rows=[
                      ("S1", "espresso", 120),
                      ("S1", "croissant", 80),
                      ("S2", "espresso", 45),
                      ("S3", "espresso", 300),
                  ])
        .relation("CitySales",
                  categorical=[("City", "Location", "City")],
                  non_categorical=["Product", "Amount"])
        .build()
    )

    ontology = MDOntology(md)
    # Upward navigation (the paper's rule (7) shape): sales reported per
    # store are also sales of the store's city.
    ontology.add_rule(
        "CitySales(City, Product, Amount) :- StoreSales(Store, Product, Amount), "
        "CityStore(City, Store).",
        label="store-to-city roll-up")
    return ontology


def main() -> None:
    ontology = build_ontology()

    print("== ontology analysis ==")
    for key, value in ontology.analysis().summary().items():
        print(f"  {key:>15}: {value}")

    print("\n== certain answers: espresso sales at the City level ==")
    answers = ontology.certain_answers(
        "?(City, Amount) :- CitySales(City, 'espresso', Amount).")
    for city, amount in answers:
        print(f"  {city}: {amount}")

    print("\n== the same query through first-order rewriting (no chase) ==")
    rewriting = ontology.rewrite("?(City, Amount) :- CitySales(City, 'espresso', Amount).")
    print(f"  UCQ rewriting size: {len(rewriting)} conjunctive queries")
    for row in rewriting.evaluate(ontology.program().database):
        print(f"  {row}")

    print("\n== boolean query via the deterministic WS algorithm ==")
    print("  Ottawa sold croissants:",
          ontology.ws_holds("? :- CitySales('Ottawa', 'croissant', A)."))
    print("  Toronto sold croissants:",
          ontology.ws_holds("? :- CitySales('Toronto', 'croissant', A)."))


if __name__ == "__main__":
    main()
