"""Constraint-driven cleaning: discarding the tuples Example 1 says to discard.

The closure constraint of Example 1 ("no patient was in the intensive care
unit after August 2005") is violated by one reconstructed ``PatientWard``
tuple.  Quality *query answering* simply avoids the bad data; this example
shows the complementary *cleaning* action: repair the categorical relations
by removing the offending tuples, then re-run the assessment on the cleaned
ontology.

Run with::

    python examples/constraint_repair_cleaning.py
"""

from __future__ import annotations

from repro.hospital import build_md_instance, build_ontology
from repro.quality import repair_md_instance
from repro.reporting import render_analysis, render_relation, render_validation
from repro.md.validation import validate_md_instance


def main() -> None:
    ontology = build_ontology(include_closure_constraints=True)

    print("== PatientWard before cleaning ==")
    print(render_relation(ontology.md.relation("PatientWard")))

    print("\n== constraint check ==")
    result = ontology.check_consistency()
    for violation in result.violations:
        print(f"  {violation}")

    print("\n== repairing the MD instance ==")
    report = repair_md_instance(ontology)
    print(report)

    print("\n== PatientWard after cleaning ==")
    print(render_relation(ontology.md.relation("PatientWard")))

    print("\n== consistency after cleaning ==")
    print("  consistent:", ontology.check_consistency().is_consistent)

    print("\n== model validation after cleaning ==")
    print(render_validation(validate_md_instance(ontology.md)))

    print("\n== ontology analysis (unchanged by the repair) ==")
    print(render_analysis(ontology.analysis()))

    print("\n== a dangling categorical value is repaired the same way ==")
    md = build_md_instance()
    md.database.add("PatientWard", ("W99", "Sep/5", "Ghost"))
    broken = build_ontology(md)
    print(repair_md_instance(broken))


if __name__ == "__main__":
    main()
