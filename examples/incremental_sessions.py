"""Incremental materialization sessions: chase once, answer many, update in deltas.

The paper's workload is session-shaped: one MD ontology is chased once,
then many certain-answer queries and quality assessments run against the
same materialization while the underlying instance receives small updates.
This example shows the three session objects doing exactly that on a
synthetic workload:

1. a ``MaterializedProgram`` chases the ontology once and then absorbs
   inserts and retractions through the delta-driven chase (retractions via
   the recorded provenance of derived facts);
2. a ``QuerySession`` answers the workload's query batch against the live
   materialization, reusing cached parses and join plans across updates;
3. a ``QualitySession`` keeps quality versions materialized and re-assesses
   only the relations an update touched.

For every update the script compares the incremental timing with a full
re-chase of the updated database — the amortization E12 measures.

Run with::

    python examples/incremental_sessions.py
"""

from __future__ import annotations

import time

from repro.datalog import chase
from repro.engine.session import MaterializedProgram, QuerySession
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)


def main() -> None:
    spec = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                        base_relations=1, upward_rules=True,
                        tuples_per_relation=300, seed=13)
    workload = generate_workload(spec)
    program = workload.ontology.program()

    print("== materialize once ==")
    start = time.perf_counter()
    materialized = MaterializedProgram(program)
    print(f"  chased {materialized.instance.total_tuples()} facts in "
          f"{time.perf_counter() - start:.4f}s "
          f"({materialized.result.steps} triggers)")

    queries = QuerySession(materialized)
    batch = queries.answer_many(workload.queries)
    print(f"  answered {len(batch)} queries "
          f"({sum(len(answers) for answers in batch.answers)} tuples)")

    print("\n== update in deltas ==")
    # The serving loop re-answers the *point* queries per step (the last
    # generated query is a full scan of the rolled-up relation — its cost
    # is pure answer enumeration, identical on every strategy).
    point_queries = workload.queries[:-1]
    stream = generate_update_stream(workload, steps=5, adds_per_step=3,
                                    retracts_per_step=2, seed=7)
    for index, step in enumerate(stream):
        start = time.perf_counter()
        added = materialized.add_facts(step.adds)
        removed = materialized.retract_facts(step.retracts)
        batch = queries.answer_many(point_queries)
        incremental = time.perf_counter() - start

        start = time.perf_counter()
        chase(materialized.edb_program(), check_constraints=False)
        full = time.perf_counter() - start
        print(f"  step {index}: +{len(added.applied)}/-{len(removed.applied)} facts, "
              f"{added.steps + removed.steps} triggers, "
              f"update+requery {incremental * 1e3:6.2f}ms "
              f"vs full re-chase {full * 1e3:6.2f}ms "
              f"({full / incremental:5.1f}x)")

    stats = materialized.stats
    print(f"\n  lifetime: {stats.incremental_updates} incremental updates, "
          f"{stats.full_rechases} full re-chases, "
          f"{queries.stats.cache_hits} cache hits")

    print("\n== quality session over the instance under assessment ==")
    session = workload.context.session(workload.assessment_instance)
    print("  " + str(session.assess()).replace("\n", "\n  "))
    for step in generate_update_stream(workload, steps=3, adds_per_step=2,
                                       retracts_per_step=1, seed=11,
                                       target="assessment"):
        for predicate, row in step.adds:
            session.add_facts(predicate, [row])
        for predicate, row in step.retracts:
            session.retract_facts(predicate, [row])
    print("  after 3 update steps:")
    print("  " + str(session.assess()).replace("\n", "\n  "))
    print(f"  quality-layer caches: {session.stats.cache_hits} hits / "
          f"{session.stats.cache_misses} misses")


if __name__ == "__main__":
    main()
