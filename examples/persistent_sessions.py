"""Persistent sessions: restore instead of re-chase, read while writing.

PR 2's sessions chase once and update in deltas — but only within one
process: every restart re-chased from scratch, and every reader raced the
writer.  This walkthrough shows the two layers that lift both limits:

1. **Durable snapshots** (``repro.engine.snapshot``): a materialized
   program is saved to one deterministic, checksummed file and restored in
   a fresh process without re-chasing — provenance, labeled nulls and the
   incremental-update machinery come back fully live.
2. **Versioned concurrent sessions** (``repro.engine.versioning``): every
   update publishes an immutable instance version (copy-on-write at the
   relation level); readers pin a version with a ``ReadTransaction`` and
   keep a consistent view while a writer thread publishes newer versions.

Run with::

    python examples/persistent_sessions.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.engine.session import MaterializedProgram, QuerySession
from repro.errors import SnapshotError
from repro.quality.session import QualitySession
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)


def main() -> None:
    spec = WorkloadSpec(dimensions=2, depth=3, fanout=3, top_members=2,
                        base_relations=2, upward_rules=True,
                        downward_rules=True, tuples_per_relation=300, seed=13)
    workload = generate_workload(spec)
    program = workload.ontology.program()
    snapshot_path = Path(tempfile.mkdtemp()) / "materialization.snapshot"

    print("== process 1: chase once, snapshot, exit ==")
    start = time.perf_counter()
    materialized = MaterializedProgram(program)
    cold = time.perf_counter() - start
    print(f"  cold chase: {materialized.instance.total_tuples()} facts in "
          f"{cold:.4f}s ({materialized.result.steps} triggers)")
    materialized.save(snapshot_path)
    print(f"  snapshot: {snapshot_path.stat().st_size / 1024:.0f} KiB "
          f"(deterministic, checksummed, format v1)")

    print("\n== process 2: restore instead of re-chase ==")
    start = time.perf_counter()
    restored = MaterializedProgram.load(snapshot_path, program=program)
    warm = time.perf_counter() - start
    print(f"  restored {restored.instance.total_tuples()} facts in "
          f"{warm:.4f}s — {cold / warm:.1f}x faster than re-chasing")

    session = QuerySession(restored)
    batch = session.answer_many(workload.queries)
    print(f"  answered {len(batch)} queries "
          f"({sum(len(a) for a in batch.answers)} tuples)")

    update = restored.add_facts(
        generate_update_stream(workload, steps=1, seed=7)[0].adds)
    print(f"  restored session stays live: update strategy "
          f"{update.strategy!r}, {update.steps} triggers")

    print("\n== versioned reads while a writer publishes updates ==")
    stream = generate_update_stream(workload, steps=8, adds_per_step=3,
                                    retracts_per_step=2, seed=21)
    query = workload.queries[0]
    observations = []

    def writer():
        for step in stream:
            restored.add_facts(step.adds)
            restored.retract_facts(step.retracts)

    def reader():
        while any(thread.is_alive() for thread in [writer_thread]):
            with session.read() as txn:
                first = txn.answers(query)
                second = txn.answers(query)  # same pinned version: identical
                observations.append((txn.version, first == second))

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start(); reader_thread.start()
    writer_thread.join(); reader_thread.join()
    versions_seen = sorted({version for version, _ in observations})
    print(f"  {len(observations)} read transactions across versions "
          f"{versions_seen[:3]}...{versions_seen[-3:]}; "
          f"torn reads: {sum(1 for _, ok in observations if not ok)}")
    print(f"  version store after GC: {restored.versions!r}")

    print("\n== corruption is rejected, never silently wrong ==")
    text = snapshot_path.read_text(encoding="utf-8")
    snapshot_path.write_text(text[: len(text) // 2], encoding="utf-8")
    try:
        MaterializedProgram.load(snapshot_path)
    except SnapshotError as exc:
        print(f"  truncated snapshot -> {type(exc).__name__}: "
              f"{str(exc)[:72]}...")
    snapshot_path.write_text(text, encoding="utf-8")  # repair for step 5

    print("\n== quality sessions persist the same way ==")
    quality = workload.context.session(workload.assessment_instance)
    baseline = str(quality.assess())
    quality_path = snapshot_path.with_name("quality.snapshot")
    quality.save(quality_path)
    restored_quality = QualitySession.load(workload.context, quality_path)
    print(f"  restored assessment matches: "
          f"{str(restored_quality.assess()) == baseline}")
    restored_quality.add_facts(
        "Readings", [("m_0_0", "subject_new", 41.5)])
    print(f"  and keeps updating incrementally: "
          f"{restored_quality.materialized.stats.incremental_updates} "
          f"incremental updates")


if __name__ == "__main__":
    main()
