"""Downward dimensional navigation: nurse scheduling (Examples 2, 5 and 6).

``Shifts`` stores ward-level shifts, ``WorkingSchedules`` stores unit-level
schedules.  The institutional guideline "a nurse working in a unit has
shifts in every ward of that unit" is dimensional rule (8): it *generates*
ward-level tuples by drilling down, with a labeled null for the unknown
shift.  The discharge rule (9) goes further: the unit itself is unknown, so
the generated member is a null too (disjunctive knowledge, form (10)).

Run with::

    python examples/downward_navigation_scheduling.py
"""

from __future__ import annotations

from repro.hospital import HospitalScenario
from repro.relational.values import Null


def main() -> None:
    scenario = HospitalScenario()
    ontology = scenario.ontology

    print("== extensional Shifts (Table IV): no tuple mentions Mark ==")
    print(ontology.program().database.relation("Shifts").pretty())

    print("\n== Example 5: on which dates does Mark have a shift in W1? ==")
    print("  chase-based certain answers:", ontology.certain_answers(
        "?(D) :- Shifts('W1', D, 'Mark', S)."))
    print("  deterministic WS algorithm :", ontology.ws_answers(
        "?(D) :- Shifts('W1', D, 'Mark', S)."))

    print("\n== the generated Shifts tuples (note the null shift values) ==")
    chased = ontology.chase().instance.relation("Shifts")
    for row in sorted((r for r in chased if r[2] == "Mark"), key=str):
        marker = " (generated)" if isinstance(row[3], Null) else ""
        print(f"  {row}{marker}")

    print("\n== Example 6: discharged patients and their (unknown) units ==")
    chased_units = ontology.chase().instance.relation("PatientUnit")
    for row in sorted((r for r in chased_units if isinstance(r[0], Null)), key=str):
        print(f"  PatientUnit{row}  -- unit is a labeled null (form-(10) rule)")
    print("  was Elvis Costello in some unit on Oct/5?",
          ontology.holds("? :- PatientUnit(U, 'Oct/5', 'Elvis Costello')."))
    print("  is any specific unit a certain answer?",
          ontology.certain_answers("?(U) :- PatientUnit(U, 'Oct/5', 'Elvis Costello').") or "no")

    print("\n== navigation directions of the dimensional rules ==")
    for label, direction in ontology.analysis().rule_directions.items():
        print(f"  {label:>10}: {direction}")


if __name__ == "__main__":
    main()
