"""Scaling study on synthetic multidimensional workloads (Section IV claims).

The paper claims that conjunctive query answering over weakly-sticky MD
ontologies is polynomial in the size of the extensional database, and that
upward-navigating ontologies additionally admit first-order rewriting.  This
example sweeps the extensional database size and times

* the chase (materialization) plus query evaluation,
* the deterministic weakly-sticky algorithm (``DeterministicWSQAns``), and
* UCQ rewriting evaluated directly over the extensional data,

printing one row per size so the growth trend is visible.  Absolute numbers
depend on the machine; the *shape* (low-degree polynomial growth, rewriting
cheapest on upward-only workloads) is what reproduces the paper's claims.

Run with::

    python examples/synthetic_scaling.py
"""

from __future__ import annotations

import time

from repro.datalog import DeterministicWSQAns
from repro.datalog.rewriting import QueryRewriter
from repro.engine.session import MaterializedProgram
from repro.workloads import WorkloadSpec, generate_workload


def time_call(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def main() -> None:
    sizes = [50, 100, 200, 400]
    base_spec = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                             base_relations=1, upward_rules=True, downward_rules=False,
                             seed=13)

    print(f"{'|D| (facts)':>12} {'chase+eval (s)':>15} {'WS QA (s)':>12} "
          f"{'rewriting (s)':>14} {'answers':>8}")
    for tuples in sizes:
        workload = generate_workload(base_spec.scaled(tuples_per_relation=tuples))
        program = workload.ontology.program()
        query = workload.queries[-1]          # scan of the rolled-up relation

        (_, chase_elapsed) = time_call(
            lambda: MaterializedProgram(program).certain_answers(query))
        solver = DeterministicWSQAns(program)
        (ws_answers, ws_elapsed) = time_call(solver.answers, query)
        rewriter = QueryRewriter([rule.tgd for rule in workload.ontology.rules])
        (rewritten_answers, rewrite_elapsed) = time_call(
            rewriter.answers, query, program.database)

        assert set(ws_answers) == set(rewritten_answers)
        print(f"{workload.total_facts():>12} {chase_elapsed:>15.4f} {ws_elapsed:>12.4f} "
              f"{rewrite_elapsed:>14.4f} {len(ws_answers):>8}")

    print("\nQuality-assessment throughput (dirty fraction 0.3):")
    print(f"{'|D| (rows)':>12} {'assess (s)':>12} {'quality ratio':>14}")
    for tuples in (100, 200, 400):
        workload = generate_workload(
            base_spec.scaled(assessment_tuples=tuples, tuples_per_relation=50))
        from repro.quality import assess_database

        def run():
            versions = workload.context.quality_versions_for(workload.assessment_instance)
            return assess_database(workload.assessment_instance, versions)

        assessment, elapsed = time_call(run)
        print(f"{tuples:>12} {elapsed:>12.4f} {assessment.quality_ratio:>14.2f}")


if __name__ == "__main__":
    main()
