"""Serving daemon: the hospital scenario over a socket, durable on disk.

PR 3/4 made one process durable (snapshots) and concurrent (versioned
reads) — but sessions still lived and died with their process.  This
walkthrough runs the serving layer end to end:

1. a :class:`~repro.serving.daemon.ServingDaemon` bootstraps the hospital
   quality session into a data directory (snapshot + write-ahead log) and
   serves it over a line-JSON socket protocol;
2. a :class:`~repro.serving.client.ServingClient` runs the scenario's
   questions — doctor's query, quality version, assessment — through the
   wire, byte-identical to the in-process session;
3. live measurement feeds stream through the write path (WAL append →
   incremental apply → maintained answers), with a pinned reader keeping
   a frozen view mid-stream;
4. the daemon is stopped *without* a final checkpoint and a second daemon
   recovers the exact state from snapshot ⊕ WAL replay.

Run with::

    python examples/serving_daemon.py

(or run the daemon standalone: ``python -m repro.serving.daemon
--data-dir ./serving-data`` and connect a ``ServingClient`` to it).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.hospital import HospitalScenario
from repro.hospital.scenario import DOCTOR_QUERY
from repro.serving import CompactionPolicy, ServingClient
from repro.serving.daemon import ServingDaemon


def main() -> None:
    data_dir = Path(tempfile.mkdtemp()) / "serving-data"
    scenario = HospitalScenario()
    in_process = HospitalScenario()  # the oracle the daemon must match

    print("== daemon 1: bootstrap, serve, absorb a measurement feed ==")
    daemon = ServingDaemon(scenario.serving_backend(), data_dir,
                           policy=CompactionPolicy(checkpoint_every_records=4))
    report = daemon.recover()
    host, port = daemon.start()
    print(f"  serving on {host}:{port} (bootstrapped={report['bootstrapped']})")

    client = ServingClient(host, port)
    print(f"  doctor's query over the wire: "
          f"{client.quality_answers(DOCTOR_QUERY)}")
    print(f"  matches in-process session: "
          f"{client.quality_answers(DOCTOR_QUERY) == in_process.session().quality_answers(DOCTOR_QUERY)}")

    pinned = client.read()  # freeze a version while the feed streams
    frozen = pinned.answers("?(T, P, V) :- Measurements_q(T, P, V).")
    feed = [("Sep/5-12:20", "Tom Waits", 38.3),
            ("Sep/6-11:00", "Lou Reed", 37.1),
            ("Sep/9-10:00", "Tom Waits", 37.9),
            ("Sep/9-10:30", "Lou Reed", 36.8),
            ("Sep/9-11:00", "Tom Waits", 38.0)]
    start = time.perf_counter()
    for row in feed:
        summary = client.add_facts([("Measurements", row)])
        in_process.record_measurements([row])
    elapsed = time.perf_counter() - start
    print(f"  streamed {len(feed)} measurements in {elapsed:.3f}s "
          f"(last write: lsn={summary['lsn']}, "
          f"checkpointed={summary['checkpointed']})")
    still_frozen = pinned.answers("?(T, P, V) :- Measurements_q(T, P, V).")
    print(f"  pinned reader kept its version: {still_frozen == frozen}")
    pinned.close()

    live = client.assess()
    print(f"  assessment after the feed: quality ratio "
          f"{live['quality_ratio']:.2f} "
          f"(matches in-process: "
          f"{live['text'] == str(in_process.session().assess())})")
    files = sorted(path.name for path in data_dir.iterdir())
    print(f"  data dir: {files}")
    client.close()
    daemon.stop()  # no final checkpoint: the WAL tail carries the rest

    print("\n== daemon 2: recover from snapshot ⊕ WAL replay ==")
    start = time.perf_counter()
    second = ServingDaemon(HospitalScenario().serving_backend(), data_dir)
    report = second.recover()
    warm = time.perf_counter() - start
    print(f"  recovered from {report['snapshot']} + "
          f"{report['replayed_records']} WAL record(s) in {warm:.3f}s")
    host, port = second.start()
    with ServingClient(host, port) as reconnected:
        answers = reconnected.quality_answers(DOCTOR_QUERY)
        print(f"  doctor's query after recovery: {answers}")
        print(f"  matches the in-process session that never stopped: "
              f"{answers == in_process.session().quality_answers(DOCTOR_QUERY)}")
    second.stop()


if __name__ == "__main__":
    main()
