"""E12 — Incremental materialization: update in deltas vs re-chase from scratch.

Sweeps the extensional database size and, at each size, materializes the
ontology **once** in a :class:`~repro.engine.session.MaterializedProgram`,
then replays the same update stream (inserts + provenance-driven
retractions) two ways:

* **incremental** — ``add_facts``/``retract_facts`` re-enter the
  delta-driven chase seeded with the changed facts, then the query batch is
  re-answered through a :class:`~repro.engine.session.QuerySession` (cached
  parses and join plans; answers invalidated per touched predicate);
* **full** — the status-quo path: apply the update to the EDB, re-chase the
  whole program from scratch, evaluate the same queries.

Both paths must produce identical answers after every step and identical
ground facts at the end; the per-step timing trajectory is written to
``BENCH_incremental.json``.  The motivating claim: at the largest size the
incremental path must be at least 5× faster per update step.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to seconds (tiny sizes,
no 5× gate, no artifact write) so CI can exercise this code on every push.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.datalog import chase
from repro.datalog.answering import certain_answers
from repro.engine.session import MaterializedProgram, QuerySession
from repro.relational.values import Null
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (100, 200, 400, 800)
STEPS = 3 if SMOKE else 8
MIN_SPEEDUP = 0.0 if SMOKE else 5.0


def _ground_facts(instance):
    return {
        (relation.schema.name, row)
        for relation in instance
        for row in relation
        if not any(isinstance(value, Null) for value in row)
    }


def _run_one_size(size: int):
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        upward_rules=True, downward_rules=False, seed=13,
        tuples_per_relation=size))
    program = workload.ontology.program()
    # The generated batch is point queries (the session-serving hot path the
    # 5x gate measures) plus one full scan of the rolled-up relation — whose
    # cost is pure answer enumeration, paid identically by both paths; it
    # stays in the differential check and is timed separately for context.
    point_queries, scan_query = workload.queries[:-1], workload.queries[-1]
    all_queries = workload.queries
    stream = generate_update_stream(workload, steps=STEPS, adds_per_step=3,
                                    retracts_per_step=2, seed=7)

    # Incremental path: one materialization absorbing the whole stream.
    materialized = MaterializedProgram(program)
    session = QuerySession(materialized)
    session.answer_many(all_queries)  # warm caches (the session posture)
    incremental_answers = []
    incremental_seconds = 0.0
    scan_seconds = 0.0
    for step in stream:
        start = time.perf_counter()
        materialized.add_facts(step.adds)
        materialized.retract_facts(step.retracts)
        point_answers = session.answer_many(point_queries).answers
        incremental_seconds += time.perf_counter() - start
        start = time.perf_counter()
        scan_answers = session.answers(scan_query)
        scan_seconds += time.perf_counter() - start
        incremental_answers.append(point_answers + [scan_answers])
    incremental_seconds /= len(stream)
    scan_seconds /= len(stream)

    # Full path: the status quo — re-chase from scratch after every step.
    full_program = program.copy()
    full_answers = []
    full_seconds = 0.0
    for step in stream:
        start = time.perf_counter()
        for predicate, row in step.adds:
            full_program.database.add(predicate, row)
        for predicate, row in step.retracts:
            full_program.database.relation(predicate).discard(row)
        result = chase(full_program, check_constraints=False)
        step_answers = [certain_answers(full_program, query, chase_result=result)
                        for query in point_queries]
        full_seconds += time.perf_counter() - start
        step_answers.append(
            certain_answers(full_program, scan_query, chase_result=result))
        full_answers.append(step_answers)
    full_seconds /= len(stream)

    # Differential: identical answers (point + scan) after every step,
    # identical ground facts at the end of the stream.
    assert incremental_answers == full_answers
    final = chase(materialized.edb_program(), check_constraints=False)
    assert _ground_facts(final.instance) == _ground_facts(materialized.instance)

    stats = materialized.stats
    return {
        "tuples_per_relation": size,
        "extensional_facts": workload.total_facts(),
        "point_queries": len(point_queries),
        "update_steps": len(stream),
        "incremental_seconds_per_step": round(incremental_seconds, 6),
        "full_seconds_per_step": round(full_seconds, 6),
        "scan_query_seconds_per_step": round(scan_seconds, 6),
        "speedup": round(full_seconds / incremental_seconds, 2)
        if incremental_seconds > 0 else float("inf"),
        "incremental_updates": stats.incremental_updates,
        "full_rechases": stats.full_rechases,
        "session_stats": stats.as_dict(),
        "query_cache": {"hits": session.stats.cache_hits,
                        "misses": session.stats.cache_misses},
    }


def test_incremental_updates_beat_full_rechase():
    """Incremental ≡ full at every size; ≥5× faster at the largest; emits JSON."""
    trajectory = [_run_one_size(size) for size in SIZES]

    largest = trajectory[-1]
    assert largest["full_rechases"] == 0, \
        "the update stream should never force a full re-chase on this workload"
    if MIN_SPEEDUP:
        assert largest["speedup"] >= MIN_SPEEDUP, (
            f"incremental update+requery only {largest['speedup']}x faster than "
            f"full re-chase at the largest size; trajectory: {trajectory}")

    if SMOKE:
        return  # tiny sizes would pollute the recorded trajectory

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E12-incremental-updates",
        "workload": {"dimensions": 1, "depth": 3, "fanout": 3,
                     "upward_rules": True, "seed": 13,
                     "adds_per_step": 3, "retracts_per_step": 2},
        "sizes": list(SIZES),
        "trajectory": trajectory,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()


def test_quality_session_reassesses_only_touched_relations():
    """After an update, only dirty relations are re-assessed — and the
    incremental assessment equals a from-scratch one."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        upward_rules=True, seed=13,
        tuples_per_relation=20 if SMOKE else 100,
        assessment_tuples=30 if SMOKE else 150))
    session = workload.context.session(workload.assessment_instance)
    first = session.assess()

    stream = generate_update_stream(workload, steps=3, adds_per_step=2,
                                    retracts_per_step=1, seed=11,
                                    target="assessment")
    for step in stream:
        for predicate, row in step.adds:
            update = session.add_facts(predicate, [row])
            assert update.is_incremental
        for predicate, row in step.retracts:
            session.retract_facts(predicate, [row])

    before = session.stats.snapshot()
    incremental = session.assess()
    assert session.stats.delta(before).cache_misses >= 1  # Readings was dirty
    # Re-assessing with nothing dirty is pure cache hits.
    before = session.stats.snapshot()
    session.assess()
    delta = session.stats.delta(before)
    assert delta.cache_misses == 0 and delta.cache_hits >= 1

    from repro.quality import assess_database
    fresh_versions = workload.context.quality_versions_for(session.instance)
    fresh = assess_database(session.instance, fresh_versions)
    assert str(incremental) == str(fresh)
    assert str(first) != str(incremental) or not stream  # updates moved the needle
