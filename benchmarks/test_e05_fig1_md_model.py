"""E5 — Fig. 1: the extended multidimensional model of the running example.

Regenerates the structural content of Fig. 1 — the two dimension
hierarchies, their member roll-ups, the categorical relations and the
category each categorical attribute is linked to — and times model
construction, validation and compilation into the Datalog± vocabulary.
"""

from __future__ import annotations

from repro.hospital import build_md_instance
from repro.md.validation import validate_md_instance
from repro.ontology.compiler import OntologyCompiler


def test_fig1_model_construction(benchmark):
    """Time construction of the Fig. 1 MD instance from scratch."""

    md = benchmark(build_md_instance)
    hospital = md.dimension("Hospital")
    assert hospital.roll_up("W1", "Ward", "Institution") == {"H1"}
    benchmark.extra_info["dimensions"] = sorted(md.dimensions)
    benchmark.extra_info["categorical_relations"] = sorted(md.relation_schemas)
    benchmark.extra_info["hospital_members"] = hospital.member_count()
    benchmark.extra_info["time_members"] = md.dimension("Time").member_count()


def test_fig1_model_validation(benchmark, scenario):
    """Time validation (conformance, strictness) of the Fig. 1 model."""

    report = benchmark(lambda: validate_md_instance(scenario.md))
    assert report.is_valid
    benchmark.extra_info["issues"] = len(report.issues)


def test_fig1_compilation_to_datalog(benchmark, scenario):
    """Time compilation of the model into the Datalog± vocabulary and facts."""

    compiled = benchmark(lambda: OntologyCompiler().compile(scenario.md))
    vocabulary = compiled.vocabulary
    assert vocabulary.is_parent_child("UnitWard")
    assert vocabulary.is_parent_child("DayTime")
    benchmark.extra_info["category_predicates"] = len(vocabulary.category_predicates)
    benchmark.extra_info["parent_child_predicates"] = len(vocabulary.parent_child_predicates)
    benchmark.extra_info["categorical_predicates"] = len(vocabulary.categorical_predicates)
    benchmark.extra_info["extensional_facts"] = compiled.fact_count()
