"""E15 — Serving: warm restart (snapshot ⊕ WAL tail) vs cold chase.

Sweeps the extensional database size and, at each size, measures what a
serving-daemon restart costs against what a process without persistence
pays:

* **cold** — chase the program from scratch and re-apply the update
  stream in-process (the full price of a restart with no durable state);
* **warm** — :meth:`~repro.serving.daemon.ServingDaemon.recover`: load
  the latest snapshot (no chase), replay the WAL tail through the
  maintained-answer path, reopen the log.

Both paths must produce identical certain answers on the workload's query
batch — the recovery invariant, timed.  The second axis is **update →
answer round-trip throughput** over the real socket protocol (append +
fsync + incremental apply + answer), measured against a live daemon.

The per-size trajectory lands in ``BENCH_serving.json``; the motivating
claim (gated at the largest size) is warm restart ≥ 5× faster than the
cold chase.  ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to seconds for CI
and skips the gate and the artifact write.
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.engine.session import MaterializedProgram
from repro.serving import CompactionPolicy, ServingClient
from repro.serving.daemon import ProgramBackend, ServingDaemon
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (100, 200, 400, 800)
MIN_SPEEDUP = 0.0 if SMOKE else 5.0
ROUNDTRIPS = 10 if SMOKE else 40


@contextmanager
def _timed(bucket: dict, key: str):
    """Wall-clock a block with the cyclic GC paused (same treatment for
    both contenders; see E13)."""
    was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        yield
    finally:
        bucket[key] = time.perf_counter() - start
        if was_enabled:
            gc.enable()


def _workload(size: int):
    return generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=3, top_members=2, base_relations=2,
        upward_rules=True, downward_rules=True, seed=13,
        tuples_per_relation=size))


def _stream_items(workload):
    stream = generate_update_stream(workload, steps=4, adds_per_step=2,
                                    retracts_per_step=1, seed=7)
    items = []
    for step in stream:
        if step.adds:
            items.append(("add", list(step.adds)))
        if step.retracts:
            items.append(("retract", list(step.retracts)))
    return items


def _run_one_size(size: int, data_root: Path) -> dict:
    workload = _workload(size)
    items = _stream_items(workload)
    data_dir = data_root / f"e15_{size}"
    timings: dict = {}

    # --- the serving generation that a restart will recover -------------
    daemon = ServingDaemon(
        ProgramBackend(workload.ontology.program()), data_dir,
        policy=CompactionPolicy(checkpoint_every_records=None,
                                max_wal_bytes=None))
    daemon.recover()
    # Warm the maintained answers so the checkpoint carries them.
    daemon.backend.session.answer_many(workload.queries)
    daemon.checkpoint()
    for op, facts in items:  # these stay in the WAL tail, uncheckpointed
        daemon.apply_write(op, facts)
    expected = daemon.backend.session.answer_many(workload.queries).answers
    wal_tail_records = daemon.records_since_checkpoint
    daemon.stop()

    # --- cold: what a restart without persistence pays -------------------
    with _timed(timings, "cold"):
        cold = MaterializedProgram(workload.ontology.program())
        for op, facts in items:
            if op == "add":
                cold.add_facts(facts)
            else:
                cold.retract_facts(facts)
        cold_answers = cold.queries().answer_many(workload.queries).answers
    assert cold_answers == expected

    # --- warm: snapshot ⊕ WAL tail ---------------------------------------
    with _timed(timings, "warm"):
        restarted = ServingDaemon(
            ProgramBackend(workload.ontology.program()), data_dir)
        report = restarted.recover()
    assert report["replayed_records"] == wal_tail_records
    warm_answers = restarted.backend.session.answer_many(
        workload.queries).answers
    assert warm_answers == expected

    # --- update → answer round trips over the socket ---------------------
    host, port = restarted.start()
    client = ServingClient(host, port)
    probe = str(workload.queries[0])
    relation = workload.base_relation_names[0]
    arity = restarted.backend.materialized.edb.relation(relation).schema.arity
    template = next(iter(
        restarted.backend.materialized.edb.relation(relation).rows()))
    with _timed(timings, "roundtrips"):
        for index in range(ROUNDTRIPS):
            row = template[:arity - 1] + (f"rt_{index}",)
            client.add_facts([(relation, row)])
            client.answers(probe)
    client.close()
    restarted.stop()

    cold_seconds = timings["cold"]
    warm_seconds = timings["warm"]
    return {
        "tuples_per_relation": size,
        "extensional_facts": workload.total_facts(),
        "materialized_facts":
            restarted.backend.materialized.instance.total_tuples(),
        "queries": len(workload.queries),
        "wal_tail_records": wal_tail_records,
        "cold_restart_seconds": round(cold_seconds, 6),
        "warm_restart_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds > 0 else float("inf"),
        "update_answer_roundtrips_per_second":
            round(ROUNDTRIPS / timings["roundtrips"], 1)
            if timings["roundtrips"] > 0 else float("inf"),
    }


def test_warm_restart_beats_cold_chase(tmp_path):
    """Warm ≡ cold at every size; ≥5× faster at the largest; emits JSON."""
    trajectory = [_run_one_size(size, tmp_path) for size in SIZES]

    largest = trajectory[-1]
    if MIN_SPEEDUP:
        assert largest["speedup"] >= MIN_SPEEDUP, (
            f"warm restart only {largest['speedup']}x faster than a cold "
            f"chase at the largest size; trajectory: {trajectory}")

    if SMOKE:
        return  # tiny sizes would pollute the recorded trajectory

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E15-serving",
        "workload": {"dimensions": 2, "depth": 3, "fanout": 3,
                     "base_relations": 2, "upward_rules": True,
                     "downward_rules": True, "seed": 13},
        "sizes": list(SIZES),
        "roundtrips_per_size": ROUNDTRIPS,
        "trajectory": trajectory,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()
