"""E13 — Durable snapshots: restore a materialization vs re-chase it cold.

Sweeps the extensional database size and, at each size:

* **cold** — builds a :class:`~repro.engine.session.MaterializedProgram`
  from scratch (the full restricted chase with provenance recording — what
  every process restart pays without persistence);
* **restore** — loads the same materialization from a snapshot file
  (:mod:`repro.engine.snapshot`): JSON decode + integrity checks + index
  publication, no chase at all.

Both sessions must produce identical certain answers on the workload's
query batch, and both must stay *live*: one update step is applied to each
and the answers must still agree.  The per-size timing trajectory is
written to ``BENCH_snapshot.json``; the motivating claim is that at the
largest size restoring is at least 5× faster than re-chasing.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to seconds (tiny sizes,
no 5× gate, no artifact write) so CI can exercise this code on every push.
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.engine.session import MaterializedProgram, QuerySession
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (100, 200, 400, 800)
MIN_SPEEDUP = 0.0 if SMOKE else 5.0


@contextmanager
def _timed(bucket: dict, key: str):
    """Wall-clock a block with the cyclic GC paused (both contenders get
    the same treatment; without this, the measurement is dominated by
    whole-heap collections triggered by allocation bursts when the suite
    runs alongside other tests)."""
    was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        yield
    finally:
        bucket[key] = time.perf_counter() - start
        if was_enabled:
            gc.enable()


def _run_one_size(size: int, snapshot_dir: Path):
    # Two dimensions with upward *and* downward rules: the derivation-heavy
    # ontology family of E10/E12, where a cold chase does real work.
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=3, top_members=2, base_relations=2,
        upward_rules=True, downward_rules=True, seed=13,
        tuples_per_relation=size))
    program = workload.ontology.program()

    timings: dict = {}

    # Cold start: the full chase every process restart pays today.
    with _timed(timings, "cold"):
        cold = MaterializedProgram(program)
    cold_answers = QuerySession(cold).answer_many(workload.queries).answers

    path = snapshot_dir / f"e13_{size}.snapshot"
    with _timed(timings, "save"):
        cold.save(path)

    # Warm start: restore the snapshot instead of re-chasing.
    with _timed(timings, "restore"):
        restored = MaterializedProgram.load(path, program=program)
    cold_seconds = timings["cold"]
    save_seconds = timings["save"]
    restore_seconds = timings["restore"]
    restored_answers = QuerySession(restored).answer_many(
        workload.queries).answers
    assert restored_answers == cold_answers

    # Both sessions stay live: an update keeps them in lockstep.
    step = generate_update_stream(workload, steps=1, adds_per_step=3,
                                  retracts_per_step=2, seed=7)[0]
    for session in (cold, restored):
        session.add_facts(step.adds)
        session.retract_facts(step.retracts)
    assert QuerySession(restored).answer_many(workload.queries).answers == \
        QuerySession(cold).answer_many(workload.queries).answers
    assert restored.stats.full_rechases == cold.stats.full_rechases

    return {
        "tuples_per_relation": size,
        "extensional_facts": workload.total_facts(),
        "materialized_facts": cold.instance.total_tuples(),
        "queries": len(workload.queries),
        "cold_chase_seconds": round(cold_seconds, 6),
        "snapshot_save_seconds": round(save_seconds, 6),
        "snapshot_restore_seconds": round(restore_seconds, 6),
        "snapshot_bytes": path.stat().st_size,
        "speedup": round(cold_seconds / restore_seconds, 2)
        if restore_seconds > 0 else float("inf"),
    }


def test_snapshot_restore_beats_cold_rechase(tmp_path):
    """Restore ≡ cold at every size; ≥5× faster at the largest; emits JSON."""
    with tempfile.TemporaryDirectory(dir=tmp_path) as snapshot_dir:
        trajectory = [_run_one_size(size, Path(snapshot_dir))
                      for size in SIZES]

    largest = trajectory[-1]
    if MIN_SPEEDUP:
        assert largest["speedup"] >= MIN_SPEEDUP, (
            f"snapshot restore only {largest['speedup']}x faster than a cold "
            f"re-chase at the largest size; trajectory: {trajectory}")

    if SMOKE:
        return  # tiny sizes would pollute the recorded trajectory

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E13-snapshot-restore",
        "workload": {"dimensions": 2, "depth": 3, "fanout": 3,
                     "base_relations": 2, "upward_rules": True,
                     "downward_rules": True, "seed": 13},
        "sizes": list(SIZES),
        "trajectory": trajectory,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()
