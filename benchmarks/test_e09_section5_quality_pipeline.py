"""E9 — Section V / Fig. 2: the end-to-end contextual quality pipeline.

Times the whole assessment loop — map the instance under assessment into the
context, chase (with dimensional navigation), materialize the quality
versions, compute the departure measures, and answer a quality query — on
the hospital scenario and on synthetic instances of growing size.
"""

from __future__ import annotations

import pytest

from repro.hospital import HospitalScenario
from repro.quality import assess_database, compare_answers
from repro.workloads import WorkloadSpec, generate_workload


def test_section5_hospital_pipeline_end_to_end(benchmark):
    """Time the complete hospital assessment starting from raw tables."""

    def run():
        scenario = HospitalScenario()
        versions = scenario.context.quality_versions_for(scenario.measurements)
        return assess_database(scenario.measurements, versions)

    assessment = benchmark(run)
    assert assessment.relations["Measurements"].kept_tuples == 2
    benchmark.extra_info["quality_ratio"] = round(assessment.quality_ratio, 4)
    benchmark.extra_info["departure"] = assessment.departure


@pytest.mark.parametrize("rows", [100, 200, 400])
def test_section5_quality_pipeline_scaling(benchmark, rows):
    """Time quality-version materialization + assessment as |D| grows."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        tuples_per_relation=40, assessment_tuples=rows, dirty_fraction=0.3,
        upward_rules=True, downward_rules=False, seed=17))

    def run():
        versions = workload.context.quality_versions_for(workload.assessment_instance)
        return assess_database(workload.assessment_instance, versions)

    assessment = benchmark(run)
    assert 0.0 < assessment.quality_ratio <= 1.0
    benchmark.extra_info["assessed_rows"] = rows
    benchmark.extra_info["quality_ratio"] = round(assessment.quality_ratio, 4)


def test_section5_spurious_answer_detection(benchmark, scenario):
    """Time the direct-vs-quality comparison that motivates the paper's intro."""

    def run():
        return compare_answers(
            scenario.context, scenario.measurements,
            "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")

    comparison = benchmark(run)
    assert len(comparison.direct) == 4 and len(comparison.quality) == 2
    benchmark.extra_info["direct_answers"] = len(comparison.direct)
    benchmark.extra_info["quality_answers"] = len(comparison.quality)
    benchmark.extra_info["precision"] = round(comparison.precision, 4)
