"""E17 — Group commit throughput and log-shipping replica fidelity.

Two claims from the scale-out serving tier, measured against a real
daemon subprocess over the socket protocol:

* **group commit** — 8 concurrent writers' commit round trips (append +
  fsync + apply + ack) against the grouped path, vs a single writer
  paying one fsync per record.  The committer thread folds concurrent
  frames into one buffered write + one fsync and applies contiguous
  same-op runs in bulk — amortizing both the fsync and the per-publish
  fixed cost of the MVCC maintained-answer path — so the grouped
  configuration must clear **≥ 3×** the single-writer baseline
  throughput (the gate).  The instance is preloaded with ~50k facts
  first: group commit's whole point is amortizing per-commit costs that
  grow with instance size, so an empty instance would understate it.
* **replication** — a :class:`~repro.serving.replication.ReplicaDaemon`
  seeded from the primary's shipped snapshot tails the segment chain; the
  benchmark reports the replication lag measured right after the write
  burst and the catch-up time, and gates on the differential check: the
  caught-up replica answers pinned reads identically to the primary.

Both legs run against the **same** primary daemon: the single-writer
burst first, then the grouped burst, each measured from the daemon's own
group-commit stats deltas, then the replica is seeded from that daemon's
shipped files.

The numbers land in ``BENCH_replication.json`` (with run history).
``REPRO_BENCH_SMOKE=1`` shrinks the preload and bursts for CI and skips
the gate and the artifact write.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.serving import ReplicaDaemon, ServingClient
from repro.serving.daemon import ProgramBackend

ARTIFACT = Path(__file__).resolve().parent.parent / \
    "BENCH_replication.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WRITERS = 8
SINGLE_WRITES = 12 if SMOKE else 40
GROUPED_WRITES_PER_WRITER = 6 if SMOKE else 40
PRELOAD_FACTS = 500 if SMOKE else 50_000
PRELOAD_CHUNK = 2500
MIN_SPEEDUP = 0.0 if SMOKE else 3.0

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
    Base(a, b). Base(c, d).
    Link(b, t1). Link(d, t2).
"""

QUERIES = ("?(X, Z) :- Joined(X, Z).",
           "?(X, Y) :- Derived(X, Y).")


def _spawn_daemon(data_dir: Path, program_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serving.daemon",
         "--data-dir", str(data_dir), "--program", str(program_file),
         "--port", "0", "--quiet", "--checkpoint-every", "1000000"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _shutdown(client: ServingClient, process: subprocess.Popen) -> None:
    try:
        client.shutdown()
    except Exception:  # noqa: BLE001 - already gone
        pass
    client.close()
    if process.poll() is None:
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
            process.kill()
            process.wait(timeout=30)


def _preload(client: ServingClient, facts: int) -> float:
    """Grow the instance so per-commit fixed costs are realistic; returns
    the wall seconds spent."""
    start = time.perf_counter()
    for low in range(0, facts, PRELOAD_CHUNK):
        client.add_facts([("Base", (f"preload{index}", "b"))
                          for index in range(low, min(low + PRELOAD_CHUNK,
                                                      facts))])
    return time.perf_counter() - start


#: Each writer is its own OS process — concurrent writers in one Python
#: process would serialize their socket/JSON work on the GIL and measure
#: the client, not the commit path.  ready/go handshake over stdio keeps
#: interpreter startup out of the timed window.
WRITER_SCRIPT = """
import sys, time
from repro.serving.client import ServingClient
data_dir, writer, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
client = ServingClient.connect(data_dir, wait=30.0)
client.add_facts([("Base", ("warm_" + writer, "b"))])
print("ready", flush=True)
sys.stdin.readline()  # go
start = time.perf_counter()
for index in range(count):
    client.add_facts([("Base", (writer + "n" + str(index), "b"))])
print("done", time.perf_counter() - start, flush=True)
client.close()
"""


def _writer_burst(data_dir: Path, writers: int, writes_each: int) -> float:
    """Run ``writers`` writer processes concurrently; returns the wall
    seconds of the whole burst (go → last writer done)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    processes = [subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT,
         str(data_dir), f"{writers}x{writer}", str(writes_each)],
        env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        for writer in range(writers)]
    try:
        for process in processes:
            assert process.stdout.readline().strip() == "ready"
        start = time.perf_counter()
        for process in processes:
            process.stdin.write("go\n")
            process.stdin.flush()
        for process in processes:
            line = process.stdout.readline().split()
            assert line and line[0] == "done", f"writer failed: {line}"
        elapsed = time.perf_counter() - start
        for process in processes:
            assert process.wait(timeout=30) == 0
        return elapsed
    finally:
        for process in processes:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
                process.wait(timeout=30)


def _measured_burst(client: ServingClient, data_dir: Path, writers: int,
                    writes_each: int) -> dict:
    """One burst against the live daemon, measured from its own
    group-commit stats deltas (batches, records, fsyncs)."""
    before = client.stats()["serving"]["group_commit"]
    elapsed = _writer_burst(data_dir, writers, writes_each)
    after = client.stats()["serving"]["group_commit"]
    batches = after["commit_batches"] - before["commit_batches"]
    records = after["wal_records"] - before["wal_records"]
    fsyncs = after["wal_fsyncs"] - before["wal_fsyncs"]
    total = writers * writes_each
    return {
        "writers": writers,
        "writes": total,
        "seconds": round(elapsed, 6),
        "roundtrips_per_second": round(total / elapsed, 1),
        "commit_batches": batches,
        "records_per_batch": round(records / max(1, batches), 2),
        "fsyncs_per_record": round(fsyncs / max(1, records), 3),
        "degraded_retries": after["degraded_retries"] -
        before["degraded_retries"],
    }


def _replica_leg(tmp_path: Path, data_dir: Path,
                 client: ServingClient) -> dict:
    """Seed a replica off the primary's shipped files, measure lag and
    catch-up, and gate on read fidelity."""
    assert client.checkpoint()["checkpointed"]  # ship a snapshot to seed
    client.add_facts([("Link", ("b", "t_tail"))])  # a WAL tail to tail
    replica = ReplicaDaemon(ProgramBackend(None), data_dir,
                            tmp_path / "replica")
    try:
        replica.recover()
        lag_after_burst = replica.replication_status()["lag_records"]
        start = time.perf_counter()
        remaining = replica.catch_up(timeout=60.0)
        catch_up_seconds = time.perf_counter() - start
        assert remaining == 0, "the replica never caught up"

        # The differential gate: pinned reads on the replica answer
        # exactly what the primary answers.
        with replica.backend.session.read() as txn:
            for query in QUERIES:
                assert txn.answers(query) == client.answers(query)
        status = replica.replication_status()
        return {
            "seed_lag_records": lag_after_burst,
            "catch_up_seconds": round(catch_up_seconds, 6),
            "records_replayed": status["records_replayed"],
            "final_lag_records": status["lag_records"],
            "reseeds": status["reseeds"],
            "pinned_reads_match_primary": True,
        }
    finally:
        replica.stop()


def test_group_commit_and_replica_fidelity(tmp_path):
    """Grouped ≥3× single-writer throughput; replica ≡ primary; JSON."""
    program_file = tmp_path / "program.dlg"
    program_file.write_text(PROGRAM_TEXT, encoding="utf-8")
    data_dir = tmp_path / "primary"
    process = _spawn_daemon(data_dir, program_file)
    try:
        client = ServingClient.connect(data_dir, wait=30.0)
    except BaseException:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
        raise
    try:
        preload_seconds = _preload(client, PRELOAD_FACTS)
        single = _measured_burst(client, data_dir, writers=1,
                                 writes_each=SINGLE_WRITES)
        grouped = _measured_burst(client, data_dir, writers=WRITERS,
                                  writes_each=GROUPED_WRITES_PER_WRITER)
        replication = _replica_leg(tmp_path, data_dir, client)
    finally:
        _shutdown(client, process)

    speedup = grouped["roundtrips_per_second"] / \
        max(1e-9, single["roundtrips_per_second"])
    if MIN_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"group commit only {speedup:.2f}x the single-writer baseline "
            f"({grouped['roundtrips_per_second']}/s grouped vs "
            f"{single['roundtrips_per_second']}/s single)")

    if SMOKE:
        return  # tiny bursts would pollute the recorded history

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "single_writer": single,
        "grouped": grouped,
        "speedup": round(speedup, 2),
        "replication": replication,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E17-replication",
        "writers": WRITERS,
        "preload_facts": PRELOAD_FACTS,
        "preload_seconds": round(preload_seconds, 3),
        "single_writer": single,
        "grouped": grouped,
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "replication": replication,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()
