"""E8 — Section IV: first-order rewriting for upward-navigating ontologies.

For upward-only MD ontologies the paper proposes answering queries by
rewriting them into first-order (UCQ) queries over the extensional data,
avoiding data generation entirely.  This experiment times the rewriting
route against the chase route on the hospital's upward fragment and on the
synthetic |D| sweep, checking that both return identical answers — and
recording the UCQ size, which is the cost the rewriting pays instead.
"""

from __future__ import annotations

import pytest

from repro.datalog import certain_answers, chase, parse_query
from repro.datalog.rewriting import QueryRewriter

HOSPITAL_QUERY = "?(U, P) :- PatientUnit(U, 'Sep/5', P)."


def test_section4_rewriting_on_hospital_upward_fragment(benchmark, upward_only_ontology):
    """Time rewrite+evaluate for rule (7) on the hospital data."""
    query = parse_query(HOSPITAL_QUERY)
    program = upward_only_ontology.program()
    rewriter = QueryRewriter([rule.tgd for rule in upward_only_ontology.rules])

    answers = benchmark(lambda: rewriter.answers(query, program.database))
    assert answers == upward_only_ontology.certain_answers(HOSPITAL_QUERY)
    benchmark.extra_info["ucq_size"] = len(rewriter.rewrite(query))
    benchmark.extra_info["answers"] = [list(map(str, row)) for row in answers]


def test_section4_chase_on_hospital_upward_fragment(benchmark, upward_only_ontology):
    """The chase route on the same query, for comparison with the rewriting."""
    query = parse_query(HOSPITAL_QUERY)
    program = upward_only_ontology.program()

    def run():
        shared = chase(program, check_constraints=False)
        return certain_answers(program, query, chase_result=shared)

    answers = benchmark(run)
    assert answers == upward_only_ontology.certain_answers(HOSPITAL_QUERY)
    benchmark.extra_info["answers"] = [list(map(str, row)) for row in answers]


@pytest.mark.parametrize("index", [0, 1, 2], ids=["small", "medium", "large"])
def test_section4_rewriting_scaling(benchmark, scaling_workloads, index):
    """Time the rewriting route over the synthetic upward-only |D| sweep."""
    workload = scaling_workloads[index]
    program = workload.ontology.program()
    rewriter = QueryRewriter([rule.tgd for rule in workload.ontology.rules])

    def run():
        return [rewriter.answers(query, program.database) for query in workload.queries]

    rewritten = benchmark(run)
    shared = chase(program, check_constraints=False)
    for query, answers in zip(workload.queries, rewritten):
        assert answers == certain_answers(program, query, chase_result=shared)
    benchmark.extra_info["extensional_facts"] = workload.total_facts()
    benchmark.extra_info["total_answers"] = sum(len(batch) for batch in rewritten)
