"""E11 — Engine scaling: naive reference vs indexed+delta engine.

Sweeps the extensional database size and, at each size, runs the same
workload — chase the ontology, then answer the full query batch — once on
the naive row-scanning engine and once on the indexed delta-driven engine.
Both must return identical answers; the timing trajectory (with the
engine's instrumentation counters) is written to ``BENCH_engine.json`` at
the repository root so successive runs can be compared.

The motivating claim (see docs/ARCHITECTURE.md): putting one indexed
matching engine under every evaluator turns the chase's per-round
full-relation rescans into hash probes over the delta, so the gap to the
naive reference widens with the data — at the largest size the indexed
path must be at least 5× faster.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.datalog import certain_answers, chase
from repro.workloads import WorkloadSpec, generate_workload

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: REPRO_BENCH_SMOKE=1 shrinks the sweep so CI can exercise this code on
#: every push: tiny sizes, no speedup gate, no artifact write.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (100, 200, 400, 800)


def _run_workload(program, queries, engine: str):
    """Chase + full query batch on one engine; returns (seconds, answers, stats)."""
    start = time.perf_counter()
    result = chase(program, engine=engine, check_constraints=False)
    answers = [certain_answers(program, query, chase_result=result, engine=engine)
               for query in queries]
    elapsed = time.perf_counter() - start
    return elapsed, answers, result.stats


def test_engine_scaling_records_trajectory():
    """Indexed ≡ naive at every size; ≥5× faster at the largest; emits JSON."""
    base = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                        base_relations=1, upward_rules=True,
                        downward_rules=False, seed=13)
    trajectory = []
    for size in SIZES:
        workload = generate_workload(base.scaled(tuples_per_relation=size))
        program = workload.ontology.program()
        naive_seconds, naive_answers, naive_stats = _run_workload(
            program, workload.queries, "naive")
        # Best of two for the indexed path: its sub-50ms measurement is the
        # noise-prone side of the ratio on loaded CI runners.
        indexed_seconds, indexed_answers, indexed_stats = min(
            (_run_workload(program, workload.queries, "indexed") for _ in range(2)),
            key=lambda run: run[0])
        assert indexed_answers == naive_answers
        speedup = naive_seconds / indexed_seconds if indexed_seconds > 0 else float("inf")
        trajectory.append({
            "tuples_per_relation": size,
            "extensional_facts": workload.total_facts(),
            "queries": len(workload.queries),
            "naive_seconds": round(naive_seconds, 6),
            "indexed_seconds": round(indexed_seconds, 6),
            "speedup": round(speedup, 2),
            "naive_stats": naive_stats.as_dict(),
            "indexed_stats": indexed_stats.as_dict(),
        })

    largest = trajectory[-1]
    if SMOKE:
        return  # tiny sizes: no speedup gate, don't pollute the artifact
    assert largest["speedup"] >= 5.0, (
        f"indexed engine only {largest['speedup']}x faster than naive at the "
        f"largest size; trajectory: {trajectory}")

    # Append this run to the artifact (bounded history) so successive runs
    # really can be compared; "trajectory" always mirrors the latest run.
    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E11-engine-scaling",
        "workload": {"dimensions": 1, "depth": 3, "fanout": 3,
                     "upward_rules": True, "seed": 13},
        "sizes": list(SIZES),
        "trajectory": trajectory,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()


def test_indexed_engine_scans_fewer_rows():
    """The instrumentation shows *why*: orders of magnitude fewer rows touched."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        tuples_per_relation=200, upward_rules=True, seed=13))
    program = workload.ontology.program()
    naive = chase(program, engine="naive", check_constraints=False)
    indexed = chase(program, engine="indexed", check_constraints=False)
    assert indexed.stats.rows_scanned < naive.stats.rows_scanned / 10
    assert indexed.stats.index_probes > 0
    assert indexed.stats.rules_skipped_by_delta > 0
