"""E19 — Open-loop mixed traffic against a served scenario.

The serving-tier claim under *offered* (not closed-loop) load: a daemon
serving the sensor-network scenario sustains a mixed 1000-QPS stream —
queries, boolean probes, adds, retracts, quality assessments — with
**zero protocol errors** and a query tail that stays within a noise-
floored multiple of its unloaded baseline.  The driver's arrival clock
never waits on the daemon (:mod:`repro.workloads.driver`), so a slow op
shows up as coordinated-omission debt in the corrected percentiles
instead of silently lowering the offered rate — the number this gate
reads is the honest one.

The numbers land in ``BENCH_workload.json`` (with run history).
``REPRO_BENCH_SMOKE=1`` shrinks the run for CI and skips the gate and
the artifact write.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

import repro
from repro.scenarios import build_scenario
from repro.serving import ServingClient
from repro.workloads.driver import (ClientTarget, TrafficSpec,
                                    compile_schedule, run_schedule)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_workload.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
QPS = 100.0 if SMOKE else 1000.0
DURATION = 0.5 if SMOKE else 3.0
WORKERS = 2 if SMOKE else 8
BASELINE_READS = 20 if SMOKE else 200
MAX_P99_RATIO = 0.0 if SMOKE else 20.0
P99_FLOOR_SECONDS = 0.25  # noise floor for millisecond-scale baselines

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spawn_daemon(data_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    env.pop("REPRO_FAULT_STALL", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serving.daemon",
         "--data-dir", str(data_dir), "--scenario", "sensornet",
         "--port", "0", "--quiet", "--no-sync",
         "--checkpoint-every", "1000000"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _shutdown(client: ServingClient, process: subprocess.Popen) -> None:
    try:
        client.shutdown()
    except Exception:  # noqa: BLE001 - already gone
        pass
    client.close()
    if process.poll() is None:
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
            process.kill()
            process.wait(timeout=30)


def _baseline_query_p99(client: ServingClient, queries: List[str]) -> float:
    """Unloaded per-query p99 (seconds), one serial connection."""
    latencies: List[float] = []
    for index in range(BASELINE_READS):
        query = queries[index % len(queries)]
        start = time.perf_counter()
        client.answers(query)
        latencies.append(time.perf_counter() - start)
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def test_mixed_open_loop_traffic_served_clean(tmp_path):
    """Offer a mixed 1k-QPS schedule; gate on zero protocol errors and a
    noise-floored query p99."""
    scenario = build_scenario("sensornet")
    spec = TrafficSpec(qps=QPS, duration=DURATION, seed=19)
    schedule = compile_schedule(spec, scenario.binding())

    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir)
    try:
        probe = ServingClient.connect(data_dir, wait=30.0)
    except BaseException:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
        raise
    try:
        baseline_p99 = _baseline_query_p99(probe, scenario.queries())
        target = ClientTarget(
            lambda **kw: ServingClient.connect(
                data_dir, wait=30.0, busy_retries=1000,
                backoff_base=0.005, backoff_max=0.25, **kw),
            relation=scenario.assessed_relation)
        report = run_schedule(schedule, target, workers=WORKERS)
    finally:
        _shutdown(probe, process)

    # The wire stayed clean: nothing aborted, refused, or mis-typed.
    assert not report.aborted, report.abort_error
    assert report.errors == {}, report.errors
    assert report.ok == report.executed == report.scheduled

    query_p99 = report.classes["query"]["p99_ms"] / 1000
    budget = max(MAX_P99_RATIO * baseline_p99, P99_FLOOR_SECONDS)
    if MAX_P99_RATIO:
        assert query_p99 <= budget, (
            f"query p99 under mixed {QPS:.0f}-QPS load is "
            f"{query_p99 * 1000:.1f}ms — over {MAX_P99_RATIO}x the "
            f"unloaded {baseline_p99 * 1000:.1f}ms baseline (budget "
            f"{budget * 1000:.1f}ms)")

    if SMOKE:
        return  # tiny runs would pollute the recorded history

    history: List[Dict] = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenario": scenario.name,
        "offered_qps": QPS,
        "duration_seconds": DURATION,
        "workers": WORKERS,
        "unloaded_query_p99_ms": round(baseline_p99 * 1000, 3),
        "report": report.as_dict(),
    }
    history.append(run_record)
    ARTIFACT.write_text(
        json.dumps({"experiment": "E19 open-loop mixed workload",
                    "gate": "zero protocol errors; loaded query p99 <= "
                            f"{MAX_P99_RATIO}x unloaded (floor "
                            f"{int(P99_FLOOR_SECONDS * 1000)}ms)",
                    "latest": run_record,
                    "runs": history[-20:]},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
