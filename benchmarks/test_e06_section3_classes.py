"""E6 — Section III claims: weak stickiness and separability certification.

Times the syntactic analysis (sticky marking, finite-rank positions, EGD
separability) on the hospital ontology and on synthetic ontologies of
growing size, and checks the claims the paper states: the MD ontologies are
weakly sticky (but not sticky), and the dimensional EGD is separable.
"""

from __future__ import annotations

import pytest

from repro.datalog.classes import classify
from repro.workloads import WorkloadSpec, generate_workload


def test_section3_hospital_ontology_classification(benchmark, scenario):
    """Time the full class/separability analysis of the hospital ontology."""

    analysis = benchmark(scenario.ontology.analysis)
    summary = analysis.summary()
    assert summary["weakly_sticky"] is True
    assert summary["sticky"] is False
    assert summary["separable_egds"] is True
    benchmark.extra_info["summary"] = {k: bool(v) for k, v in summary.items()}


def test_section3_sticky_marking_on_hospital_rules(benchmark, scenario):
    """Time just the sticky-marking/rank computation on the dimensional rules."""
    tgds = [rule.tgd for rule in scenario.ontology.rules]

    report = benchmark(lambda: classify(tgds))
    assert report.is_weakly_sticky and not report.is_sticky
    benchmark.extra_info["finite_rank_positions"] = len(report.finite_rank_positions)
    benchmark.extra_info["infinite_rank_positions"] = len(report.infinite_rank_positions)


@pytest.mark.parametrize("relations", [2, 4, 8])
def test_section3_classification_scales_with_rule_count(benchmark, relations):
    """Time the analysis as the number of dimensional rules grows."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=relations,
        tuples_per_relation=5, upward_rules=True, downward_rules=True, seed=31))

    analysis = benchmark(workload.ontology.analysis)
    assert analysis.is_weakly_sticky
    benchmark.extra_info["rules"] = len(workload.ontology.rules)
    benchmark.extra_info["weakly_sticky"] = analysis.is_weakly_sticky
