"""E4 — Table V, Example 6: downward navigation with unknown units (form (10)).

Rule (9) propagates each ``DischargePatients`` tuple down to the Unit level,
inventing a labeled null for the unknown unit and linking it to the
institution through ``InstitutionUnit``.  Expected shape: one null-unit
``PatientUnit`` tuple per discharged patient; the boolean query "was the
patient in some unit" certainly holds while no specific unit is a certain
answer.
"""

from __future__ import annotations

from repro.hospital import DISCHARGE_PATIENTS_ROWS, build_ontology
from repro.relational.values import Null


def test_example6_chase_with_form10_rule(benchmark, scenario):
    """Time the chase of the ontology including rule (9)."""

    result = benchmark(lambda: build_ontology(scenario.md).chase(refresh=True))
    patient_unit = result.instance.relation("PatientUnit")
    null_units = [row for row in patient_unit if isinstance(row[0], Null)]
    # The restricted chase only fires rule (9) when no known unit of the same
    # institution already explains the discharge: Lou Reed's Sep/6 stay in the
    # Intensive unit of H1 satisfies the head, so exactly two of the three
    # discharges (Tom Waits Sep/9 at H1, Elvis Costello Oct/5 at H2) invent a
    # null unit.
    assert len(null_units) == 2
    assert len(null_units) < len(DISCHARGE_PATIENTS_ROWS)
    benchmark.extra_info["null_unit_tuples"] = len(null_units)
    benchmark.extra_info["generated_nulls"] = len(result.generated_nulls())


def test_example6_boolean_vs_open_answers(benchmark, scenario):
    """Time the certain/possible distinction for the discharged patient."""
    ontology = scenario.ontology

    def run():
        certainly_some_unit = ontology.holds(
            "? :- PatientUnit(U, 'Oct/5', 'Elvis Costello').")
        certain_units = ontology.certain_answers(
            "?(U) :- PatientUnit(U, 'Oct/5', 'Elvis Costello').")
        return certainly_some_unit, certain_units

    certainly_some_unit, certain_units = benchmark(run)
    assert certainly_some_unit is True
    assert certain_units == ()
    benchmark.extra_info["boolean_holds"] = certainly_some_unit
    benchmark.extra_info["certain_unit_answers"] = len(certain_units)


def test_example6_institution_unit_links(benchmark, scenario):
    """Time retrieval of the generated institution→unknown-unit edges."""
    ontology = scenario.ontology

    def run():
        chased = ontology.chase().instance.relation("InstitutionUnit")
        return [row for row in chased if isinstance(row[1], Null)]

    generated = benchmark(run)
    institutions = sorted({row[0] for row in generated})
    assert institutions == ["H1", "H2"]
    benchmark.extra_info["institutions_with_unknown_units"] = institutions
