"""E14 — Answer maintenance: update cached answers by delta vs re-answer.

PR 2 cached query answers with predicate-level invalidation: any update
touching a query's predicates discarded the cached answer and re-ran the
whole join.  This experiment measures the counting-based incremental view
maintenance that replaced it (:mod:`repro.engine.session`): the same
materialization absorbs the same update stream twice, answering the same
query batch after every step —

* **maintained** — the default :class:`QuerySession`: every update's fact
  delta is propagated through compiled
  :class:`~repro.engine.matching.DeltaJoinPlan` pivots, moving the cached
  support counts in place; reads never re-join;
* **invalidate** — ``QuerySession(maintain_answers=False)``: the PR 2
  behaviour, re-answering every touched query from scratch.

Both sessions must produce identical answers after every step.  The
motivating claim, gated at the largest size: the maintained update→answer
cycle is at least 5× faster than invalidate-and-reanswer.

The artifact (``BENCH_ivm.json``) also records the constant-interning
microbenchmark for the ingestion satellite: probing a set of rows built
from dictionary-encoded (interned) constants versus freshly-allocated equal
strings — interned rows hit CPython's pointer-identity equality fast path.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to seconds (tiny sizes,
no 5× gate, no artifact write) so CI can exercise this code on every push.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.datalog import parse_query
from repro.engine.session import MaterializedProgram, QuerySession
from repro.relational.values import ValueInterner
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_ivm.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (200, 400, 800)
STEPS = 3 if SMOKE else 8
MIN_SPEEDUP = 0.0 if SMOKE else 5.0


def _query_batch(workload):
    """The generated batch plus heavier scans/joins over the same relations.

    The generated workload carries point queries and one roll-up scan; the
    session posture the paper motivates ("assess once, query many") keeps a
    *batch* of standing queries warm, so the harness adds projections over
    the base relation and a base⋈roll-up join — the queries whose
    re-answering cost predicate-level invalidation keeps paying.
    """
    program = workload.ontology.program()
    database = program.database
    queries = list(workload.queries)
    base = workload.base_relation_names[0]
    base_vars = [f"V{i}" for i in range(database.relation(base).schema.arity)]
    base_body = f"{base}({', '.join(base_vars)})"
    queries.append(parse_query(f"?({', '.join(base_vars)}) :- {base_body}."))
    queries.append(parse_query(f"?({base_vars[-1]}) :- {base_body}."))
    if workload.upward_relation_names:
        up = workload.upward_relation_names[0]
        up_vars = [f"U{i}" for i in range(database.relation(up).schema.arity)]
        up_body = f"{up}({', '.join(up_vars)})"
        queries.append(parse_query(f"?({up_vars[0]}) :- {up_body}."))
        if len(base_vars) >= 2:
            shared = base_vars[1:]
            queries.append(parse_query(
                f"?(C, P) :- {base}(C, {', '.join(shared)}), "
                f"{up}(P, {', '.join(shared)})."))
    return queries


def _replay(program, stream, queries, maintain: bool):
    """Absorb ``stream``, answering ``queries`` after every step; timed."""
    materialized = MaterializedProgram(program)
    session = QuerySession(materialized, maintain_answers=maintain)
    session.answer_many(queries)  # warm caches (the session posture)
    per_step_answers = []
    seconds = 0.0
    for step in stream:
        start = time.perf_counter()
        materialized.add_facts(step.adds)
        materialized.retract_facts(step.retracts)
        answers = session.answer_many(queries).answers
        seconds += time.perf_counter() - start
        per_step_answers.append(answers)
    return materialized, session, per_step_answers, seconds / len(stream)


def _run_one_size(size: int):
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        upward_rules=True, downward_rules=False, seed=13,
        tuples_per_relation=size))
    program = workload.ontology.program()
    queries = _query_batch(workload)
    stream = generate_update_stream(workload, steps=STEPS, adds_per_step=3,
                                    retracts_per_step=2, seed=7)

    maintained, m_session, m_answers, m_seconds = _replay(
        program, stream, queries, maintain=True)
    baseline, b_session, b_answers, b_seconds = _replay(
        program, stream, queries, maintain=False)

    # Differential: identical answers after every step, and the maintained
    # path must have actually maintained (never silently fallen back).
    assert m_answers == b_answers
    assert m_session.stats.answers_maintained > 0
    assert m_session.stats.maintenance_fallbacks == 0
    assert maintained.stats.full_rechases == 0
    assert baseline.stats.full_rechases == 0

    return {
        "tuples_per_relation": size,
        "extensional_facts": workload.total_facts(),
        "queries": len(queries),
        "update_steps": len(stream),
        "maintained_seconds_per_step": round(m_seconds, 6),
        "invalidate_seconds_per_step": round(b_seconds, 6),
        "speedup": round(b_seconds / m_seconds, 2) if m_seconds > 0
        else float("inf"),
        "answers_maintained": m_session.stats.answers_maintained,
        "maintained_cache": {"hits": m_session.stats.cache_hits,
                             "misses": m_session.stats.cache_misses},
        "invalidate_cache": {"hits": b_session.stats.cache_hits,
                             "misses": b_session.stats.cache_misses},
    }


def _interning_microbench(rows: int = 20_000, distinct: int = 64,
                          probes: int = 200_000):
    """Probe cost of rows built from interned vs freshly-allocated strings."""
    fresh = [("member" + str(index % distinct) + "_payload",
              "ward" + str(index % 7), float(index % 11))
             for index in range(rows)]
    interner = ValueInterner()
    interned = [interner.intern_row(row) for row in fresh]

    def probe(table):
        stored = set(table)
        start = time.perf_counter()
        hits = 0
        for index in range(probes):
            if table[index % rows] in stored:
                hits += 1
        assert hits == probes
        return time.perf_counter() - start

    fresh_seconds = probe(fresh)
    interned_seconds = probe(interned)
    return {
        "rows": rows,
        "distinct_constants": distinct,
        "probes": probes,
        "fresh_seconds": round(fresh_seconds, 6),
        "interned_seconds": round(interned_seconds, 6),
        "speedup": round(fresh_seconds / interned_seconds, 2)
        if interned_seconds > 0 else float("inf"),
    }


def test_maintained_answers_beat_invalidate_and_reanswer():
    """Maintained ≡ re-answered at every size; ≥5× faster at the largest."""
    trajectory = [_run_one_size(size) for size in SIZES]
    interning = _interning_microbench(rows=2_000 if SMOKE else 20_000,
                                      probes=20_000 if SMOKE else 200_000)

    largest = trajectory[-1]
    if MIN_SPEEDUP:
        assert largest["speedup"] >= MIN_SPEEDUP, (
            f"maintained update→answer cycle only {largest['speedup']}x "
            f"faster than invalidate-and-reanswer at the largest size; "
            f"trajectory: {trajectory}")

    if SMOKE:
        return  # tiny sizes would pollute the recorded trajectory

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
        "interning": interning,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E14-answer-maintenance",
        "workload": {"dimensions": 1, "depth": 3, "fanout": 3,
                     "upward_rules": True, "seed": 13,
                     "adds_per_step": 3, "retracts_per_step": 2},
        "sizes": list(SIZES),
        "trajectory": trajectory,
        "interning": interning,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()
