"""E10 — Ablations of design choices (see docs/ARCHITECTURE.md).

* restricted vs oblivious chase on the same MD ontology (the restricted
  chase fires fewer triggers because it skips already-satisfied heads);
* indexed+delta engine vs the naive reference engine on the same chase;
* navigation-direction mix: upward-only vs downward-only vs both;
* constraint-checking overhead (referential constraints on vs off).
"""

from __future__ import annotations

import pytest

from repro.datalog.chase import OBLIVIOUS, RESTRICTED, chase
from repro.ontology.mdontology import MDOntology
from repro.workloads import WorkloadSpec, generate_workload


@pytest.mark.parametrize("mode", [RESTRICTED, OBLIVIOUS])
def test_ablation_chase_flavour(benchmark, scenario, mode):
    """Restricted vs oblivious chase on the hospital ontology."""
    program = scenario.ontology.program()

    result = benchmark(lambda: chase(program, mode=mode, check_constraints=False))
    assert result.terminated
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["trigger_applications"] = result.steps
    benchmark.extra_info["facts_after_chase"] = result.instance.total_tuples()


@pytest.mark.parametrize("engine", ["indexed", "naive"])
def test_ablation_engine_flavour(benchmark, scenario, engine):
    """Indexed+delta engine vs the naive reference on the hospital chase."""
    program = scenario.ontology.program()

    result = benchmark(lambda: chase(program, engine=engine, check_constraints=False))
    assert result.terminated
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["rows_scanned"] = result.stats.rows_scanned
    benchmark.extra_info["index_probes"] = result.stats.index_probes
    benchmark.extra_info["trigger_applications"] = result.steps


@pytest.mark.parametrize("direction", ["upward", "downward", "both"])
def test_ablation_navigation_direction_mix(benchmark, direction):
    """Chase cost as a function of which navigation directions are enabled."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        tuples_per_relation=60, seed=23,
        upward_rules=direction in ("upward", "both"),
        downward_rules=direction in ("downward", "both")))
    program = workload.ontology.program()

    result = benchmark(lambda: chase(program, check_constraints=False))
    benchmark.extra_info["direction"] = direction
    benchmark.extra_info["trigger_applications"] = result.steps
    benchmark.extra_info["generated_nulls"] = len(result.generated_nulls())


@pytest.mark.parametrize("with_constraints", [True, False],
                         ids=["with-referential", "without-referential"])
def test_ablation_referential_constraint_overhead(benchmark, scenario, with_constraints):
    """Cost of checking the form-(1) referential constraints during assessment."""

    def run():
        ontology = MDOntology(scenario.md,
                              generate_referential_constraints=with_constraints)
        ontology.add_rule("PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).")
        return ontology.check_consistency()

    result = benchmark(run)
    assert result.is_consistent
    benchmark.extra_info["constraints_checked"] = (
        len(scenario.ontology.program().constraints) if with_constraints else 0)
