"""E16 — Columnar engine: batch/compiled joins vs the indexed engine.

Sweeps the extensional database size and, at each size, runs the two hot
paths that dominate steady-state serving (the E11 query side and the E12
maintenance side) once on the indexed engine and once on the columnar one:

* **query batch** — answer the workload's full query batch with support
  counts (``evaluate_query_counts``) against the chased instance, the loop
  a :class:`~repro.engine.session.QuerySession` replays on every cache
  miss and the daemon replays per request;
* **delta joins** — drive every query's :class:`DeltaJoinPlan` over a
  sampled delta (``projected_counts``), the loop counting-based IVM
  maintenance replays on every update.

Both engines must produce identical counts everywhere; at the largest size
the columnar path must be at least 5× faster on both hot paths and at
least 2× faster on the **chase** itself: batched trigger application
(grouped head instantiation, bulk null invention, ``add_many`` inserts
with delta-merged group indexes) moved the per-trigger Python work into
the same set-at-a-time kernels as the joins, so the end-to-end chase is
now gated alongside the two matcher-side paths.

Timings are warm: the first columnar touch pays the one-time numpy import
and join codegen, which would otherwise swamp sub-millisecond measurements.
The trajectory (with the engine's instrumentation counters) is written to
``BENCH_columnar.json`` at the repository root.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the sweep to seconds (tiny sizes,
no 5× gate, no artifact write) so CI can exercise this code on every push.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.datalog import chase
from repro.datalog.answering import evaluate_query_counts
from repro.engine.matching import DeltaJoinPlan, matcher_for
from repro.workloads import WorkloadSpec, generate_workload

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (100, 200, 400, 800)
REPS = 2 if SMOKE else 5
DELTA_ROWS = 8 if SMOKE else 64
MIN_SPEEDUP = 5.0
MIN_CHASE_SPEEDUP = 2.0

ENGINES = ("indexed", "columnar")


def _best(run, reps):
    return min(run() for _ in range(reps))


def _measure_engine(engine, program, queries, delta_seed):
    """Chase + warm hot-path timings for one engine at one size."""
    def chase_once():
        start = time.perf_counter()
        result = chase(program, engine=engine, check_constraints=False)
        return time.perf_counter() - start, result

    chase_seconds, result = chase_once()
    # Best of two: single sub-100ms chase runs are GC/noise-prone, and the
    # first columnar chase of the process additionally pays the one-time
    # numpy import and join codegen.
    chase_seconds = min(chase_seconds, chase_once()[0])
    instance = result.instance
    matcher = matcher_for(engine)

    def query_batch():
        start = time.perf_counter()
        counts = [evaluate_query_counts(query, instance, matcher=matcher)
                  for query in queries]
        return time.perf_counter() - start, counts

    query_batch()  # warm: join codegen, group indexes, plan caches
    query_seconds, query_counts = min(
        (query_batch() for _ in range(REPS)), key=lambda run: run[0])

    live = [(relation.schema.name, row)
            for relation in instance for row in relation.rows()]
    delta = random.Random(delta_seed).sample(
        live, k=min(DELTA_ROWS, len(live)))
    plans = [DeltaJoinPlan(matcher, query.body,
                           variables=query.body_variables(),
                           comparisons=query.comparisons)
             for query in queries]

    def delta_batch():
        start = time.perf_counter()
        counts = [plan.projected_counts(instance, delta,
                                        query.answer_variables)
                  for query, plan in zip(queries, plans)]
        return time.perf_counter() - start, counts

    delta_batch()  # warm
    delta_seconds, delta_counts = min(
        (delta_batch() for _ in range(REPS)), key=lambda run: run[0])

    return {
        "chase_seconds": chase_seconds,
        "query_seconds": query_seconds,
        "delta_seconds": delta_seconds,
        "query_counts": query_counts,
        "delta_counts": delta_counts,
        # chase-side counters (triggers_batched, nulls_bulk_allocated,
        # index_delta_merges) live on the chase result's stats; merge them
        # so the artifact shows the whole measured pipeline
        "stats": matcher.stats.merge(result.stats).as_dict(),
    }


def test_columnar_speedup_records_trajectory():
    """Columnar ≡ indexed at every size; ≥5× on both hot paths; emits JSON."""
    base = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                        base_relations=1, upward_rules=True,
                        downward_rules=False, seed=13)
    trajectory = []
    for size in SIZES:
        workload = generate_workload(base.scaled(tuples_per_relation=size))
        program = workload.ontology.program()
        runs = {engine: _measure_engine(engine, program, workload.queries,
                                        delta_seed=99)
                for engine in ENGINES}
        assert runs["columnar"]["query_counts"] == \
            runs["indexed"]["query_counts"]
        assert runs["columnar"]["delta_counts"] == \
            runs["indexed"]["delta_counts"]
        entry = {"tuples_per_relation": size,
                 "extensional_facts": workload.total_facts(),
                 "queries": len(workload.queries)}
        for engine in ENGINES:
            for key in ("chase_seconds", "query_seconds", "delta_seconds"):
                entry[f"{engine}_{key}"] = round(runs[engine][key], 6)
            entry[f"{engine}_stats"] = runs[engine]["stats"]
        for key in ("query", "delta", "chase"):
            slow = runs["indexed"][f"{key}_seconds"]
            fast = runs["columnar"][f"{key}_seconds"]
            entry[f"{key}_speedup"] = round(
                slow / fast if fast > 0 else float("inf"), 2)
        trajectory.append(entry)

    largest = trajectory[-1]
    if SMOKE:
        return  # tiny sizes: no speedup gate, don't pollute the artifact
    for key in ("query", "delta"):
        assert largest[f"{key}_speedup"] >= MIN_SPEEDUP, (
            f"columnar engine only {largest[f'{key}_speedup']}x faster than "
            f"indexed on the {key} hot path at the largest size; "
            f"trajectory: {trajectory}")
    assert largest["chase_speedup"] >= MIN_CHASE_SPEEDUP, (
        f"columnar chase only {largest['chase_speedup']}x faster than "
        f"indexed at the largest size (batched trigger application should "
        f"make it >= {MIN_CHASE_SPEEDUP}x); trajectory: {trajectory}")

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trajectory": trajectory,
    }
    history = (history + [run_record])[-20:]
    ARTIFACT.write_text(json.dumps({
        "experiment": "E16-columnar-engine",
        "workload": {"dimensions": 1, "depth": 3, "fanout": 3,
                     "upward_rules": True, "seed": 13},
        "sizes": list(SIZES),
        "delta_rows": DELTA_ROWS,
        "trajectory": trajectory,
        "runs": history,
    }, indent=2) + "\n", encoding="utf-8")
    assert ARTIFACT.exists()


def test_columnar_engine_batches_the_scans():
    """The instrumentation shows *how*: the work moved into batch kernels."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=3, top_members=2, base_relations=1,
        tuples_per_relation=200, upward_rules=True, seed=13))
    program = workload.ontology.program()
    chased = chase(program, engine="columnar", check_constraints=False)
    matcher = matcher_for("columnar")
    for _ in range(2):
        for query in workload.queries:
            evaluate_query_counts(query, chased.instance, matcher=matcher)
    assert matcher.stats.batch_joins > 0
    assert matcher.stats.rows_batch_scanned > matcher.stats.batch_joins
    assert matcher.stats.codegen_cache_hits > 0
    # the chase itself went through the batched trigger path: every trigger
    # was applied set-at-a-time, none fell back to the per-trigger loop
    assert chased.stats.triggers_batched > 0
    assert chased.stats.triggers_batched == chased.stats.triggers_fired
