"""Shared fixtures for the benchmark harness.

Each ``test_eXX_*.py`` module regenerates one experiment derived from the
paper's tables, figures, worked examples and analytical claims (the engine
layering behind them is described in docs/ARCHITECTURE.md).  Timings are
collected by pytest-benchmark;
the reproduced values (the "rows" of each paper artifact) are attached to
``benchmark.extra_info`` so they appear in the benchmark report and can be
compared against the expectations recorded in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.hospital import HospitalScenario, build_ontology, build_upward_only_ontology
from repro.workloads import WorkloadSpec, generate_workload


@pytest.fixture(scope="session")
def scenario() -> HospitalScenario:
    """The paper's running example (rules (7)-(9), constraint (6))."""
    return HospitalScenario()


@pytest.fixture(scope="session")
def constrained_ontology():
    """The hospital ontology with Example 1's closure constraints enabled."""
    return build_ontology(include_closure_constraints=True)


@pytest.fixture(scope="session")
def upward_only_ontology():
    """The upward-navigating fragment (rule (7) only) used for FO rewriting."""
    return build_upward_only_ontology()


@pytest.fixture(scope="session")
def scaling_specs():
    """The |D| sweep used by the Section-IV scaling experiments."""
    base = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                        base_relations=1, upward_rules=True, downward_rules=False,
                        seed=13)
    return [base.scaled(tuples_per_relation=n) for n in (50, 100, 200)]


@pytest.fixture(scope="session")
def scaling_workloads(scaling_specs):
    """Pre-generated workloads for the |D| sweep (generation not timed)."""
    return [generate_workload(spec) for spec in scaling_specs]


@pytest.fixture(scope="session")
def mixed_workload():
    """A workload with both upward and downward rules (ablations, E10)."""
    return generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=60, assessment_tuples=80, upward_rules=True,
        downward_rules=True, seed=21))
