"""E1 — Tables I/II, Examples 1 and 7: the quality version of Measurements.

Regenerates Table II (the quality version ``Measurements^q`` of Table I) by
running the full contextual pipeline — map Table I into the context, chase
the MD ontology (triggering upward navigation through rule (7)), evaluate
the quality predicates and the quality-version rules — and answers the
doctor's query through it.

Expected shape (the paper's Table II): exactly the two Tom Waits tuples of
Sep/5 12:10 and Sep/6 11:50 survive; the doctor's query (restricted to Sep/5
around noon) returns only the first.
"""

from __future__ import annotations

from repro.hospital import MEASUREMENTS_QUALITY_ROWS
from repro.quality.cleaning import quality_answers


def test_table2_quality_version_materialization(benchmark, scenario):
    """Time the materialization of Measurements^q (Table II)."""

    def materialize():
        return scenario.context.quality_version(scenario.measurements, "Measurements")

    quality = benchmark(materialize)

    reproduced = sorted(set(quality), key=str)
    expected = sorted(set(MEASUREMENTS_QUALITY_ROWS), key=str)
    assert reproduced == expected, "quality version does not match Table II"
    benchmark.extra_info["table_II_rows"] = [list(map(str, row)) for row in reproduced]
    benchmark.extra_info["quality_tuples"] = len(reproduced)
    benchmark.extra_info["stored_tuples"] = len(
        scenario.measurements.relation("Measurements"))


def test_table2_doctor_query_quality_answers(benchmark, scenario):
    """Time quality (clean) query answering for the doctor's query (Example 7)."""

    def answer():
        return quality_answers(scenario.context, scenario.measurements,
                               "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits', "
                               "T >= 'Sep/5-11:45', T <= 'Sep/5-12:15'.")

    answers = benchmark(answer)
    assert answers == (("Sep/5-12:10", "Tom Waits", 38.2),)
    benchmark.extra_info["quality_answers"] = [list(map(str, row)) for row in answers]


def test_table2_quality_ratio_assessment(benchmark, scenario):
    """Time the departure measure between Table I and its quality version."""

    assessment = benchmark(scenario.assess)
    measurements = assessment.relations["Measurements"]
    assert measurements.kept_tuples == 2 and measurements.total_tuples == 6
    benchmark.extra_info["quality_ratio"] = round(measurements.quality_ratio, 4)
    benchmark.extra_info["departure"] = measurements.departure
