"""E2 — Tables III/IV, Examples 2 and 5: downward navigation via rule (8).

The query "on which dates does Mark have a shift in ward W1/W2" has no
answer in the stored ``Shifts`` relation; rule (8) drills the Standard-unit
schedule of Sep/9 down to wards W1 and W2, inventing a null for the unknown
shift.  Expected answer (the paper's Example 5): Sep/9.

Both query-answering routes of Section IV are timed: the chase and the
deterministic weakly-sticky algorithm.
"""

from __future__ import annotations

from repro.datalog import DeterministicWSQAns, parse_query
from repro.hospital import MARK_SHIFT_QUERY, MARK_SHIFT_W2_QUERY, build_ontology


def test_example5_chase_based_answering(benchmark, scenario):
    """Time chase-based certain answers for Example 5 (fresh chase each run)."""

    def answer():
        ontology = build_ontology(scenario.md)
        return ontology.certain_answers(MARK_SHIFT_QUERY)

    answers = benchmark(answer)
    assert answers == (("Sep/9",),)
    benchmark.extra_info["answer"] = [list(row) for row in answers]


def test_example5_deterministic_ws_answering(benchmark, scenario):
    """Time DeterministicWSQAns on the same query (no materialization)."""
    program = scenario.ontology.program()
    query = parse_query(MARK_SHIFT_QUERY)

    def answer():
        return DeterministicWSQAns(program).answers(query)

    answers = benchmark(answer)
    assert answers == (("Sep/9",),)
    benchmark.extra_info["answer"] = [list(row) for row in answers]


def test_example2_unit_drills_down_to_both_wards(benchmark, scenario):
    """Time the W2 variant and check the unit fans out to both wards."""
    program_ontology = scenario.ontology

    def answer():
        return (program_ontology.certain_answers(MARK_SHIFT_QUERY),
                program_ontology.certain_answers(MARK_SHIFT_W2_QUERY))

    w1_answers, w2_answers = benchmark(answer)
    assert w1_answers == w2_answers == (("Sep/9",),)
    chased = program_ontology.chase().instance.relation("Shifts")
    generated_wards = sorted({row[0] for row in chased if row[2] == "Mark"})
    assert generated_wards == ["W1", "W2"]
    benchmark.extra_info["generated_wards"] = generated_wards
    benchmark.extra_info["null_shift_tuples"] = sum(
        1 for row in chased if row[2] == "Mark")
