"""E7 — Section IV: query answering is polynomial in the data size.

Sweeps the extensional database size and times (a) chase-based certain
answers and (b) the deterministic weakly-sticky algorithm on the same query
workload.  The expected shape is low-degree polynomial growth (the paper's
tractability claim); both routes must return the same answers at every
size.
"""

from __future__ import annotations

import pytest

from repro.datalog import DeterministicWSQAns, certain_answers, chase


@pytest.mark.parametrize("index", [0, 1, 2], ids=["small", "medium", "large"])
def test_section4_chase_based_answering_scaling(benchmark, scaling_workloads, index):
    """Time chase + evaluation of the full query batch at growing |D|."""
    workload = scaling_workloads[index]
    program = workload.ontology.program()

    def run():
        shared = chase(program, check_constraints=False)
        return [certain_answers(program, query, chase_result=shared)
                for query in workload.queries]

    answers = benchmark(run)
    assert all(isinstance(batch, tuple) for batch in answers)
    benchmark.extra_info["extensional_facts"] = workload.total_facts()
    benchmark.extra_info["queries"] = len(workload.queries)
    benchmark.extra_info["total_answers"] = sum(len(batch) for batch in answers)


@pytest.mark.parametrize("index", [0, 1, 2], ids=["small", "medium", "large"])
def test_section4_deterministic_ws_scaling(benchmark, scaling_workloads, index):
    """Time DeterministicWSQAns on the same workload at growing |D|."""
    workload = scaling_workloads[index]
    program = workload.ontology.program()

    def run():
        solver = DeterministicWSQAns(program)
        return [solver.answers(query) for query in workload.queries]

    ws_answers = benchmark(run)
    shared = chase(program, check_constraints=False)
    for query, answers in zip(workload.queries, ws_answers):
        assert answers == certain_answers(program, query, chase_result=shared)
    benchmark.extra_info["extensional_facts"] = workload.total_facts()
    benchmark.extra_info["total_answers"] = sum(len(batch) for batch in ws_answers)
