"""E18 — Overload saturation curve: read tail latency under write floods.

The admission-control claim, measured against a real daemon subprocess:
**back-pressure protects readers**.  The bounded commit queue sheds
excess writers with typed ``busy`` refusals (which the client retries
with backoff), so a write flood saturates the *write* path while pinned
MVCC reads — which never touch the commit queue or the write lock —
keep their latency.

The benchmark sweeps writer concurrency (1 → 16 processes, each a
retrying :class:`~repro.serving.client.ServingClient`), and at every
level records the accepted write throughput, the busy-rejection count,
the effective commit batch size and the **read p50/p99** measured from a
concurrent reader connection.  The gate: read p99 under the heaviest
flood stays within **5×** the unloaded baseline p99 (with a small
absolute floor so a sub-millisecond baseline doesn't turn scheduler
noise into a failure).

The numbers land in ``BENCH_overload.json`` (with run history).
``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI and skips the gate and
the artifact write.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

import repro
from repro.serving import ServingClient

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_overload.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WRITER_LEVELS = (1, 4) if SMOKE else (1, 4, 8, 16)
WRITES_EACH = 4 if SMOKE else 30
BASELINE_READS = 40 if SMOKE else 300
QUEUE_CAP = 8
MAX_P99_RATIO = 0.0 if SMOKE else 5.0
P99_FLOOR_SECONDS = 0.1  # noise floor for sub-millisecond baselines

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
    Base(a, b). Base(c, d).
    Link(b, t1). Link(d, t2).
"""

READ_QUERY = "?(X, Z) :- Joined(X, Z)."


def _spawn_daemon(data_dir: Path, program_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    env.pop("REPRO_FAULT_STALL", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serving.daemon",
         "--data-dir", str(data_dir), "--program", str(program_file),
         "--port", "0", "--quiet", "--no-sync",
         "--checkpoint-every", "1000000",
         "--queue-cap", str(QUEUE_CAP)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _shutdown(client: ServingClient, process: subprocess.Popen) -> None:
    try:
        client.shutdown()
    except Exception:  # noqa: BLE001 - already gone
        pass
    client.close()
    if process.poll() is None:
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung daemon
            process.kill()
            process.wait(timeout=30)


#: Writer processes (GIL-free concurrency), retrying busy refusals with
#: backoff — the saturation curve measures the *daemon* shedding load,
#: not clients giving up.  ready/go keeps startup out of the window.
WRITER_SCRIPT = """
import sys, time
from repro.serving.client import ServingClient
data_dir, writer, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
client = ServingClient.connect(data_dir, wait=30.0, busy_retries=1000,
                               backoff_base=0.005, backoff_max=0.25)
print("ready", flush=True)
sys.stdin.readline()  # go
start = time.perf_counter()
for index in range(count):
    client.add_facts([("Base", (writer + "n" + str(index), "b"))])
print("done", time.perf_counter() - start, flush=True)
client.close()
"""


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]
    return {"reads": len(ordered),
            "p50_ms": round(pick(0.50) * 1000, 3),
            "p99_ms": round(pick(0.99) * 1000, 3)}


def _baseline_reads(reader: ServingClient) -> Dict[str, float]:
    latencies = []
    for _ in range(BASELINE_READS):
        start = time.perf_counter()
        with reader.read() as txn:
            txn.answers(READ_QUERY)
        latencies.append(time.perf_counter() - start)
    return _percentiles(latencies)


def _flood_level(reader: ServingClient, data_dir: Path, writers: int,
                 tag: str) -> Dict[str, float]:
    """One sweep level: flood with ``writers`` processes while reading,
    measured from the daemon's own stats deltas."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    processes = [subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT,
         str(data_dir), f"{tag}w{writer}", str(WRITES_EACH)],
        env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        for writer in range(writers)]
    latencies: List[float] = []
    try:
        for process in processes:
            assert process.stdout.readline().strip() == "ready"
        before = reader.stats()["serving"]["group_commit"]
        start = time.perf_counter()
        for process in processes:
            process.stdin.write("go\n")
            process.stdin.flush()
        # Read continuously until every writer reports done.
        live = list(processes)
        while live:
            read_start = time.perf_counter()
            with reader.read() as txn:
                txn.answers(READ_QUERY)
            latencies.append(time.perf_counter() - read_start)
            live = [process for process in live if not _writer_done(process)]
        elapsed = time.perf_counter() - start
        after = reader.stats()["serving"]["group_commit"]
        for process in processes:
            assert process.wait(timeout=60) == 0
    finally:
        for process in processes:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
                process.wait(timeout=30)
    total = writers * WRITES_EACH
    batches = after["commit_batches"] - before["commit_batches"]
    records = after["wal_records"] - before["wal_records"]
    return {
        "writers": writers,
        "writes": total,
        "seconds": round(elapsed, 6),
        "accepted_per_second": round(total / elapsed, 1),
        "busy_rejections": after["busy_rejections"] -
        before["busy_rejections"],
        "records_per_batch": round(records / max(1, batches), 2),
        **_percentiles(latencies),
    }


def _writer_done(process: subprocess.Popen) -> bool:
    """Whether the writer's done line is ready (non-blocking probe)."""
    ready, _, _ = select.select([process.stdout], [], [], 0)
    if not ready:
        return False
    line = process.stdout.readline().split()
    assert line and line[0] == "done", f"writer failed: {line}"
    return True


def test_read_tail_latency_survives_write_flood(tmp_path):
    """Sweep writer concurrency; gate loaded read p99 ≤ 5× unloaded."""
    program_file = tmp_path / "program.dlg"
    program_file.write_text(PROGRAM_TEXT, encoding="utf-8")
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file)
    try:
        reader = ServingClient.connect(data_dir, wait=30.0)
    except BaseException:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
        raise
    try:
        baseline = _baseline_reads(reader)
        levels = [_flood_level(reader, data_dir, writers, tag=f"L{writers}")
                  for writers in WRITER_LEVELS]
        admission = reader.stats()["serving"]["admission"]
    finally:
        _shutdown(reader, process)

    heaviest = levels[-1]
    baseline_p99 = baseline["p99_ms"] / 1000
    loaded_p99 = heaviest["p99_ms"] / 1000
    budget = max(MAX_P99_RATIO * baseline_p99, P99_FLOOR_SECONDS)
    if MAX_P99_RATIO:
        assert loaded_p99 <= budget, (
            f"read p99 under a {heaviest['writers']}-writer flood is "
            f"{heaviest['p99_ms']}ms — over {MAX_P99_RATIO}x the unloaded "
            f"{baseline['p99_ms']}ms baseline (budget "
            f"{budget * 1000:.1f}ms); back-pressure is not protecting "
            "readers")

    if SMOKE:
        return  # tiny sweeps would pollute the recorded history

    history = []
    if ARTIFACT.exists():
        try:
            history = json.loads(
                ARTIFACT.read_text(encoding="utf-8")).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    run_record = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "queue_cap": QUEUE_CAP,
        "queue_peak": admission["queue_peak"],
        "unloaded_reads": baseline,
        "levels": levels,
        "p99_ratio": round(loaded_p99 / max(1e-9, baseline_p99), 2),
    }
    history.append(run_record)
    ARTIFACT.write_text(
        json.dumps({"experiment": "E18 overload saturation",
                    "gate": f"flooded read p99 <= {MAX_P99_RATIO}x "
                            f"unloaded (floor "
                            f"{int(P99_FLOOR_SECONDS * 1000)}ms)",
                    "latest": run_record,
                    "runs": history[-20:]},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
