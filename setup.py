"""Setup script for the ``repro`` package.

A classic setup.py (rather than PEP 517/660 metadata) is used on purpose:
the reproduction environment is fully offline and has no ``wheel`` package,
so the legacy ``pip install -e .`` code path is the one that works
everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Multidimensional ontological contexts in Datalog+/- for data quality "
        "assessment (reproduction of Milani, Bertossi & Ariyan, 2014)"
    ),
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        # Optional: vectorizes the columnar engine's batch join kernels.
        # Without it the same kernels run over plain lists (identical
        # semantics, exercised by the differential suite under
        # REPRO_NO_NUMPY=1).
        "fast": ["numpy"],
    },
)
