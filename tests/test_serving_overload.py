"""Overload and back-pressure suite for the serving daemon.

The invariants under test, driven by the ``REPRO_FAULT_STALL`` overload
injection points (:mod:`repro.serving.wal`) composed with the existing
crash matrix:

* **reads never hang under a write flood** — a stalled committer plus a
  tiny ``--queue-cap`` and 16 concurrent writer processes saturates the
  write path, while pinned MVCC reads keep answering (they never touch
  the commit queue or the write lock);
* **no acked write is ever lost** — the flood composes with
  ``REPRO_FAULT_CRASH=group-commit-durable``: everything a writer saw
  acknowledged before the crash is in the recovered state;
* **shed load is typed** — a full queue refuses with
  :class:`~repro.errors.ServerBusyError` carrying a positive
  ``retry_after`` hint; a retrying client converges, a ``busy_retries=0``
  client raises the typed error;
* **a poisoned oversized request degrades only its own session** — an
  over-limit protocol line is drained and refused at the socket boundary
  without parsing; the same connection stays usable and concurrent
  sessions never notice;
* **stop() never strands a blocked writer** — every writer queued behind
  a stalled committer when the daemon stops fails with a typed
  :class:`~repro.errors.DaemonShutdownError` (or was committed), and
  every client thread returns.

``REPRO_FAULT_SEED`` (the CI matrix) shifts the randomized stream
contents like the recovery suite.
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

import pytest

import repro
from repro.datalog import parse_program
from repro.errors import (DaemonShutdownError, RequestTooLargeError,
                          DaemonUnavailableError, ServerBusyError)
from repro.serving import AdmissionPolicy, ServingClient
from repro.serving.daemon import (ConnectionState, ProgramBackend,
                                  ServingDaemon)
from repro.serving.wal import FAULT_EXIT_CODE

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
    Base(a, b). Base(c, d).
    Link(b, t1). Link(d, t2).
"""

FLOOD_WRITERS = 16
FLOOD_WRITES_EACH = 5


# -- helpers ------------------------------------------------------------------


def _daemon(tmp_path: Path, **kwargs) -> ServingDaemon:
    """A recovered in-process daemon over the tiny program."""
    daemon = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT)),
                           tmp_path / "data", sync=False, **kwargs)
    daemon.recover()
    return daemon


def _spawn_daemon(data_dir: Path, program_file: Path, *,
                  queue_cap: Optional[int] = None,
                  stall: Optional[str] = None,
                  fault: Optional[str] = None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    env.pop("REPRO_FAULT_STALL", None)
    if stall:
        env["REPRO_FAULT_STALL"] = stall
    if fault:
        env["REPRO_FAULT_CRASH"] = fault
    command = [sys.executable, "-m", "repro.serving.daemon",
               "--data-dir", str(data_dir), "--program", str(program_file),
               "--port", "0", "--quiet", "--no-sync",
               "--checkpoint-every", "1000000"]
    if queue_cap is not None:
        command += ["--queue-cap", str(queue_cap)]
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.dlg"
    path.write_text(PROGRAM_TEXT, encoding="utf-8")
    return path


def _wait_for(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.005)


#: One OS process per writer (like the E17 burst): retries on busy with
#: backoff, reports how many of its sequential writes were acknowledged.
WRITER_SCRIPT = """
import sys
from repro.serving.client import ServingClient
data_dir, writer, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
client = ServingClient.connect(data_dir, wait=30.0, busy_retries=500,
                               backoff_base=0.01, backoff_max=0.25)
print("ready", flush=True)
sys.stdin.readline()  # go
acked = 0
try:
    for index in range(count):
        client.add_facts([("Base", (writer + "n" + str(index), "b"))])
        acked += 1
except Exception:
    pass  # the daemon died (crash-composed runs) — report what was acked
print("done", acked, flush=True)
client.close()
"""


def _flood(data_dir: Path, writers: int,
           writes_each: int) -> List[int]:
    """Run the writer processes concurrently; returns each writer's
    acknowledged-write count (writes are sequential per writer, so the
    acked facts are exactly the first ``acked`` of its stream)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    env.pop("REPRO_FAULT_STALL", None)
    processes = [subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT,
         str(data_dir), f"w{writer}", str(writes_each)],
        env=env, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        for writer in range(writers)]
    acked: List[int] = []
    try:
        for process in processes:
            assert process.stdout.readline().strip() == "ready"
        for process in processes:
            process.stdin.write("go\n")
            process.stdin.flush()
        for process in processes:
            line = process.stdout.readline().split()
            assert line and line[0] == "done", f"writer failed: {line}"
            acked.append(int(line[1]))
        for process in processes:
            assert process.wait(timeout=60) == 0
        return acked
    finally:
        for process in processes:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
                process.wait(timeout=30)


# -- flood: reads keep answering, shed load is counted ------------------------


def test_write_flood_never_hangs_reads_and_keeps_every_ack(tmp_path,
                                                           program_file):
    """16 writer processes against a stalled committer and a 4-entry
    queue: pinned reads answer throughout, every acknowledged write is
    readable afterwards, and the queue shed load (counted)."""
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file, queue_cap=4,
                            stall="group-commit-stall:0.03")
    reader = None
    try:
        reader = ServingClient.connect(data_dir, wait=30.0)
        read_latencies: List[float] = []
        flood_over = threading.Event()
        read_errors: List[BaseException] = []

        def _read_loop():
            try:
                while not flood_over.is_set():
                    start = time.perf_counter()
                    with reader.read() as txn:
                        assert txn.answers("?(X, Y) :- Derived(X, Y).")
                    read_latencies.append(time.perf_counter() - start)
            except BaseException as exc:  # noqa: BLE001 - reported below
                read_errors.append(exc)

        read_thread = threading.Thread(target=_read_loop, daemon=True)
        read_thread.start()
        try:
            acked = _flood(data_dir, FLOOD_WRITERS, FLOOD_WRITES_EACH)
        finally:
            flood_over.set()
        read_thread.join(timeout=30)
        assert not read_thread.is_alive(), "a pinned read hung under flood"
        assert not read_errors, f"reads failed under flood: {read_errors!r}"
        assert read_latencies, "the read loop never completed a read"

        # The retrying writers converged: every write was eventually acked.
        assert acked == [FLOOD_WRITES_EACH] * FLOOD_WRITERS
        rows = {row[0] for row in
                reader.answers("?(X, Y) :- Derived(X, Y).")}
        for writer in range(FLOOD_WRITERS):
            for index in range(FLOOD_WRITES_EACH):
                assert f"w{writer}n{index}" in rows, \
                    "an acknowledged write is not readable"

        admission = reader.stats()["serving"]["admission"]
        counters = reader.stats()["serving"]["group_commit"]
        assert admission["queue_cap"] == 4
        assert admission["queue_peak"] <= 4
        assert counters["busy_rejections"] > 0, \
            "the flood never filled the queue — the scenario is too weak"
    finally:
        if reader is not None:
            try:
                reader.shutdown()
            except Exception:  # noqa: BLE001 - already gone
                pass
            reader.close()
        if process.poll() is None:
            process.wait(timeout=30)


def test_overload_composed_with_crash_keeps_acked_writes(tmp_path,
                                                         program_file):
    """The crash matrix composed with the flood: the daemon dies at the
    group-commit durable point mid-flood; everything any writer saw
    acknowledged is in the recovered state."""
    rng = random.Random(1700 + FAULT_SEED)
    crash_batch = rng.randint(2, 6)
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file, queue_cap=4,
                            stall="group-commit-stall:0.02",
                            fault=f"group-commit-durable:{crash_batch}")
    try:
        acked = _flood(data_dir, 8, FLOOD_WRITES_EACH)
        process.wait(timeout=60)
        assert process.returncode == FAULT_EXIT_CODE, \
            "the injected crash never fired"
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.wait(timeout=30)
    assert any(count < FLOOD_WRITES_EACH for count in acked), \
        "every writer finished — the crash fired after the flood"

    daemon = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT)),
                           data_dir)
    daemon.recover()
    try:
        recovered = {row[0] for row in daemon.backend.materialized
                     .certain_answers("?(X, Y) :- Base(X, Y).")}
    finally:
        daemon.stop()
    for writer, count in enumerate(acked):
        for index in range(count):  # acks are sequential per writer
            assert f"w{writer}n{index}" in recovered, \
                f"acked write w{writer}n{index} was lost in the crash"


# -- typed busy refusals ------------------------------------------------------


def test_busy_refusal_is_typed_and_retrying_client_converges(tmp_path,
                                                             monkeypatch):
    """Over the wire: a full queue refuses with ServerBusyError carrying
    a positive retry_after; busy_retries=0 surfaces it, the default
    retrying client backs off and lands the write."""
    monkeypatch.setenv("REPRO_FAULT_STALL", "group-commit-stall:0.6")
    daemon = _daemon(tmp_path, admission=AdmissionPolicy(queue_cap=1))
    host, port = daemon.start()
    stallers: List[ServingClient] = []
    try:
        def _stalled_write(name: str) -> threading.Thread:
            client = ServingClient(host, port)
            stallers.append(client)
            thread = threading.Thread(
                target=client.add_facts,
                args=([("Base", (name, "b"))],), daemon=True)
            thread.start()
            return thread

        # First write: drained into the (stalling) committer batch.
        first = _stalled_write("stall1")
        _wait_for(lambda: daemon.last_lsn == 0 and
                  not daemon._commit_queue and first.is_alive(),
                  message="the committer to pick up the first write")
        # Second write: sits in the queue, filling it to the cap.
        second = _stalled_write("stall2")
        _wait_for(lambda: len(daemon._commit_queue) >= 1,
                  message="the queue to fill to its cap")

        blunt = ServingClient(host, port, busy_retries=0)
        with pytest.raises(ServerBusyError) as refused:
            blunt.add_facts([("Base", ("shed", "b"))])
        assert refused.value.retry_after > 0
        blunt.close()
        assert daemon.serving_stats.busy_rejections == 1

        patient = ServingClient(host, port, busy_retries=50,
                                backoff_base=0.02, backoff_max=0.5)
        patient.add_facts([("Base", ("patient", "b"))])
        patient.close()
        first.join(timeout=30)
        second.join(timeout=30)
        assert not first.is_alive() and not second.is_alive()
        rows = {row[0] for row in daemon.backend.materialized
                .certain_answers("?(X, Y) :- Base(X, Y).")}
        assert {"stall1", "stall2", "patient"} <= rows
        assert "shed" not in rows, "a refused write was logged anyway"
    finally:
        for client in stallers:
            client.close()
        daemon.stop()


def test_inflight_cap_per_connection(tmp_path, monkeypatch):
    """A connection with its in-flight write still committing is refused
    a second one (typed busy, counted) when the cap is 1."""
    monkeypatch.setenv("REPRO_FAULT_STALL", "group-commit-stall:0.5")
    daemon = _daemon(tmp_path, admission=AdmissionPolicy(
        max_inflight_per_connection=1))
    connection = ConnectionState(daemon.backend.versions)
    try:
        thread = threading.Thread(
            target=daemon.apply_write,
            args=("add", [("Base", ("inflight1", "b"))]),
            kwargs={"connection": connection}, daemon=True)
        thread.start()
        _wait_for(lambda: connection.inflight_writes == 1,
                  message="the first write to be in flight")
        with pytest.raises(ServerBusyError):
            daemon.apply_write("add", [("Base", ("inflight2", "b"))],
                               connection=connection)
        assert daemon.serving_stats.inflight_rejections == 1
        thread.join(timeout=30)
        assert not thread.is_alive()
        # With the first write committed the connection has capacity again.
        daemon.apply_write("add", [("Base", ("inflight3", "b"))],
                           connection=connection)
    finally:
        daemon.stop()


# -- oversized requests degrade only their own session ------------------------


def test_oversized_line_degrades_only_its_own_session(tmp_path):
    """A protocol line over max_request_bytes is drained and refused
    typed without parsing; the same connection keeps working and a
    concurrent session never notices."""
    daemon = _daemon(tmp_path, admission=AdmissionPolicy(
        max_request_bytes=2048))
    host, port = daemon.start()
    poisoned = other = None
    try:
        poisoned = ServingClient(host, port)
        other = ServingClient(host, port)
        lsn_before = daemon.last_lsn
        huge = [("Base", (f"huge{index}", "b")) for index in range(500)]
        with pytest.raises(RequestTooLargeError):
            poisoned.add_facts(huge)
        # Only its own request was shed: the connection is still usable...
        assert poisoned.ping()["pong"]
        poisoned.add_facts([("Base", ("small", "b"))])
        # ...the concurrent session is untouched...
        assert other.answers("?(X, Y) :- Derived(X, Y).")
        # ...and nothing oversized reached the WAL.
        assert daemon.last_lsn == lsn_before + 1  # just the small write
        assert daemon.serving_stats.requests_shed == 1
    finally:
        for client in (poisoned, other):
            if client is not None:
                client.close()
        daemon.stop()


def test_oversized_fact_count_refused_before_logging(tmp_path):
    """A write over max_facts_per_write is refused typed before
    validation; the WAL is untouched and the rejection is counted."""
    daemon = _daemon(tmp_path, admission=AdmissionPolicy(
        max_facts_per_write=5))
    try:
        lsn_before = daemon.last_lsn
        with pytest.raises(RequestTooLargeError):
            daemon.apply_write(
                "add", [("Base", (f"bulk{index}", "b"))
                        for index in range(6)])
        assert daemon.last_lsn == lsn_before
        assert daemon.serving_stats.oversized_rejections == 1
        assert daemon.serving_stats.wal_records == 0
        daemon.apply_write("add", [("Base", ("ok", "b"))])  # within limits
    finally:
        daemon.stop()


# -- stop() vs in-flight writers ----------------------------------------------


def test_stop_never_strands_blocked_writers(tmp_path, monkeypatch):
    """Writers blocked on a stalled committer when stop() runs all return
    promptly: committed, or refused with the typed shutdown error."""
    monkeypatch.setenv("REPRO_FAULT_STALL", "group-commit-stall:0.4")
    daemon = _daemon(tmp_path)
    outcomes: List[Tuple[str, Optional[BaseException]]] = []
    outcomes_lock = threading.Lock()

    def _writer(name: str) -> None:
        try:
            daemon.apply_write("add", [("Base", (name, "b"))])
            with outcomes_lock:
                outcomes.append((name, None))
        except BaseException as exc:  # noqa: BLE001 - collected for asserts
            with outcomes_lock:
                outcomes.append((name, exc))

    threads = [threading.Thread(target=_writer, args=(f"race{index}",),
                                daemon=True) for index in range(6)]
    for thread in threads:
        thread.start()
    _wait_for(lambda: daemon._commit_queue or
              any(not t.is_alive() for t in threads),
              message="writers to reach the commit queue")
    daemon.stop()
    for thread in threads:
        thread.join(timeout=30)
    assert all(not thread.is_alive() for thread in threads), \
        "stop() stranded a blocked writer thread"
    assert len(outcomes) == len(threads)
    for name, error in outcomes:
        assert error is None or isinstance(error, DaemonShutdownError), \
            f"writer {name} failed untyped: {error!r}"
    # At least the stranded tail was refused typed (stop() raced them).
    shutdown_errors = [error for _, error in outcomes if error is not None]
    committed = [name for name, error in outcomes if error is None]
    assert len(shutdown_errors) + len(committed) == len(threads)


# -- prompt failure on stale addresses ----------------------------------------


def test_stale_daemon_json_fails_promptly(tmp_path):
    """A daemon.json advertising a dead port raises
    DaemonUnavailableError within the wait budget — no 30 s hang."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    (tmp_path / "daemon.json").write_text(
        f'{{"host": "127.0.0.1", "port": {dead_port}}}', encoding="utf-8")
    # Generous vs the 0.8 s wait budget, floored far above scheduler
    # noise — the regression this guards is the full 30 s I/O timeout.
    refusal_budget = max(10.0, 12.5 * 0.8)
    start = time.monotonic()
    with pytest.raises(DaemonUnavailableError):
        ServingClient.connect(tmp_path, wait=0.8)
    elapsed = time.monotonic() - start
    assert elapsed < refusal_budget, \
        f"a dead advertised port took {elapsed:.1f}s to refuse"
