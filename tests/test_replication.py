"""Log-shipping replication suite: a replica tails the primary's WAL
segments and serves reads identical to the primary's.

The invariants under test:

* **catch-up equivalence** — a caught-up replica's ground facts and
  certain answers equal the primary's (the differential check), because
  replay goes through the same maintained-answer path as the primary;
* **read routing** — ``ServingClient(read_from="replica")`` routes
  ``answers``/``holds``/``pin`` to the replica over the wire, writes stay
  on the primary, and the replica refuses writes loudly;
* **MVCC on the replica** — a version pinned on the replica stays frozen
  while replay advances past it;
* **reseed** — when the primary prunes segments the replica still needs,
  the replica reseeds from the newest shipped snapshot and converges;
* **torn-tail tolerance** — a half-shipped frame is "not here yet", not
  an error: the reader resumes cleanly once the bytes complete.

``REPRO_FAULT_SEED`` (CI matrix, seeds 0-2) shifts streams and sizes.
"""

from __future__ import annotations

import os
import random
import time
from typing import List, Tuple

import pytest

import test_session_differential as differential
from repro.datalog import parse_program
from repro.errors import ServingError, ServingProtocolError
from repro.serving import (CompactionPolicy, ReplicaDaemon, ServingClient,
                           ShippedLogReader, WriteAheadLog, scan_wal,
                           segment_path)
from repro.serving.daemon import ProgramBackend, ServingDaemon
from repro.serving.wal import OP_ADD, OP_RETRACT

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
    Base(a, b). Base(c, d).
    Link(b, t1). Link(d, t2).
"""

QUERIES = ("?(X, Z) :- Joined(X, Z).",
           "?(X, Y) :- Derived(X, Y).",
           "? :- Joined(X, t1).")


def _stream(rng: random.Random, steps: int) -> List[Tuple[str, List]]:
    added: List[Tuple[str, Tuple]] = []
    items: List[Tuple[str, List]] = []
    for index in range(steps):
        if added and rng.random() < 0.3:
            items.append((OP_RETRACT, [added.pop(rng.randrange(len(added)))]))
        else:
            fact = ("Base", (f"x{index}", rng.choice(["b", "d"])))
            added.append(fact)
            items.append((OP_ADD, [fact]))
    return items


def _primary(data_dir, **policy) -> ServingDaemon:
    daemon = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT)),
                           data_dir,
                           policy=CompactionPolicy(**policy)
                           if policy else None)
    daemon.recover()
    return daemon


def _replica(primary_dir, data_dir) -> ReplicaDaemon:
    # Snapshot-authoritative: the rule set comes from the shipped
    # snapshot, exactly as `python -m repro.serving.replication` defaults.
    replica = ReplicaDaemon(ProgramBackend(None), primary_dir, data_dir)
    replica.recover()
    return replica


def _assert_replica_matches(replica: ReplicaDaemon,
                            primary: ServingDaemon) -> None:
    assert differential._ground_facts(replica.backend.materialized.instance) \
        == differential._ground_facts(primary.backend.materialized.instance)
    for query in QUERIES:
        assert replica.backend.materialized.certain_answers(query) == \
            primary.backend.materialized.certain_answers(query)


# -- catch-up equivalence -----------------------------------------------------


def test_replica_catches_up_and_matches_primary(tmp_path):
    """Seed → tail → replay: the caught-up replica is observationally
    identical to the primary, across checkpoints/rotations, and reports
    zero lag."""
    primary = _primary(tmp_path / "primary", checkpoint_every_records=4,
                       keep_snapshots=2)
    replica = _replica(tmp_path / "primary", tmp_path / "replica")
    try:
        items = _stream(random.Random(5100 + FAULT_SEED), steps=10)
        for op, facts in items:
            primary.apply_write(op, list(facts))
            replica.poll()  # a live tailer keeps up as the primary churns
        assert replica.catch_up(timeout=30.0) == 0
        assert replica.applied_lsn == primary.last_lsn
        _assert_replica_matches(replica, primary)

        status = replica.replication_status()
        assert status["lag_records"] == 0
        assert status["records_replayed"] > 0
        assert status["reseeds"] == 0

        # More writes after the first catch-up keep flowing.
        primary.apply_write(OP_ADD, [("Link", ("b", "t99"))])
        assert replica.catch_up(timeout=30.0) == 0
        _assert_replica_matches(replica, primary)
    finally:
        replica.stop()
        primary.stop()


def test_replica_pinned_version_stays_frozen(tmp_path):
    """A version pinned on the replica answers the same rows while replay
    publishes newer versions past it — MVCC reads, not last-writer-wins."""
    primary = _primary(tmp_path / "primary")
    replica = _replica(tmp_path / "primary", tmp_path / "replica")
    try:
        primary.apply_write(OP_ADD, [("Base", ("pinned", "b"))])
        assert replica.catch_up(timeout=30.0) == 0
        session = replica.backend.session
        with session.read() as txn:
            before = txn.answers(QUERIES[1])
            primary.apply_write(OP_ADD, [("Base", ("later", "d"))])
            assert replica.catch_up(timeout=30.0) == 0
            assert txn.answers(QUERIES[1]) == before  # frozen cut
        _assert_replica_matches(replica, primary)  # latest sees the write
    finally:
        replica.stop()
        primary.stop()


# -- the wire: routing, refusal, lag ------------------------------------------


def test_client_routes_reads_to_replica_and_writes_to_primary(tmp_path):
    """The full socket path: a client with ``read_from="replica"`` sends
    answers/holds/pin to the replica and writes to the primary; the
    replica refuses writes; replication lag is surfaced."""
    primary = _primary(tmp_path / "primary")
    replica = _replica(tmp_path / "primary", tmp_path / "replica")
    client = None
    try:
        primary.start(host="127.0.0.1", port=0)
        replica.start(host="127.0.0.1", port=0)
        client = ServingClient.connect(tmp_path / "primary", wait=30.0,
                                       replica_dir=tmp_path / "replica",
                                       read_from="replica")
        assert client._reader() is client._replica  # routed
        assert client._replica.ping()["role"] == "replica"

        client.add_facts([("Base", ("routed", "b"))])  # lands on the primary
        deadline = time.monotonic() + 30.0
        while client.replication_lag() > 0:
            assert time.monotonic() < deadline, "replica never caught up"
            time.sleep(0.02)
        # The read comes off the replica and includes the routed write.
        rows = client.answers(QUERIES[1])
        assert ("routed", "b") in rows
        assert client.holds("? :- Derived(routed, b).")

        # Pinned reads pin on the replica and stay frozen there.
        with client.read() as read:
            before = read.answers(QUERIES[1])
            client.add_facts([("Base", ("after-pin", "d"))])
            while client.replication_lag() > 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert read.answers(QUERIES[1]) == before

        # Writes to the replica itself are refused with a pointer back.
        with pytest.raises(ServingProtocolError, match="read replica"):
            client._replica.add_facts([("Base", ("nope", "b"))])

        stats = client.replica_stats()["serving"]
        assert stats["role"] == "replica"
        assert stats["replication"]["applied_lsn"] == primary.last_lsn

        # Flipping the knob back routes reads to the primary again.
        client.read_from = "primary"
        assert client._reader() is client
        assert ("after-pin", "d") in client.answers(QUERIES[1])
    finally:
        if client is not None:
            client.close()
        replica.stop()
        primary.stop()


# -- reseed after pruning -----------------------------------------------------


def test_replica_reseeds_after_segments_are_pruned(tmp_path):
    """A replica left behind while the primary checkpoints aggressively
    (its needed segments pruned) must reseed from the newest shipped
    snapshot and converge — not crash, not serve stale answers forever."""
    primary = _primary(tmp_path / "primary", checkpoint_every_records=2,
                       keep_snapshots=0)
    replica = _replica(tmp_path / "primary", tmp_path / "replica")
    try:
        seeded_at = replica.applied_lsn
        # Churn far past the replica's seed point without letting it poll:
        # the segments covering (seeded_at, …] get pruned away.
        items = _stream(random.Random(5600 + FAULT_SEED), steps=10)
        for op, facts in items:
            primary.apply_write(op, list(facts))
        assert replica.catch_up(timeout=30.0) == 0
        assert replica.serving_stats.reseeds >= 1
        assert replica.applied_lsn > seeded_at
        _assert_replica_matches(replica, primary)
        assert replica.replication_status()["reseeds"] >= 1
    finally:
        replica.stop()
        primary.stop()


# -- the shipped-log reader ---------------------------------------------------


def test_shipped_reader_tolerates_torn_tails(tmp_path):
    """A half-shipped frame is "not shipped yet": the reader returns the
    complete prefix, then resumes with the rest once the bytes arrive —
    no error, no duplicate, no skip."""
    primary_dir = tmp_path / "primary"
    primary_dir.mkdir()
    wal = WriteAheadLog.create(segment_path(primary_dir, 0))
    for index in range(3):
        wal.append(OP_ADD, [("Base", (f"r{index}", "b"))])
    wal.close()
    path = segment_path(primary_dir, 0)
    complete = path.read_bytes()
    lines = complete.splitlines(keepends=True)
    torn_at = len(complete) - len(lines[-1]) + \
        random.Random(FAULT_SEED).randrange(1, len(lines[-1]) - 1)
    path.write_bytes(complete[:torn_at])  # the last frame is half-shipped

    reader = ShippedLogReader(primary_dir, start_lsn=0)
    first = reader.poll()
    assert [record.lsn for record in first] == [1, 2]
    assert reader.poll() == []  # still torn: nothing new, no error

    path.write_bytes(complete)  # the rest of the frame arrives
    second = reader.poll()
    assert [record.lsn for record in second] == [3]
    assert second[0].facts == (("Base", ("r2", "b")),)
    assert reader.next_lsn == 4
    # Sanity: the file itself is a clean, un-torn WAL again.
    assert scan_wal(path).torn_reason is None


def test_reader_refuses_a_log_rewritten_under_it(tmp_path):
    """If the shipped segment shrinks below the reader's position (the
    primary rolled back records the replica already consumed), the reader
    raises the reseed signal instead of serving divergent history."""
    from repro.serving.replication import ReplicationGapError
    primary_dir = tmp_path / "primary"
    primary_dir.mkdir()
    wal = WriteAheadLog.create(segment_path(primary_dir, 0))
    frames = wal.append_batch([(OP_ADD, [("Base", ("keep", "b"))]),
                               (OP_ADD, [("Base", ("doomed", "d"))])])
    reader = ShippedLogReader(primary_dir, start_lsn=0)
    assert [record.lsn for record in reader.poll()] == [1, 2]
    wal.rollback_to(frames[0].lsn, frames[1].offset)  # primary rolls back
    wal.close()
    with pytest.raises((ReplicationGapError, ServingError)):
        reader.poll()


def test_replica_without_a_shipped_snapshot_is_refused(tmp_path):
    """Seeding from an empty primary directory must fail loudly, telling
    the operator to let the primary recover (and checkpoint) first."""
    (tmp_path / "primary").mkdir()
    with pytest.raises(ServingError, match="no snapshot"):
        _replica(tmp_path / "primary", tmp_path / "replica")


def test_replica_rejects_sharing_the_primary_directory(tmp_path):
    """Pointing a replica's own data directory at the primary's would
    fight over daemon.json — refused up front."""
    with pytest.raises(ServingError, match="own data directory"):
        ReplicaDaemon(ProgramBackend(None), tmp_path / "p", tmp_path / "p")
