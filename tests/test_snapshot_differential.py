"""Crash/restart differential suite: restored sessions ≡ live sessions.

A :class:`~repro.engine.session.MaterializedProgram` snapshotted to disk
and reloaded in a fresh process-like context (nothing shared with the live
session except the file) must be observationally identical to the session
that kept running:

* the immediate round-trip ``load(save(mp))`` is **lossless** — identical
  instance (including labeled-null structure), EDB, provenance graph and
  certain answers;
* driving the restored session through the **same update stream** as the
  live one yields identical ground facts and certain answers at every
  step (null labels may diverge — fresh nulls are invented in different
  trigger orders — but the entailed ground atoms may not);
* quality sessions restore with identical quality versions and
  assessments at every step.

Programs, update sequences and queries are the randomized families of
``test_session_differential``; everything runs on both engines.
"""

from __future__ import annotations

import random

import pytest

import test_session_differential as differential
from repro.datalog.atoms import Atom
from repro.datalog.rules import EGD
from repro.datalog.terms import Variable
from repro.engine.session import MaterializedProgram
from repro.errors import EGDConflictError
from repro.quality.session import QualitySession
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ENGINES = ("indexed", "naive")


def _roundtrip(materialized: MaterializedProgram, tmp_path,
               with_program: bool = True) -> MaterializedProgram:
    """Save + load through a file, sharing nothing with the live session."""
    path = tmp_path / "session.snapshot"
    materialized.save(path)
    program = materialized.edb_program() if with_program else None
    return MaterializedProgram.load(path, program=program)


def _assert_step_equivalent(live: MaterializedProgram,
                            restored: MaterializedProgram, seed: int) -> None:
    assert differential._ground_facts(live.instance) == \
        differential._ground_facts(restored.instance)
    rng = random.Random(seed)
    for query in differential._random_queries(rng, live.edb_program()):
        assert live.certain_answers(query) == restored.certain_answers(query)


# -- plain programs ------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(8))
def test_plain_restored_session_tracks_live_session(seed, engine, tmp_path):
    """Plain programs: restore mid-stream, then drive both sessions through
    the same continued update stream."""
    program = differential._random_program(seed, existential=False)
    live = MaterializedProgram(program, engine=engine)
    rng = random.Random(4000 + seed)
    updates = differential._random_updates(rng, program, steps=8)
    for action, facts in updates[:3]:  # age the session before snapshotting
        differential._apply_step(live, action, facts)

    restored = _roundtrip(live, tmp_path)
    assert restored.instance == live.instance  # exact, nulls included
    assert restored.version == live.version

    for action, facts in updates[3:]:
        differential._apply_step(live, action, facts)
        differential._apply_step(restored, action, facts)
        _assert_step_equivalent(live, restored, seed)


# -- existential programs ------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(100, 106))
def test_existential_restored_session_tracks_live_session(seed, engine,
                                                          tmp_path):
    """Labeled nulls in the snapshot: provenance-driven retraction keeps
    working after a restore."""
    program = differential._random_program(seed, existential=True)
    live = MaterializedProgram(program, engine=engine)
    rng = random.Random(5000 + seed)
    updates = differential._random_updates(rng, program, steps=6)
    for action, facts in updates[:2]:
        differential._apply_step(live, action, facts)

    restored = _roundtrip(live, tmp_path)
    assert restored.instance == live.instance
    assert (restored._provenance is None) == (live._provenance is None)
    if live._provenance is not None:
        assert dict(restored._provenance) == dict(live._provenance)

    for action, facts in updates[2:]:
        differential._apply_step(live, action, facts)
        differential._apply_step(restored, action, facts)
        _assert_step_equivalent(live, restored, seed)


@pytest.mark.parametrize("seed", range(100, 104))
def test_restore_without_program_reconstructs_rules(seed, tmp_path):
    """``load(path)`` with no program decodes the rules from the snapshot
    itself; the restored session still tracks the live one."""
    program = differential._random_program(seed, existential=True)
    live = MaterializedProgram(program)
    restored = _roundtrip(live, tmp_path, with_program=False)
    assert restored.instance == live.instance
    rng = random.Random(6000 + seed)
    for action, facts in differential._random_updates(rng, program, steps=4):
        differential._apply_step(live, action, facts)
        differential._apply_step(restored, action, facts)
        _assert_step_equivalent(live, restored, seed)


# -- EGD programs --------------------------------------------------------------


@pytest.mark.parametrize("seed", range(300, 306))
def test_egd_restored_session_tracks_live_session(seed, tmp_path):
    """EGD programs: merges, the ambiguity flag and the full-rechase
    fallback all survive the snapshot round-trip."""
    program = differential._random_program(seed, existential=True)
    name, arity = sorted(program.predicate_arities().items())[-1]
    if arity < 2:
        pytest.skip("needs a binary+ predicate for a functional dependency")
    x, y = Variable("FD_x"), Variable("FD_y")
    key = [Variable(f"K{i}") for i in range(arity - 1)]
    program.add_egd(EGD(x, y, [Atom(name, key + [x]), Atom(name, key + [y])]))

    try:
        live = MaterializedProgram(program)
    except EGDConflictError:
        return  # inconsistent from the start: nothing to snapshot
    restored = _roundtrip(live, tmp_path)
    assert restored.instance == live.instance
    assert restored._ambiguous == live._ambiguous

    rng = random.Random(7000 + seed)
    for action, facts in differential._random_updates(rng, program, steps=4):
        try:
            differential._apply_step(live, action, facts)
        except EGDConflictError:
            with pytest.raises(EGDConflictError):
                differential._apply_step(restored, action, facts)
            return
        differential._apply_step(restored, action, facts)
        assert differential._ground_facts(live.instance) == \
            differential._ground_facts(restored.instance)


# -- generated MD workloads ----------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_workload_restored_session_tracks_live_session(engine, tmp_path):
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=20, upward_rules=True,
        downward_rules=True, seed=7))
    program = workload.ontology.program()
    live = MaterializedProgram(program, engine=engine)
    restored = _roundtrip(live, tmp_path)
    for step in generate_update_stream(workload, steps=4, adds_per_step=2,
                                       retracts_per_step=1, seed=7):
        for session in (live, restored):
            session.add_facts(step.adds)
            session.retract_facts(step.retracts)
        assert differential._ground_facts(live.instance) == \
            differential._ground_facts(restored.instance)
        for query in workload.queries:
            assert live.certain_answers(query) == \
                restored.certain_answers(query)


# -- quality sessions ----------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 21])
def test_quality_session_restores_versions_and_assessments(seed, tmp_path):
    """A restored QualitySession reports identical quality versions and
    assessments at every step of the same update stream."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=25, upward_rules=True,
        seed=seed))
    live = workload.context.session(workload.assessment_instance)
    warmup, tail = 2, 3
    stream = generate_update_stream(workload, steps=warmup + tail,
                                    adds_per_step=2, retracts_per_step=1,
                                    seed=seed, target="assessment")
    for step in stream[:warmup]:
        for predicate, row in step.adds:
            live.add_facts(predicate, [row])
        for predicate, row in step.retracts:
            live.retract_facts(predicate, [row])

    path = tmp_path / "quality.snapshot"
    live.save(path)
    restored = QualitySession.load(workload.context, path)
    assert restored.instance == live.instance

    def assert_equivalent():
        live_versions = live.quality_versions()
        restored_versions = restored.quality_versions()
        assert set(live_versions) == set(restored_versions)
        for relation in live_versions:
            assert set(live_versions[relation]) == \
                set(restored_versions[relation])
        assert str(live.assess()) == str(restored.assess())

    assert_equivalent()
    for step in stream[warmup:]:
        for session in (live, restored):
            for predicate, row in step.adds:
                session.add_facts(predicate, [row])
            for predicate, row in step.retracts:
                session.retract_facts(predicate, [row])
        assert_equivalent()


def test_quality_session_restores_after_non_assessment_updates(tmp_path):
    """Updates to contextual EDB relations (dimensional data) are part of
    the persisted state: the restored session carries them and is not
    falsely rejected against the freshly assembled context data."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=10, assessment_tuples=15, upward_rules=True,
        seed=3))
    live = workload.context.session(workload.assessment_instance)
    dimensional = next(
        relation.schema.name for relation in live.materialized.edb
        if len(relation) and relation.schema.arity == 1
        and relation.schema.name != "Readings")
    live.add_facts(dimensional, [("zz_member",)])

    path = tmp_path / "quality.snapshot"
    live.save(path)
    restored = QualitySession.load(workload.context, path)
    assert ("zz_member",) in restored.materialized.edb.relation(dimensional)
    assert str(restored.assess()) == str(live.assess())
