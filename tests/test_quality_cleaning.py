"""Tests for clean (quality) query answering: the Q → Q^q rewriting."""

import pytest

from repro.datalog.parser import parse_query
from repro.quality.cleaning import (compare_answers, direct_answers, quality_answers,
                                    rewrite_query_to_quality)


class TestQueryRewriting:
    def test_relations_with_quality_versions_are_renamed(self, hospital_scenario):
        query = parse_query("?(T, P, V) :- Measurements(T, P, V).")
        rewritten = rewrite_query_to_quality(query, hospital_scenario.context)
        assert rewritten.body[0].predicate == "Measurements_q"
        assert rewritten.name.endswith("_q")

    def test_other_predicates_untouched(self, hospital_scenario):
        query = parse_query("?(T) :- Measurements(T, P, V), TakenByNurse(T, P, N, Y).")
        rewritten = rewrite_query_to_quality(query, hospital_scenario.context)
        predicates = [atom.predicate for atom in rewritten.body]
        assert predicates == ["Measurements_q", "TakenByNurse"]

    def test_comparisons_preserved(self, hospital_scenario):
        query = parse_query("?(T) :- Measurements(T, P, V), T >= 'Sep/5-11:45'.")
        rewritten = rewrite_query_to_quality(query, hospital_scenario.context)
        assert len(rewritten.comparisons) == 1

    def test_text_queries_accepted(self, hospital_scenario):
        rewritten = rewrite_query_to_quality("?(T, P, V) :- Measurements(T, P, V).",
                                             hospital_scenario.context)
        assert rewritten.body[0].predicate == "Measurements_q"


class TestAnswering:
    def test_direct_answers_do_not_filter(self, hospital_scenario):
        rows = direct_answers(hospital_scenario.measurements,
                              "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        assert len(rows) == 4

    def test_quality_answers_filter_to_table_2(self, hospital_scenario):
        rows = quality_answers(hospital_scenario.context, hospital_scenario.measurements,
                               "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        assert rows == (("Sep/5-12:10", "Tom Waits", 38.2),
                        ("Sep/6-11:50", "Tom Waits", 37.1))

    def test_doctor_query_quality_answer(self, hospital_scenario):
        assert hospital_scenario.quality_answers_to_doctor_query() == \
            hospital_scenario.expected_doctor_answers()

    def test_quality_answers_with_shared_chase(self, hospital_scenario):
        shared = hospital_scenario.context.chase(hospital_scenario.measurements,
                                                 check_constraints=False)
        first = quality_answers(hospital_scenario.context, hospital_scenario.measurements,
                                "?(T) :- Measurements(T, P, V).", chase_result=shared)
        second = quality_answers(hospital_scenario.context, hospital_scenario.measurements,
                                 "?(P) :- Measurements(T, P, V).", chase_result=shared)
        assert first and second


class TestComparison:
    def test_spurious_answers_and_precision(self, hospital_scenario):
        comparison = compare_answers(
            hospital_scenario.context, hospital_scenario.measurements,
            "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        assert len(comparison.direct) == 4
        assert len(comparison.quality) == 2
        assert len(comparison.spurious) == 2
        assert comparison.precision == pytest.approx(0.5)

    def test_precision_one_when_everything_is_quality(self, hospital_scenario):
        comparison = hospital_scenario.compare_doctor_query()
        assert comparison.precision == 1.0
        assert comparison.spurious == []

    def test_empty_direct_answers_give_precision_one(self, hospital_scenario):
        comparison = compare_answers(
            hospital_scenario.context, hospital_scenario.measurements,
            "?(T) :- Measurements(T, P, V), P = 'Nobody'.")
        assert comparison.precision == 1.0

    def test_str_rendering(self, hospital_scenario):
        comparison = hospital_scenario.compare_doctor_query()
        assert "direct" in str(comparison) and "quality" in str(comparison)
