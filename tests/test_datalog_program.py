"""Tests for the DatalogProgram container (predicate bookkeeping, copies)."""

import pytest

from repro.errors import DatalogError
from repro.datalog import parse_program, parse_rule
from repro.datalog.atoms import Atom
from repro.datalog.program import DatalogProgram


@pytest.fixture()
def program():
    return parse_program("""
        PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
        T = T2 :- Thermo(W, T), Thermo(W2, T2).
        false :- PatientUnit(U, D, P), not Unit(U).
        UnitWard('Standard', 'W1').
        PatientWard('W1', 'Sep/5', 'Tom Waits').
    """)


class TestBookkeeping:
    def test_predicate_arities(self, program):
        arities = program.predicate_arities()
        assert arities["PatientUnit"] == 3
        assert arities["UnitWard"] == 2
        assert arities["Thermo"] == 2
        assert arities["Unit"] == 1

    def test_inconsistent_arity_detected(self, program):
        program.add_tgd(parse_rule("PatientUnit(U, D) :- UnitWard(U, D)."))
        with pytest.raises(DatalogError):
            program.predicate_arities()

    def test_intensional_and_extensional_predicates(self, program):
        assert program.intensional_predicates() == {"PatientUnit"}
        assert "PatientWard" in program.extensional_predicates()
        assert "PatientUnit" not in program.extensional_predicates()

    def test_positions(self, program):
        positions = program.positions()
        assert ("PatientUnit", 2) in positions and ("Unit", 0) in positions

    def test_dependencies_lists_everything(self, program):
        assert len(program.dependencies()) == 3


class TestDataHandling:
    def test_add_fact_declares_relation(self):
        program = DatalogProgram()
        program.add_fact("R", ("a", "b"))
        assert program.database.relation("R").rows() == [("a", "b")]

    def test_add_atom_fact(self):
        program = DatalogProgram()
        program.add_atom_fact(Atom.fact("R", ("a",)))
        assert ("a",) in program.database.relation("R")

    def test_ensure_relations_declares_intensional_predicates(self, program):
        assert not program.database.has_relation("PatientUnit")
        program.ensure_relations()
        assert program.database.has_relation("PatientUnit")
        assert program.database.has_relation("Unit")

    def test_copy_is_independent(self, program):
        clone = program.copy()
        clone.add_fact("UnitWard", ("Intensive", "W3"))
        assert ("Intensive", "W3") not in program.database.relation("UnitWard")
        assert len(clone.tgds) == len(program.tgds)

    def test_without_constraints(self, program):
        stripped = program.without_constraints()
        assert stripped.egds == [] and stripped.constraints == []
        assert len(stripped.tgds) == 1
        assert stripped.database.total_tuples() == program.database.total_tuples()

    def test_add_rules_rejects_unknown_objects(self, program):
        with pytest.raises(DatalogError):
            program.add_rules(["not a rule object"])

    def test_str_mentions_fact_count(self, program):
        assert "extensional facts" in str(program)
