"""Differential suite for the registry scenarios beyond the hospital.

The sensor-network scenario (three chained *downward* rules through a deep
Location hierarchy) and the financial-compliance scenario (a form-(10)
disjunctive rule, freeze-window denial constraints, a settlement EGD) hit
rule classes the hospital differential suites never fire.  This suite runs
both through every oracle the repo maintains:

* **engines** — naive ≡ indexed ≡ columnar for plain answers, quality
  versions and quality answers, after every step of a randomized update
  stream;
* **IVM** — maintained cached answers ≡ a from-scratch chase + fresh
  evaluation at every step;
* **snapshots** — a session restored mid-stream stays byte-identical to
  the live one for the remainder of the stream;
* **wire** — a daemon serving the scenario backend matches an in-process
  mirror session, including across a restart from snapshot + WAL.

``REPRO_FAULT_SEED`` (CI matrix, seeds 0–2) shifts every stream.
"""

from __future__ import annotations

import os

import pytest

from repro.datalog import chase
from repro.datalog.answering import certain_answers
from repro.datalog.parser import parse_query
from repro.fincompliance.data import violating_approval
from repro.scenarios import build_scenario
from repro.serving import ServingClient
from repro.serving.daemon import ServingDaemon
from repro.serving.compaction import CompactionPolicy

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

SCENARIOS = ("sensornet", "fincompliance")
ENGINES = ("naive", "indexed", "columnar")


def _stream_seed(seed: int) -> int:
    return 100 * seed + FAULT_SEED


def _sorted_rows(relation) -> tuple:
    return tuple(sorted(relation.rows(), key=repr))


def _apply(session, relation: str, step) -> None:
    session.add_facts(relation, [row for _, row in step.adds])
    session.retract_facts(relation, [row for _, row in step.retracts])


def _observe(scenario, session) -> dict:
    """Everything a scenario session can answer, in comparable shapes."""
    observation = {
        "quality_version": _sorted_rows(
            session.quality_version(scenario.assessed_relation)),
        "assessment": str(session.assess()),
    }
    for query in scenario.queries():
        observation[query] = session.query_session.answers(query)
        observation["holds:" + query] = session.query_session.holds(query)
    for query in scenario.quality_queries():
        observation["quality:" + query] = tuple(
            session.quality_answers(query))
    return observation


# -- engines -----------------------------------------------------------------


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("seed", range(3))
def test_engines_agree_through_update_stream(name, seed):
    """naive ≡ indexed ≡ columnar at every step of a randomized stream."""
    scenarios = {engine: build_scenario(name) for engine in ENGINES}
    sessions = {engine: scenario.context.session(scenario.instance,
                                                 engine=engine)
                for engine, scenario in scenarios.items()}
    stream = scenarios[ENGINES[0]].update_stream(
        steps=5, adds_per_step=2, retracts_per_step=1,
        seed=_stream_seed(seed))
    relation = scenarios[ENGINES[0]].assessed_relation
    for step in stream:
        observations = {}
        for engine in ENGINES:
            _apply(sessions[engine], relation, step)
            observations[engine] = _observe(scenarios[engine],
                                            sessions[engine])
        for engine in ENGINES[1:]:
            assert observations[engine] == observations[ENGINES[0]], engine


# -- IVM ---------------------------------------------------------------------


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("seed", range(3))
def test_maintained_equals_recomputed(name, seed):
    """Cached answers moved by deltas ≡ scratch chase + fresh evaluation."""
    scenario = build_scenario(name)
    session = scenario.session()
    queries = [parse_query(q) for q in scenario.queries()]
    stream = scenario.update_stream(steps=5, seed=_stream_seed(seed) + 7)
    for step in stream:
        _apply(session, scenario.assessed_relation, step)
        materialized = session.materialized
        reference = chase(materialized.edb_program(),
                          check_constraints=False)
        for query in queries:
            assert session.query_session.answers(query) == certain_answers(
                materialized.edb_program(), query,
                chase_result=reference), str(query)


# -- snapshots ---------------------------------------------------------------


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("seed", range(3))
def test_restored_session_tracks_live(name, seed, tmp_path):
    """Mid-stream save → restore; both halves then observe identically."""
    live = build_scenario(name)
    stream = live.update_stream(steps=6, seed=_stream_seed(seed) + 13)
    for step in stream[:3]:
        _apply(live.session(), live.assessed_relation, step)
    path = live.save_session(tmp_path / "scenario.snap")

    restored = build_scenario(name)
    restored.restore_session(path)
    assert _observe(restored, restored.session()) == \
        _observe(live, live.session())
    for step in stream[3:]:
        _apply(live.session(), live.assessed_relation, step)
        _apply(restored.session(), restored.assessed_relation, step)
        assert _observe(restored, restored.session()) == \
            _observe(live, live.session())


# -- the wire ----------------------------------------------------------------


def _observe_client(scenario, client) -> dict:
    observation = {
        "quality_version": tuple(sorted(
            client.quality_version(scenario.assessed_relation), key=repr)),
        "assessment": client.assess()["text"],
    }
    for query in scenario.queries():
        observation[query] = client.answers(query)
        observation["holds:" + query] = client.holds(query)
    for query in scenario.quality_queries():
        observation["quality:" + query] = tuple(
            client.quality_answers(query))
    return observation


def _observe_mirror(scenario, session) -> dict:
    observation = {
        "quality_version": tuple(sorted(
            tuple(session.quality_version(
                scenario.assessed_relation).sorted_rows()), key=repr)),
        "assessment": str(session.assess()),
    }
    for query in scenario.queries():
        observation[query] = session.query_session.answers(query)
        observation["holds:" + query] = session.query_session.holds(query)
    for query in scenario.quality_queries():
        observation["quality:" + query] = tuple(
            session.quality_answers(query))
    return observation


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("seed", range(3))
def test_daemon_matches_in_process_across_restart(name, seed, tmp_path):
    """Served ≡ in-process through the stream, and after a restart that
    recovers from snapshot + WAL (checkpoints every 2 records)."""
    served = build_scenario(name)
    mirror = build_scenario(name)
    mirror_session = mirror.session()
    relation = served.assessed_relation
    stream = served.update_stream(steps=4, seed=_stream_seed(seed) + 29)

    policy = CompactionPolicy(checkpoint_every_records=2)
    daemon = ServingDaemon(served.serving_backend(), tmp_path / "serve",
                           sync=False, policy=policy)
    daemon.recover()
    host, port = daemon.start()
    client = ServingClient(host, port)
    try:
        for step in stream:
            client.add_facts([(relation, row) for _, row in step.adds])
            client.retract_facts(
                [(relation, row) for _, row in step.retracts])
            _apply(mirror_session, relation, step)
            assert _observe_client(served, client) == \
                _observe_mirror(mirror, mirror_session)
    finally:
        client.close()
        daemon.stop()

    # Restart: a fresh daemon over the same data dir must recover the
    # exact state (snapshot + WAL replay) — fresh scenario object too,
    # so nothing leaks through in-process state.
    reborn = build_scenario(name)
    daemon = ServingDaemon(reborn.serving_backend(), tmp_path / "serve",
                           sync=False, policy=policy)
    daemon.recover()
    host, port = daemon.start()
    client = ServingClient(host, port)
    try:
        assert _observe_client(reborn, client) == \
            _observe_mirror(mirror, mirror_session)
    finally:
        client.close()
        daemon.stop()


# -- constraint witnesses ----------------------------------------------------


def test_fincompliance_freeze_constraint_witnesses_violation():
    """Clean data is consistent; the canonical violating approval row
    (restricted branch, freeze month) flips ``is_consistent``."""
    scenario = build_scenario("fincompliance")
    assert scenario.ontology.is_consistent()
    scenario.ontology.program().database.add(
        "BranchApproval", violating_approval(scenario.spec))
    assert not scenario.ontology.is_consistent()


def test_sensornet_downward_chain_reaches_sensors():
    """The three-step downward chain produces sensor-level audits and a
    non-trivial quality version (neither empty nor everything)."""
    scenario = build_scenario("sensornet")
    session = scenario.session()
    audited = session.query_session.answers(
        "?(S, D) :- SensorAudit(S, D, V).")
    assert audited, "downward chain never reached the sensor level"
    quality = _sorted_rows(session.quality_version("SensorReadings"))
    total = len(scenario.initial_rows())
    assert 0 < len(quality) < total
