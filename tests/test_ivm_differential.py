"""Differential tests: maintained answers ≡ re-answering from scratch.

The counting-based answer maintenance of :mod:`repro.engine.session` must
be *observationally invisible*: a long-lived :class:`QuerySession` whose
cached answers are moved by every update's fact delta has to return, after
every step of a randomized update stream, exactly what a from-scratch chase
of the current EDB plus a fresh evaluation would return.  This suite pins
that equivalence on the same randomized program families as
``test_session_differential`` — plain, existential, EGD — plus generated
quality-context workloads, on both engines, with a fixed query set answered
after every step so the maintained entries live across many deltas.

Where the stream contains no EGD surprises, the suite also asserts the
maintenance machinery actually ran (``answers_maintained`` grew and no
fallback fired) — a regression guard against silently degrading to
invalidate-and-reanswer.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog import chase
from repro.datalog.answering import certain_answers
from repro.engine.session import MaterializedProgram, QuerySession
from repro.errors import EGDConflictError
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

from test_session_differential import (_ground_facts, _random_program,
                                       _random_queries, _random_updates)

ENGINES = ("indexed", "naive")


def _fixed_queries(seed: int, program):
    rng = random.Random(9000 + seed)
    return _random_queries(rng, program, count=4)


def _check_step(session: QuerySession, queries) -> None:
    """Maintained answers must equal scratch-chase answers for every query."""
    materialized = session.materialized
    reference = chase(materialized.edb_program(), check_constraints=False)
    for query in queries:
        assert session.answers(query) == \
            certain_answers(materialized.edb_program(), query,
                            chase_result=reference), str(query)
    assert _ground_facts(reference.instance) == \
        _ground_facts(materialized.instance)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(12))
def test_plain_streams_maintained_equals_recomputed(seed, engine):
    program = _random_program(seed, existential=False)
    materialized = MaterializedProgram(program, engine=engine)
    session = QuerySession(materialized)
    queries = _fixed_queries(seed, program)
    for query in queries:
        session.answers(query)  # warm the maintained entries
    rng = random.Random(4000 + seed)
    for action, facts in _random_updates(rng, program, steps=6):
        if action == "add":
            materialized.add_facts(facts)
        else:
            materialized.retract_facts(facts)
        _check_step(session, queries)
    # No EGDs anywhere: every touched entry must have been maintained.
    assert session.stats.maintenance_fallbacks == 0


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(100, 110))
def test_existential_streams_maintained_equals_recomputed(seed, engine):
    """Labeled nulls flow through the maintained counts (cones re-derive
    null-carrying facts; certain answers keep dropping them)."""
    program = _random_program(seed, existential=True)
    materialized = MaterializedProgram(program, engine=engine)
    session = QuerySession(materialized)
    queries = _fixed_queries(seed, program)
    for query in queries:
        session.answers(query)
    rng = random.Random(5000 + seed)
    for action, facts in _random_updates(rng, program, steps=5):
        if action == "add":
            materialized.add_facts(facts)
        else:
            materialized.retract_facts(facts)
        _check_step(session, queries)
    assert session.stats.maintenance_fallbacks == 0


@pytest.mark.parametrize("seed", range(300, 308))
def test_egd_streams_fall_back_and_stay_correct(seed):
    """With a functional dependency in play, maintenance falls back on
    merge-carrying updates — and answers still match scratch chases."""
    from repro.datalog.atoms import Atom
    from repro.datalog.rules import EGD
    from repro.datalog.terms import Variable

    program = _random_program(seed, existential=True)
    target = sorted(program.predicate_arities().items())[-1]
    name, arity = target
    if arity < 2:
        pytest.skip("needs a binary+ predicate for a functional dependency")
    x, y = Variable("FD_x"), Variable("FD_y")
    key = [Variable(f"K{i}") for i in range(arity - 1)]
    program.add_egd(EGD(x, y, [Atom(name, key + [x]), Atom(name, key + [y])]))

    try:
        materialized = MaterializedProgram(program)
    except EGDConflictError:
        return
    session = QuerySession(materialized)
    queries = _fixed_queries(seed, program)
    for query in queries:
        session.answers(query)
    rng = random.Random(6000 + seed)
    for action, facts in _random_updates(rng, program, steps=4):
        try:
            if action == "add":
                materialized.add_facts(facts)
            else:
                materialized.retract_facts(facts)
        except EGDConflictError:
            with pytest.raises(EGDConflictError):
                chase(materialized.edb_program(), check_constraints=False)
            return
        _check_step(session, queries)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", [7, 21])
def test_workload_streams_maintained_equals_recomputed(seed, engine):
    """Generated MD workloads: the benchmark-shaped query batch stays exact
    across a base-relation update stream, answered step by step."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=20, upward_rules=True,
        downward_rules=True, seed=seed))
    program = workload.ontology.program()
    materialized = MaterializedProgram(program, engine=engine)
    session = QuerySession(materialized)
    session.answer_many(workload.queries)
    for step in generate_update_stream(workload, steps=4, adds_per_step=2,
                                       retracts_per_step=1, seed=seed):
        materialized.add_facts(step.adds)
        materialized.retract_facts(step.retracts)
        _check_step(session, workload.queries)
    assert session.stats.answers_maintained > 0
    assert session.stats.maintenance_fallbacks == 0


@pytest.mark.parametrize("seed", [7, 21])
def test_quality_session_maintained_equals_fresh_context(seed):
    """Quality-version queries ride the same maintained path: after every
    assessment update, the session's quality answers equal a from-scratch
    context materialization over the same data."""
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=25, upward_rules=True,
        seed=seed))
    session = workload.context.session(workload.assessment_instance)
    queries = [
        "?(E, S, V) :- Readings(E, S, V).",
        "?(S) :- Readings(E, S, V).",
    ]
    for query in queries:
        session.quality_answers(query)
    for step in generate_update_stream(workload, steps=4, adds_per_step=2,
                                       retracts_per_step=2, seed=seed,
                                       target="assessment"):
        for predicate, row in step.adds:
            session.add_facts(predicate, [row])
        for predicate, row in step.retracts:
            session.retract_facts(predicate, [row])
        fresh = workload.context.session(session.instance,
                                         record_provenance=False)
        for query in queries:
            assert tuple(session.quality_answers(query)) == \
                tuple(fresh.quality_answers(query)), query
    assert session.query_session.stats.answers_maintained > 0
