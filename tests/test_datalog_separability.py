"""Tests for EGD/TGD separability analysis (Section III's separability claim)."""


from repro.datalog import parse_program, parse_query, parse_rule
from repro.datalog.separability import (check_separability_empirically, egd_separability_report,
                                        null_prone_positions)


def tgds(*texts):
    return [parse_rule(text) for text in texts]


def egds(*texts):
    return [parse_rule(text) for text in texts]


class TestNullPronePositions:
    def test_existential_head_positions_are_prone(self):
        prone = null_prone_positions(tgds("exists Z : P(X, Z) :- Q(X)."))
        assert ("P", 1) in prone
        assert ("Q", 0) not in prone

    def test_propagation_through_frontier_variables(self):
        prone = null_prone_positions(tgds(
            "exists Z : P(X, Z) :- Q(X).",
            "R(Y) :- P(X, Y).",
        ))
        assert ("R", 0) in prone

    def test_no_existentials_no_prone_positions(self):
        assert null_prone_positions(tgds("P(X) :- Q(X, Y).")) == set()


class TestSyntacticCertificate:
    def test_egd_on_safe_positions_is_certified(self):
        report = egd_separability_report(
            tgds("exists Z : P(X, Z) :- Q(X)."),
            egds("T = T2 :- Q(T), Q(T2)."))
        assert report.separable
        assert len(report.certified_egds) == 1

    def test_egd_on_null_prone_positions_is_not_certified(self):
        report = egd_separability_report(
            tgds("exists Z : P(X, Z) :- Q(X)."),
            egds("A = B :- P(X, A), P(X, B)."))
        assert not report.separable
        assert len(report.uncertified_egds) == 1
        assert report.reasons

    def test_empty_egd_set_is_separable(self):
        assert egd_separability_report(tgds("P(X) :- Q(X)."), []).separable

    def test_hospital_thermometer_egd_is_certified(self, hospital_ontology):
        analysis = hospital_ontology.analysis()
        assert analysis.separability.separable


class TestEmpiricalCheck:
    def test_separable_program_passes(self):
        program = parse_program("""
            PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
            T = T2 :- Thermo(W, T), Thermo(W2, T2), UnitWard(U, W), UnitWard(U, W2).
            UnitWard(standard, w1). UnitWard(standard, w2).
            Thermo(w1, b1). Thermo(w2, b1).
            PatientWard(w1, sep5, tom).
        """)
        queries = [parse_query("?(U) :- PatientUnit(U, sep5, tom).")]
        assert check_separability_empirically(program, queries)

    def test_inconsistent_program_fails(self):
        program = parse_program("""
            T = T2 :- Thermo(W, T), Thermo(W2, T2), UnitWard(U, W), UnitWard(U, W2).
            UnitWard(standard, w1). UnitWard(standard, w2).
            Thermo(w1, b1). Thermo(w2, b2).
        """)
        assert not check_separability_empirically(program, [])

    def test_non_separable_program_detected_dynamically(self):
        # The EGD equates a chase-invented null with a constant, which makes
        # a new query answer derivable only when EGDs are applied during the
        # chase: certain answers with vs without EGDs differ.
        program = parse_program("""
            exists Z : Assigned(X, Z) :- Item(X).
            Z = Y :- Assigned(X, Z), Declared(X, Y).
            Good(X) :- Assigned(X, gold).
            Item(i1).
            Declared(i1, gold).
        """)
        queries = [parse_query("?(X) :- Good(X).")]
        assert not check_separability_empirically(program, queries)
