"""Tests for TGDs, EGDs, negative constraints and conjunctive queries."""

import pytest

from repro.errors import DatalogError, UnsafeRuleError
from repro.datalog.atoms import Atom, Comparison
from repro.datalog.rules import EGD, ConjunctiveQuery, NegativeConstraint, TGD, plain_rule
from repro.datalog.terms import Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestTGD:
    def test_variable_classification(self):
        rule = TGD([Atom("P", [X, Z])], [Atom("Q", [X, Y]), Atom("R", [Y])])
        assert rule.body_variables() == [X, Y]
        assert rule.head_variables() == [X, Z]
        assert rule.frontier_variables() == [X]
        assert rule.existential_variables() == [Z]
        assert rule.is_existential()
        assert not rule.is_plain_datalog()

    def test_plain_rule_detection(self):
        rule = TGD([Atom("P", [X])], [Atom("Q", [X, Y])])
        assert rule.is_plain_datalog()

    def test_linear_detection(self):
        assert TGD([Atom("P", [X])], [Atom("Q", [X])]).is_linear()
        assert not TGD([Atom("P", [X])], [Atom("Q", [X]), Atom("R", [X])]).is_linear()

    def test_join_variables(self):
        rule = TGD([Atom("P", [X])], [Atom("Q", [X, Y]), Atom("R", [Y, Y])])
        assert set(rule.join_variables()) == {Y}

    def test_join_variable_repeated_within_one_atom(self):
        rule = TGD([Atom("P", [X])], [Atom("Q", [X, X])])
        assert rule.join_variables() == [X]

    def test_empty_head_or_body_rejected(self):
        with pytest.raises(DatalogError):
            TGD([], [Atom("Q", [X])])
        with pytest.raises(DatalogError):
            TGD([Atom("P", [X])], [])

    def test_negated_atoms_rejected(self):
        with pytest.raises(DatalogError):
            TGD([Atom("P", [X])], [Atom("Q", [X], negated=True)])

    def test_predicates(self):
        rule = TGD([Atom("P", [X])], [Atom("Q", [X]), Atom("R", [X])])
        assert rule.head_predicates() == {"P"}
        assert rule.body_predicates() == {"Q", "R"}

    def test_str_mentions_existentials(self):
        rule = TGD([Atom("P", [X, Z])], [Atom("Q", [X])])
        assert "exists" in str(rule) and "Z" in str(rule)

    def test_equality_and_hash(self):
        first = TGD([Atom("P", [X])], [Atom("Q", [X])])
        second = TGD([Atom("P", [X])], [Atom("Q", [X])])
        assert first == second
        assert len({first, second}) == 1


class TestPlainRule:
    def test_plain_rule_rejects_existentials(self):
        with pytest.raises(UnsafeRuleError):
            plain_rule(Atom("P", [X, Z]), [Atom("Q", [X])])

    def test_plain_rule_accepts_safe_rule(self):
        rule = plain_rule(Atom("P", [X]), [Atom("Q", [X, Y])])
        assert rule.is_plain_datalog()


class TestEGD:
    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(UnsafeRuleError):
            EGD(X, Z, [Atom("Q", [X, Y])])

    def test_head_positions(self):
        egd = EGD(X, Y, [Atom("Q", [X, W]), Atom("Q", [Y, W])])
        assert egd.head_positions() == {("Q", 0)}

    def test_empty_body_rejected(self):
        with pytest.raises(DatalogError):
            EGD(X, Y, [])

    def test_str(self):
        egd = EGD(X, Y, [Atom("Q", [X, Y])])
        assert "=" in str(egd)


class TestNegativeConstraint:
    def test_requires_positive_atom(self):
        with pytest.raises(DatalogError):
            NegativeConstraint([Atom("Q", [X], negated=True)])

    def test_positive_and_negative_atoms(self):
        constraint = NegativeConstraint([Atom("R", [X]), Atom("K", [X], negated=True)])
        assert len(constraint.positive_atoms()) == 1
        assert len(constraint.negative_atoms()) == 1

    def test_comparisons_are_kept(self):
        constraint = NegativeConstraint([Atom("R", [X])],
                                        comparisons=[Comparison(">", X, 5)])
        assert len(constraint.comparisons) == 1

    def test_str(self):
        constraint = NegativeConstraint([Atom("R", [X])])
        assert str(constraint).startswith("false :-")


class TestConjunctiveQuery:
    def test_boolean_query(self):
        query = ConjunctiveQuery([], [Atom("R", [X])])
        assert query.is_boolean()

    def test_answer_variable_must_occur_in_body(self):
        with pytest.raises(UnsafeRuleError):
            ConjunctiveQuery([Z], [Atom("R", [X])])

    def test_to_boolean(self):
        query = ConjunctiveQuery([X], [Atom("R", [X])])
        assert query.to_boolean().is_boolean()

    def test_body_predicates(self):
        query = ConjunctiveQuery([X], [Atom("R", [X]), Atom("S", [X])])
        assert query.body_predicates() == {"R", "S"}

    def test_equality(self):
        first = ConjunctiveQuery([X], [Atom("R", [X])])
        second = ConjunctiveQuery([X], [Atom("R", [X])])
        assert first == second
