"""Tests for substitutions, unification, matching and homomorphisms."""

import pytest

from repro.datalog.atoms import Atom, Comparison
from repro.datalog.terms import Constant, Null, Variable
from repro.datalog.unify import (apply_to_atom, apply_to_term, compose, evaluate_comparisons,
                                 find_homomorphisms, freeze_atom, has_homomorphism,
                                 match_atom, match_atom_against_row, unify_atoms, unify_terms)
from repro.relational.instance import DatabaseInstance

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture()
def instance():
    db = DatabaseInstance()
    db.declare("UnitWard", ["parent", "child"])
    db.declare("PatientWard", ["ward", "day", "patient"])
    db.add_all("UnitWard", [("Standard", "W1"), ("Standard", "W2"), ("Intensive", "W3")])
    db.add_all("PatientWard", [("W1", "Sep/5", "Tom"), ("W3", "Sep/6", "Lou")])
    return db


class TestTermUnification:
    def test_variable_binds_to_constant(self):
        assert unify_terms(X, Constant("a")) == {X: Constant("a")}

    def test_constant_conflict_fails(self):
        assert unify_terms(Constant("a"), Constant("b")) is None

    def test_existing_binding_is_respected(self):
        subst = {X: Constant("a")}
        assert unify_terms(X, Constant("a"), subst) == subst
        assert unify_terms(X, Constant("b"), subst) is None

    def test_variable_variable(self):
        result = unify_terms(X, Y)
        assert result in ({X: Y}, {Y: X})

    def test_null_unifies_only_with_itself(self):
        assert unify_terms(Null("n1"), Null("n1")) == {}
        assert unify_terms(Null("n1"), Null("n2")) is None
        assert unify_terms(Null("n1"), Constant("a")) is None


class TestAtomUnification:
    def test_same_predicate_required(self):
        assert unify_atoms(Atom("R", [X]), Atom("S", [X])) is None

    def test_arity_must_match(self):
        assert unify_atoms(Atom("R", [X]), Atom("R", [X, Y])) is None

    def test_successful_unification(self):
        result = unify_atoms(Atom("R", [X, "a"]), Atom("R", ["b", Y]))
        assert apply_to_term(result, X) == Constant("b")
        assert apply_to_term(result, Y) == Constant("a")

    def test_repeated_variable_constraint(self):
        assert unify_atoms(Atom("R", [X, X]), Atom("R", ["a", "b"])) is None
        assert unify_atoms(Atom("R", [X, X]), Atom("R", ["a", "a"])) is not None


class TestSubstitutionHelpers:
    def test_apply_to_atom(self):
        atom = apply_to_atom({X: Constant("a")}, Atom("R", [X, Y]))
        assert atom == Atom("R", ["a", Y])

    def test_apply_follows_chains(self):
        subst = {X: Y, Y: Constant("c")}
        assert apply_to_term(subst, X) == Constant("c")

    def test_compose(self):
        inner = {X: Y}
        outer = {Y: Constant("c"), Z: Constant("d")}
        composed = compose(outer, inner)
        assert composed[X] == Constant("c")
        assert composed[Z] == Constant("d")

    def test_freeze_atom_requires_groundness(self):
        with pytest.raises(ValueError):
            freeze_atom(Atom("R", [X]), {})
        assert freeze_atom(Atom("R", [X]), {X: Constant("a")}).is_ground()


class TestMatching:
    def test_match_atom_against_row(self):
        subst = match_atom_against_row(Atom("R", [X, "Sep/5"]), ("W1", "Sep/5"))
        assert subst == {X: Constant("W1")}

    def test_match_atom_against_row_conflict(self):
        assert match_atom_against_row(Atom("R", [X, X]), ("a", "b")) is None

    def test_match_atom_enumerates_rows(self, instance):
        matches = list(match_atom(Atom("UnitWard", [Variable("U"), Variable("W")]), instance))
        assert len(matches) == 3

    def test_match_atom_unknown_relation(self, instance):
        assert list(match_atom(Atom("Missing", [X]), instance)) == []


class TestHomomorphisms:
    def test_join_across_atoms(self, instance):
        atoms = [Atom("PatientWard", [Variable("W"), Variable("D"), Variable("P")]),
                 Atom("UnitWard", [Variable("U"), Variable("W")])]
        results = list(find_homomorphisms(atoms, instance))
        units = {apply_to_term(h, Variable("U")).value for h in results}
        assert units == {"Standard", "Intensive"}

    def test_has_homomorphism(self, instance):
        atoms = [Atom("UnitWard", ["Standard", Variable("W")])]
        assert has_homomorphism(atoms, instance)
        assert not has_homomorphism([Atom("UnitWard", ["Terminal", X])], instance)

    def test_negated_atom_blocks_match(self, instance):
        instance.declare("Unit", ["u"])
        instance.add("Unit", ("Standard",))
        atoms = [Atom("UnitWard", [Variable("U"), Variable("W")]),
                 Atom("Unit", [Variable("U")], negated=True)]
        results = list(find_homomorphisms(atoms, instance))
        units = {apply_to_term(h, Variable("U")).value for h in results}
        assert units == {"Intensive"}

    def test_negated_atom_with_null_is_cautious(self, instance):
        instance.declare("Unit", ["u"])
        instance.declare("PatientUnit", ["u", "d", "p"])
        instance.add("PatientUnit", (Null("u1"), "Sep/9", "Tom"))
        atoms = [Atom("PatientUnit", [Variable("U"), Variable("D"), Variable("P")]),
                 Atom("Unit", [Variable("U")], negated=True)]
        # the only candidate binds U to a null, so no *certain* violation
        assert list(find_homomorphisms(atoms, instance)) == []

    def test_comparisons_filter_matches(self, instance):
        atoms = [Atom("PatientWard", [Variable("W"), Variable("D"), Variable("P")])]
        comparisons = [Comparison(">", Variable("D"), "Sep/5")]
        results = list(find_homomorphisms(atoms, instance, comparisons=comparisons))
        assert len(results) == 1

    def test_evaluate_comparisons_requires_ground(self):
        assert not evaluate_comparisons([Comparison("=", X, "a")], {})
        assert evaluate_comparisons([Comparison("=", X, "a")], {X: Constant("a")})
