"""Tests for relation and database schemas."""

import pytest

from repro.errors import ArityError, DuplicateRelationError, SchemaError, UnknownRelationError
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.name == "R"
        assert schema.arity == 3
        assert schema.attributes == ("a", "b", "c")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"])

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_position_of(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.position_of("b") == 1
        with pytest.raises(SchemaError):
            schema.position_of("missing")

    def test_check_arity(self):
        schema = RelationSchema("R", ["a", "b"])
        schema.check_arity(("x", "y"))
        with pytest.raises(ArityError):
            schema.check_arity(("x",))

    def test_rename_keeps_attributes(self):
        schema = RelationSchema("R", ["a", "b"]).rename("S")
        assert schema.name == "S"
        assert schema.attributes == ("a", "b")

    def test_project(self):
        schema = RelationSchema("R", ["a", "b", "c"]).project(["c", "a"])
        assert schema.attributes == ("c", "a")

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a"]).project(["z"])

    def test_structural_equality(self):
        assert RelationSchema("R", ["a"]) == RelationSchema("R", ["a"])
        assert RelationSchema("R", ["a"]) != RelationSchema("R", ["b"])


class TestDatabaseSchema:
    def test_declare_and_get(self):
        schema = DatabaseSchema()
        schema.declare("R", ["a", "b"])
        assert schema.get("R").arity == 2
        assert "R" in schema

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().get("missing")

    def test_re_adding_identical_schema_is_idempotent(self):
        schema = DatabaseSchema()
        first = schema.declare("R", ["a"])
        second = schema.declare("R", ["a"])
        assert first == second
        assert len(schema) == 1

    def test_conflicting_redeclaration_rejected(self):
        schema = DatabaseSchema()
        schema.declare("R", ["a"])
        with pytest.raises(DuplicateRelationError):
            schema.declare("R", ["a", "b"])

    def test_iteration_preserves_order(self):
        schema = DatabaseSchema()
        schema.declare("B", ["x"])
        schema.declare("A", ["y"])
        assert schema.names() == ("B", "A")

    def test_merge(self):
        left = DatabaseSchema([RelationSchema("R", ["a"])])
        right = DatabaseSchema([RelationSchema("S", ["b"])])
        merged = left.merge(right)
        assert set(merged.names()) == {"R", "S"}

    def test_merge_conflict(self):
        left = DatabaseSchema([RelationSchema("R", ["a"])])
        right = DatabaseSchema([RelationSchema("R", ["a", "b"])])
        with pytest.raises(DuplicateRelationError):
            left.merge(right)

    def test_copy_is_independent(self):
        schema = DatabaseSchema([RelationSchema("R", ["a"])])
        clone = schema.copy()
        clone.declare("S", ["b"])
        assert "S" not in schema
