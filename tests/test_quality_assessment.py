"""Tests for the quality measures (departure from the quality version)."""

import pytest

from repro.errors import QualityError
from repro.quality.assessment import (DatabaseAssessment, assess_database,
                                      assess_relation)
from repro.relational.instance import DatabaseInstance, Relation
from repro.relational.schema import RelationSchema


@pytest.fixture()
def original():
    rel = Relation(RelationSchema("R", ["a", "b"]))
    rel.add_all([("x", 1), ("y", 2), ("z", 3), ("w", 4)])
    return rel


@pytest.fixture()
def quality():
    rel = Relation(RelationSchema("R_q", ["a", "b"]))
    rel.add_all([("x", 1), ("y", 2), ("extra", 9)])
    return rel


class TestRelationAssessment:
    def test_counts(self, original, quality):
        assessment = assess_relation(original, quality)
        assert assessment.total_tuples == 4
        assert assessment.quality_tuples == 3
        assert assessment.kept_tuples == 2
        assert assessment.missing_tuples == 1

    def test_ratios(self, original, quality):
        assessment = assess_relation(original, quality)
        assert assessment.quality_ratio == pytest.approx(0.5)
        assert assessment.completeness_ratio == pytest.approx(2 / 3)
        assert assessment.departure == 3  # 2 non-quality stored + 1 missing

    def test_perfect_relation(self, original):
        assessment = assess_relation(original, original)
        assert assessment.quality_ratio == 1.0
        assert assessment.completeness_ratio == 1.0
        assert assessment.departure == 0

    def test_empty_relations(self):
        empty = Relation(RelationSchema("R", ["a"]))
        assessment = assess_relation(empty, empty)
        assert assessment.quality_ratio == 1.0
        assert assessment.completeness_ratio == 1.0

    def test_arity_mismatch_rejected(self, original):
        other = Relation(RelationSchema("Q", ["a"]))
        with pytest.raises(QualityError):
            assess_relation(original, other)

    def test_as_dict_keys(self, original, quality):
        data = assess_relation(original, quality).as_dict()
        assert {"quality_ratio", "completeness_ratio", "departure"} <= set(data)


class TestDatabaseAssessment:
    def test_aggregation(self, original, quality):
        instance = DatabaseInstance()
        instance.declare("R", ["a", "b"]).add_all(original)
        assessment = assess_database(instance, {"R": quality})
        assert assessment.quality_ratio == pytest.approx(0.5)
        assert assessment.departure == 3
        assert len(assessment.as_rows()) == 1

    def test_missing_relation_rejected(self, quality):
        with pytest.raises(QualityError):
            assess_database(DatabaseInstance(), {"R": quality})

    def test_empty_assessment_is_perfect(self):
        assert DatabaseAssessment().quality_ratio == 1.0

    def test_str_rendering(self, original, quality):
        instance = DatabaseInstance()
        instance.declare("R", ["a", "b"]).add_all(original)
        text = str(assess_database(instance, {"R": quality}))
        assert "overall quality ratio" in text

    def test_hospital_measurements_assessment(self, hospital_scenario):
        assessment = hospital_scenario.assess()
        measurements = assessment.relations["Measurements"]
        # 2 of the 6 stored measurements are quality (Table II), none missing.
        assert measurements.total_tuples == 6
        assert measurements.kept_tuples == 2
        assert measurements.missing_tuples == 0
        assert measurements.quality_ratio == pytest.approx(1 / 3)
        assert assessment.quality_ratio == pytest.approx(1 / 3)
