"""Tests for MD-model validation (conformance, strictness, homogeneity)."""

import pytest

from repro.md.builder import DimensionBuilder, MDModelBuilder
from repro.md.validation import (check_categorical_relations, check_dimension_conformance,
                                 check_homogeneity, check_strictness, validate_dimension,
                                 validate_md_instance)


@pytest.fixture()
def strict_dimension():
    return (DimensionBuilder("Hospital")
            .category_chain("Ward", "Unit")
            .member_edge("Ward", "W1", "Unit", "Standard")
            .member_edge("Ward", "W2", "Unit", "Standard")
            .build())


@pytest.fixture()
def non_strict_dimension():
    return (DimensionBuilder("Hospital")
            .category_chain("Ward", "Unit")
            .member_edge("Ward", "W1", "Unit", "Standard")
            .member_edge("Ward", "W1", "Unit", "Intensive")
            .build())


class TestDimensionChecks:
    def test_strict_dimension_passes(self, strict_dimension):
        assert check_strictness(strict_dimension).is_valid

    def test_non_strict_dimension_flagged(self, non_strict_dimension):
        report = check_strictness(non_strict_dimension)
        assert not report.is_valid
        assert report.by_kind("non_strict")

    def test_homogeneity_flags_orphans(self, strict_dimension):
        strict_dimension.add_member("Ward", "W9")  # no parent
        report = check_homogeneity(strict_dimension)
        assert report.by_kind("non_homogeneous")

    def test_homogeneous_dimension_passes(self, strict_dimension):
        assert check_homogeneity(strict_dimension).is_valid

    def test_conformance_passes_on_builder_output(self, strict_dimension):
        assert check_dimension_conformance(strict_dimension).is_valid

    def test_validate_dimension_aggregates(self, non_strict_dimension):
        report = validate_dimension(non_strict_dimension)
        assert not report.is_valid
        assert "non_strict" in report.summary()

    def test_hospital_and_time_dimensions_are_valid(self, hospital_md):
        for dimension in hospital_md.dimensions.values():
            assert validate_dimension(dimension).is_valid, str(dimension)


class TestCategoricalRelationChecks:
    def test_valid_instance_passes(self, hospital_md):
        assert check_categorical_relations(hospital_md).is_valid

    def test_dangling_member_flagged(self, strict_dimension):
        md = (MDModelBuilder()
              .dimension(strict_dimension)
              .relation("Stay", categorical=[("Ward", "Hospital", "Ward")],
                        non_categorical=["Patient"],
                        rows=[("W1", "Tom"), ("W99", "Lou")])
              .build())
        report = check_categorical_relations(md)
        assert not report.is_valid
        issues = report.by_kind("dangling_categorical_value")
        assert any("W99" in issue.detail for issue in issues)

    def test_validate_md_instance_full(self, hospital_md):
        assert validate_md_instance(hospital_md).is_valid

    def test_validate_md_instance_with_homogeneity(self, hospital_md):
        # The hospital hierarchy is homogeneous, so even the strict check passes.
        assert validate_md_instance(hospital_md, require_homogeneous=True).is_valid

    def test_report_string_rendering(self, non_strict_dimension):
        report = validate_dimension(non_strict_dimension)
        assert "non_strict" in str(report)
        assert str(report.issues[0])
