"""Unit tests for counting-based answer maintenance (IVM).

The session layer keeps cached query answers as support-count multisets
(:class:`~repro.engine.session.MaintainedAnswers`) and moves them by every
update's exact fact delta through a compiled
:class:`~repro.engine.matching.DeltaJoinPlan`.  These tests pin down the
mechanics the differential suite (``test_ivm_differential.py``) then
hammers with randomized streams:

* insertions and retraction cones move maintained answers without a
  re-join (``rows_scanned == 0`` at read time, ``answers_maintained``
  counts the in-place updates);
* EGD merges and full re-chases cannot be maintained — the entry is
  dropped, ``maintenance_fallbacks`` counts it, and the next read
  re-answers correctly;
* snapshots persist the support counts, so a restored session answers —
  and keeps maintaining — without a single join;
* ingestion interns constants (pointer-identity hashing/equality);
* cache hits hand out the same immutable answer tuple, never a copy.
"""

from __future__ import annotations

import pytest

from repro.datalog import parse_program, parse_query
from repro.datalog.answering import (evaluate_query, evaluate_query_counts,
                                     rows_from_counts)
from repro.datalog.chase import chase
from repro.engine.matching import DeltaJoinPlan, matcher_for
from repro.engine.session import MaterializedProgram, QuerySession
from repro.relational.csvio import read_relation_csv, write_relation_csv
from repro.relational.instance import Relation
from repro.relational.schema import RelationSchema
from repro.relational.values import Null, ValueInterner, intern_value

ENGINES = ("indexed", "naive")


def _program():
    return parse_program("""
        Derived(X, Y) :- Base(X, Y).
        Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
        Base(a, b). Base(c, d).
        Link(b, t1). Link(d, t2).
    """)


QUERY = "?(X, Z) :- Joined(X, Z)."


def _fresh_answers(materialized, query):
    """Oracle: re-chase the session's own EDB and evaluate from scratch."""
    result = chase(materialized.edb_program(), check_constraints=False)
    return evaluate_query(parse_query(query), result.instance)


# -- maintenance mechanics ----------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_insertions_maintain_answers_without_rejoin(engine):
    materialized = MaterializedProgram(_program(), engine=engine)
    session = materialized.queries()
    assert session.answers(QUERY) == (("a", "t1"), ("c", "t2"))

    before = session.stats.snapshot()
    materialized.add_facts([("Base", ("e", "b"))])
    assert session.stats.delta(before).answers_maintained == 1

    before = session.stats.snapshot()
    assert session.answers(QUERY) == (("a", "t1"), ("c", "t2"), ("e", "t1"))
    delta = session.stats.delta(before)
    assert delta.cache_hits >= 1 and delta.cache_misses == 0
    assert delta.rows_scanned == 0  # no join work at read time
    assert session.answers(QUERY) == _fresh_answers(materialized, QUERY)


@pytest.mark.parametrize("engine", ENGINES)
def test_retraction_cone_decrements_supports(engine):
    materialized = MaterializedProgram(_program(), engine=engine)
    session = materialized.queries()
    session.answers(QUERY)

    before = session.stats.snapshot()
    # Deleting Base(a, b) cones through Derived(a, b) and Joined(a, t1).
    update = materialized.retract_facts([("Base", ("a", "b"))])
    assert update.is_incremental
    assert session.stats.delta(before).answers_maintained == 1

    before = session.stats.snapshot()
    assert session.answers(QUERY) == (("c", "t2"),)
    delta = session.stats.delta(before)
    assert delta.cache_misses == 0 and delta.rows_scanned == 0
    assert session.answers(QUERY) == _fresh_answers(materialized, QUERY)


def test_multi_derivation_support_survives_single_retraction():
    """An answer with two derivations loses one support, not the answer."""
    program = parse_program("""
        Reach(X) :- EdgeA(X).
        Reach(X) :- EdgeB(X).
        Out(X) :- Reach(X), Mark(X).
        EdgeA(n1). EdgeB(n1). Mark(n1).
    """)
    materialized = MaterializedProgram(program)
    session = materialized.queries()
    query = "?(X) :- Reach(X), Mark(X)."
    assert session.answers(query) == (("n1",),)

    # Reach(n1) stays derivable through EdgeB after EdgeA(n1) goes away, so
    # the instance delta is empty and the answer must survive untouched.
    materialized.retract_facts([("EdgeA", ("n1",))])
    assert session.answers(query) == (("n1",),)
    assert session.answers(query) == _fresh_answers(materialized, query)

    materialized.retract_facts([("EdgeB", ("n1",))])
    assert session.answers(query) == ()
    assert session.answers(query) == _fresh_answers(materialized, query)


def test_same_update_retract_and_rederive_nets_out():
    """A fact both extensional and derivable survives retraction of the EDB
    copy — the repair re-derives it and the counts net out exactly."""
    program = parse_program("""
        Stored(X) :- Source(X).
        Source(s1).
        Stored(s1).
    """)
    materialized = MaterializedProgram(program)
    session = materialized.queries()
    query = "?(X) :- Stored(X)."
    assert session.answers(query) == (("s1",),)

    update = materialized.retract_facts([("Stored", ("s1",))])
    assert update.is_incremental
    assert session.answers(query) == (("s1",),)  # re-derived from Source
    assert session.answers(query) == _fresh_answers(materialized, query)


@pytest.mark.parametrize("engine", ENGINES)
def test_comparison_queries_are_maintained(engine):
    program = parse_program("""
        Wide(X, V) :- Narrow(X, V).
        Narrow(p, 5). Narrow(q, 9).
    """)
    materialized = MaterializedProgram(program, engine=engine)
    session = materialized.queries()
    query = "?(X) :- Wide(X, V), V > 4."
    assert session.answers(query) == (("p",), ("q",))

    before = session.stats.snapshot()
    materialized.add_facts([("Narrow", ("r", 2)), ("Narrow", ("s", 7))])
    assert session.stats.delta(before).answers_maintained == 1
    assert session.answers(query) == (("p",), ("q",), ("s",))
    assert session.answers(query) == _fresh_answers(materialized, query)


def test_boolean_query_maintenance():
    materialized = MaterializedProgram(_program())
    session = materialized.queries()
    query = "? :- Joined(X, Z)."
    assert session.answers(query) == ((),)
    materialized.retract_facts([("Base", ("a", "b")), ("Base", ("c", "d"))])
    assert session.answers(query) == ()
    materialized.add_facts([("Base", ("a", "b"))])
    assert session.answers(query) == ((),)


@pytest.mark.parametrize("engine", ENGINES)
def test_holds_is_maintained_not_reanswered(engine):
    """Boolean reads ride the counted path: after the first ``holds`` the
    entry is maintained through updates and served without a join."""
    materialized = MaterializedProgram(_program(), engine=engine)
    session = materialized.queries()
    assert session.holds(QUERY) is True

    before = session.stats.snapshot()
    materialized.add_facts([("Base", ("e", "b"))])
    assert session.stats.delta(before).answers_maintained == 1

    before = session.stats.snapshot()
    assert session.holds(QUERY) is True
    delta = session.stats.delta(before)
    assert delta.cache_hits >= 1 and delta.cache_misses == 0
    assert delta.rows_scanned == 0  # served from maintained counts

    # ``holds`` and ``answers`` share one maintained entry per query.
    before = session.stats.snapshot()
    assert session.answers(QUERY) == (("a", "t1"), ("c", "t2"), ("e", "t1"))
    assert session.stats.delta(before).rows_scanned == 0

    # Retract every support: the maintained counts drain to "does not hold".
    before = session.stats.snapshot()
    materialized.retract_facts([("Base", ("a", "b")), ("Base", ("c", "d")),
                                ("Base", ("e", "b"))])
    assert session.stats.delta(before).answers_maintained == 1
    before = session.stats.snapshot()
    assert session.holds(QUERY) is False
    assert session.stats.delta(before).rows_scanned == 0


def test_holds_fallback_counters_on_egd_merge():
    """A boolean read's maintained entry falls back exactly like an answer
    entry: an EGD merge drops it, counts a maintenance fallback, and the
    next ``holds`` re-answers from scratch — correctly."""
    program = parse_program("""
        exists Z : HasType(X, Z) :- Item(X).
        T = T2 :- HasType(X, T), Declared(X, T2).
        Item(i1).
    """)
    materialized = MaterializedProgram(program)
    session = materialized.queries()
    query = "? :- HasType(i1, T)."
    assert session.holds(query) is True

    before = session.stats.snapshot()
    update = materialized.add_facts([("Declared", ("i1", "widget"))])
    assert update.changed_predicates is None  # the merge poisoned the delta
    delta = session.stats.delta(before)
    assert delta.maintenance_fallbacks == 1 and delta.answers_maintained == 0

    before = session.stats.snapshot()
    assert session.holds(query) is True
    assert session.stats.delta(before).cache_misses >= 1  # re-answered
    assert session.holds("? :- HasType(i1, widget).") is True


def test_holds_without_maintenance_keeps_early_exit():
    """``maintain_answers=False`` restores the one-shot early-exit scan."""
    materialized = MaterializedProgram(_program())
    session = QuerySession(materialized, maintain_answers=False)
    before = session.stats.snapshot()
    assert session.holds(QUERY) is True
    assert session.stats.delta(before).rows_scanned > 0
    assert not session._maintained  # nothing was seeded


# -- fallback triggers --------------------------------------------------------


def test_egd_merge_drops_maintained_answers_and_counts_fallback():
    program = parse_program("""
        exists Z : HasType(X, Z) :- Item(X).
        T = T2 :- HasType(X, T), Declared(X, T2).
        Item(i1).
    """)
    materialized = MaterializedProgram(program)
    session = materialized.queries()
    query = "?(X, T) :- HasType(X, T)."
    session.answers(query, allow_nulls=True)

    before = session.stats.snapshot()
    # The insert fires the EGD: the null type merges with 'widget'.  The
    # instance delta is unreconstructable, so maintenance must fall back.
    update = materialized.add_facts([("Declared", ("i1", "widget"))])
    assert update.changed_predicates is None and update.added_facts is None
    delta = session.stats.delta(before)
    assert delta.maintenance_fallbacks == 1 and delta.answers_maintained == 0

    before = session.stats.snapshot()
    assert session.answers(query) == (("i1", "widget"),)
    # Re-answered from scratch: both the answer entry and its join plan
    # were dropped and had to be rebuilt.
    assert session.stats.delta(before).cache_misses >= 1
    assert session.answers(query) == _fresh_answers(materialized, query)


def test_full_rechase_drops_maintained_answers_and_counts_fallback():
    program = parse_program("""
        exists Z : HasType(X, Z) :- Item(X).
        T = T2 :- HasType(X, T), Declared(X, T2).
        Item(i1).
        Declared(i1, widget).
    """)
    materialized = MaterializedProgram(program)
    session = materialized.queries()
    query = "?(X, T) :- HasType(X, T)."
    assert session.answers(query) == (("i1", "widget"),)

    before = session.stats.snapshot()
    update = materialized.retract_facts([("Item", ("i1",))])
    assert update.strategy == "full"  # merges made provenance ambiguous
    assert session.stats.delta(before).maintenance_fallbacks == 1

    assert session.answers(query) == ()
    assert session.answers(query) == _fresh_answers(materialized, query)


def test_sessions_without_provenance_fall_back():
    materialized = MaterializedProgram(_program(), record_provenance=False)
    session = materialized.queries()
    session.answers(QUERY)
    before = session.stats.snapshot()
    materialized.add_facts([("Base", ("e", "b"))])
    assert session.stats.delta(before).maintenance_fallbacks == 1
    assert session.answers(QUERY) == _fresh_answers(materialized, QUERY)


# -- snapshot persistence -----------------------------------------------------


def test_snapshot_round_trips_maintained_answers(tmp_path):
    materialized = MaterializedProgram(_program())
    session = materialized.queries()
    expected = session.answers(QUERY)
    materialized.add_facts([("Base", ("e", "b"))])
    expected_after = session.answers(QUERY)

    path = materialized.save(tmp_path / "session.snapshot")
    restored = MaterializedProgram.load(path)
    restored_session = restored.queries()

    before = restored_session.stats.snapshot()
    assert restored_session.answers(QUERY) == expected_after
    delta = restored_session.stats.delta(before)
    assert delta.rows_scanned == 0  # answered from restored counts, no join
    assert delta.cache_hits == 1    # the maintained entry (parse is a miss)

    # The restored counts keep maintaining through further updates.
    before = restored_session.stats.snapshot()
    restored.retract_facts([("Base", ("e", "b"))])
    assert restored_session.stats.delta(before).answers_maintained == 1
    assert restored_session.answers(QUERY) == expected
    assert restored_session.answers(QUERY) == _fresh_answers(restored, QUERY)


def test_updates_before_adoption_drop_stale_restored_counts(tmp_path):
    """Restored maintained counts nobody has adopted yet must not survive
    an update that touches their predicates: a session created *after* the
    update would otherwise serve the snapshot's answers as current (the
    serving daemon's replay path hits exactly this ordering)."""
    materialized = MaterializedProgram(_program())
    materialized.queries().answers(QUERY)
    path = materialized.save(tmp_path / "session.snapshot")

    restored = MaterializedProgram.load(path)
    restored.add_facts([("Base", ("e", "b"))])  # before any session exists
    session = restored.queries()  # adopts only what is still valid: nothing
    assert session.answers(QUERY) == (("a", "t1"), ("c", "t2"), ("e", "t1"))
    assert session.answers(QUERY) == _fresh_answers(restored, QUERY)


def test_snapshot_without_maintained_answers_stays_loadable(tmp_path):
    materialized = MaterializedProgram(_program())
    path = materialized.save(tmp_path / "bare.snapshot")  # nothing answered
    restored = MaterializedProgram.load(path)
    assert restored.queries().answers(QUERY) == (("a", "t1"), ("c", "t2"))


# -- delta-join plans ---------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_delta_join_plan_enumerates_only_delta_homomorphisms(engine):
    program = _program()
    result = chase(program, check_constraints=False)
    instance = result.instance
    cq = parse_query("?(X, Z) :- Derived(X, Y), Link(Y, Z).")

    matcher = matcher_for(engine)
    plan = DeltaJoinPlan(matcher, cq.body, variables=cq.body_variables())
    # Pivot on a Link delta: exactly the one homomorphism through Link(b, t1).
    assert len(list(plan.homomorphisms(instance,
                                       [("Link", ("b", "t1"))]))) == 1
    # A homomorphism reachable through several pivots is yielded once.
    assert len(list(plan.homomorphisms(
        instance, [("Link", ("b", "t1")), ("Derived", ("a", "b"))]))) == 1
    # A delta row absent from the live instance is skipped entirely.
    assert list(plan.homomorphisms(instance, [("Link", ("zz", "t9"))])) == []
    # Facts over predicates outside the body are ignored.
    assert list(plan.homomorphisms(instance, [("Joined", ("a", "t1"))])) == []


def test_evaluate_query_counts_matches_evaluation():
    program = _program()
    result = chase(program, check_constraints=False)
    query = parse_query(QUERY)
    counts = evaluate_query_counts(query, result.instance)
    assert all(support >= 1 for support in counts.values())
    assert rows_from_counts(counts) == evaluate_query(query, result.instance)
    assert rows_from_counts(counts, allow_nulls=True) == \
        evaluate_query(query, result.instance, allow_nulls=True)


# -- satellites: interning and immutable answer sharing -----------------------


def test_cache_hits_share_one_immutable_tuple():
    materialized = MaterializedProgram(_program())
    session = materialized.queries()
    first = session.answers(QUERY)
    second = session.answers(QUERY)
    assert isinstance(first, tuple)
    assert first is second  # O(1) hit: the same object, never a copy


def test_csv_ingestion_interns_constants(tmp_path):
    relation = Relation(RelationSchema("R", ["a", "b"]))
    relation.add(("ward_one", "value_1"))
    relation.add(("ward_one", "value_2"))
    relation.add((Null("n1"), "ward_one"))
    path = tmp_path / "R.csv"
    write_relation_csv(relation, path)

    loaded = read_relation_csv(path)
    values = [value for row in loaded.sorted_rows() for value in row
              if value == "ward_one"]
    assert len(values) == 3
    assert values[0] is values[1] is values[2]  # one object per constant
    assert set(loaded) == set(relation)


def test_value_interner_canonicalizes_and_passes_unhashable_through():
    interner = ValueInterner()
    a = interner.intern("x" * 40)
    b = interner.intern("xxxx" * 10)
    assert a is b
    one = interner.intern(1.5)
    other = interner.intern(1.5)
    assert one is other
    unhashable = [1, 2]
    assert interner.intern(unhashable) is unhashable
    assert intern_value("spam") is intern_value("spam")
    assert interner.intern_row(("p", "q")) == ("p", "q")


def test_value_interner_table_is_bounded():
    interner = ValueInterner(max_entries=3)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0):
        assert interner.intern(value) == value
    assert len(interner) == 3  # overflow values pass through uninterned
    # Values already canonicalized keep deduplicating after the cap.
    assert interner.intern(2.0) is interner.intern(2.0)


def test_snapshot_restore_interns_constants(tmp_path):
    materialized = MaterializedProgram(_program())
    path = materialized.save(tmp_path / "interned.snapshot")
    restored = MaterializedProgram.load(path)
    instance = restored.instance
    stored = [value for relation in instance for row in relation
              for value in row if value == "b"]
    assert len(stored) >= 2
    first = stored[0]
    assert all(value is first for value in stored)
