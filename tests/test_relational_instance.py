"""Tests for relation and database instances."""

import pytest

from repro.errors import ArityError, UnknownRelationError
from repro.relational.instance import DatabaseInstance, Relation
from repro.relational.schema import RelationSchema
from repro.relational.values import Null


@pytest.fixture()
def relation():
    rel = Relation(RelationSchema("R", ["a", "b"]))
    rel.add(("x", 1))
    rel.add(("y", 2))
    return rel


class TestRelation:
    def test_add_and_contains(self, relation):
        assert ("x", 1) in relation
        assert ("z", 3) not in relation

    def test_add_duplicate_returns_false(self, relation):
        assert relation.add(("x", 1)) is False
        assert len(relation) == 2

    def test_add_wrong_arity(self, relation):
        with pytest.raises(ArityError):
            relation.add(("only-one",))

    def test_discard(self, relation):
        assert relation.discard(("x", 1)) is True
        assert relation.discard(("x", 1)) is False
        assert len(relation) == 1

    def test_column(self, relation):
        assert relation.column("a") == ["x", "y"]

    def test_active_domain_and_constants_and_nulls(self):
        rel = Relation(RelationSchema("R", ["a"]))
        rel.add((Null("n1"),))
        rel.add(("c",))
        assert rel.active_domain() == {Null("n1"), "c"}
        assert rel.constants() == {"c"}
        assert rel.nulls() == {Null("n1")}

    def test_as_dicts(self, relation):
        assert {"a": "x", "b": 1} in relation.as_dicts()

    def test_copy_is_independent(self, relation):
        clone = relation.copy()
        clone.add(("z", 3))
        assert ("z", 3) not in relation

    def test_sorted_rows_deterministic(self):
        rel = Relation(RelationSchema("R", ["a"]))
        rel.add((3,))
        rel.add((1,))
        rel.add(("b",))
        assert rel.sorted_rows() == rel.sorted_rows()

    def test_equality_is_set_based(self):
        first = Relation(RelationSchema("R", ["a"]), [("x",), ("y",)])
        second = Relation(RelationSchema("R", ["a"]), [("y",), ("x",)])
        assert first == second

    def test_pretty_contains_header_and_rows(self, relation):
        text = relation.pretty()
        assert "R" in text and "a" in text and "x" in text

    def test_pretty_limit(self, relation):
        text = relation.pretty(limit=1)
        assert "more" in text


class TestDatabaseInstance:
    def test_declare_add_and_lookup(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a"])
        assert instance.add("R", ("x",)) is True
        assert instance.relation("R").rows() == [("x",)]

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            DatabaseInstance().relation("missing")

    def test_add_to_undeclared_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            DatabaseInstance().add("R", ("x",))

    def test_facts_iteration(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a"])
        instance.declare("S", ["b"])
        instance.add("R", ("x",))
        instance.add("S", ("y",))
        assert set(instance.facts()) == {("R", ("x",)), ("S", ("y",))}

    def test_total_tuples(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a"])
        instance.add_all("R", [("x",), ("y",)])
        assert instance.total_tuples() == 2

    def test_copy_is_deep_for_rows(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a"])
        instance.add("R", ("x",))
        clone = instance.copy()
        clone.add("R", ("y",))
        assert instance.total_tuples() == 1

    def test_merge(self):
        left = DatabaseInstance()
        left.declare("R", ["a"])
        left.add("R", ("x",))
        right = DatabaseInstance()
        right.declare("S", ["b"])
        right.add("S", ("y",))
        merged = left.merge(right)
        assert merged.total_tuples() == 2
        assert merged.has_relation("R") and merged.has_relation("S")

    def test_load_bulk(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a", "b"])
        instance.load({"R": [("x", 1), ("y", 2)]})
        assert instance.total_tuples() == 2

    def test_equality(self):
        first = DatabaseInstance()
        first.declare("R", ["a"])
        first.add("R", ("x",))
        second = DatabaseInstance()
        second.declare("R", ["a"])
        second.add("R", ("x",))
        assert first == second

    def test_active_domain_union(self):
        instance = DatabaseInstance()
        instance.declare("R", ["a"])
        instance.declare("S", ["b"])
        instance.add("R", ("x",))
        instance.add("S", (Null("n"),))
        assert instance.active_domain() == {"x", Null("n")}
        assert instance.nulls() == {Null("n")}

    def test_pretty_empty(self):
        assert "empty" in DatabaseInstance().pretty()
