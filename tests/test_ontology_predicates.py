"""Tests for the ontology vocabulary (predicate families K, O, R)."""

import pytest

from repro.errors import OntologyError
from repro.md.relations import CategoricalAttribute, CategoricalRelationSchema
from repro.ontology.predicates import (CategoryPredicate, OntologyVocabulary,
                                       ParentChildPredicate, PredicateNaming)


@pytest.fixture()
def vocabulary():
    vocab = OntologyVocabulary()
    vocab.add_category_predicate(CategoryPredicate("Ward", "Hospital", "Ward"))
    vocab.add_category_predicate(CategoryPredicate("Unit", "Hospital", "Unit"))
    vocab.add_parent_child_predicate(
        ParentChildPredicate("UnitWard", "Hospital", "Unit", "Ward"))
    vocab.add_categorical_predicate(CategoricalRelationSchema(
        "PatientWard",
        categorical=[CategoricalAttribute("Ward", "Hospital", "Ward"),
                     CategoricalAttribute("Day", "Time", "Day")],
        non_categorical=["Patient"]))
    return vocab


class TestNaming:
    def test_default_names_match_paper(self):
        naming = PredicateNaming()
        assert naming.category_predicate("Hospital", "Unit") == "Unit"
        assert naming.parent_child_predicate("Hospital", "Unit", "Ward") == "UnitWard"

    def test_qualified_names(self):
        naming = PredicateNaming(qualified=True)
        assert naming.category_predicate("Hospital", "Unit") == "Hospital_Unit"
        assert naming.parent_child_predicate("Time", "Month", "Day") == "Time_MonthDay"


class TestVocabulary:
    def test_roles(self, vocabulary):
        assert vocabulary.role_of("Ward") == "category"
        assert vocabulary.role_of("UnitWard") == "parent_child"
        assert vocabulary.role_of("PatientWard") == "categorical"
        assert vocabulary.role_of("Whatever") == "other"

    def test_role_predicates_helpers(self, vocabulary):
        assert vocabulary.is_category("Unit")
        assert vocabulary.is_parent_child("UnitWard")
        assert vocabulary.is_categorical("PatientWard")

    def test_arities(self, vocabulary):
        assert vocabulary.arity_of("Ward") == 1
        assert vocabulary.arity_of("UnitWard") == 2
        assert vocabulary.arity_of("PatientWard") == 3
        with pytest.raises(OntologyError):
            vocabulary.arity_of("Whatever")

    def test_name_clash_rejected(self, vocabulary):
        with pytest.raises(OntologyError):
            vocabulary.add_category_predicate(CategoryPredicate("UnitWard", "X", "Y"))

    def test_categorical_positions(self, vocabulary):
        positions = vocabulary.categorical_positions()
        assert ("Ward", 0) in positions
        assert ("UnitWard", 0) in positions and ("UnitWard", 1) in positions
        assert ("PatientWard", 0) in positions and ("PatientWard", 1) in positions
        assert ("PatientWard", 2) not in positions

    def test_non_categorical_positions(self, vocabulary):
        assert vocabulary.non_categorical_positions() == {("PatientWard", 2)}

    def test_category_of_position(self, vocabulary):
        assert vocabulary.category_of_position("UnitWard", 0) == ("Hospital", "Unit")
        assert vocabulary.category_of_position("UnitWard", 1) == ("Hospital", "Ward")
        assert vocabulary.category_of_position("PatientWard", 1) == ("Time", "Day")
        assert vocabulary.category_of_position("PatientWard", 2) is None

    def test_predicates_union(self, vocabulary):
        assert vocabulary.predicates() == {"Ward", "Unit", "UnitWard", "PatientWard"}
