"""Concurrency property suite for MVCC-style versioned relations.

Interleaves reader transactions with update batches — threaded and
single-threaded schedules — and asserts the three contract properties of
:mod:`repro.engine.versioning`:

* **no torn reads** — every answer a transaction observes belongs to
  exactly the one version it pinned, even while updates publish newer
  versions concurrently;
* **writers never block readers** — readers only pin published versions
  and never acquire the program's write lock, so they make progress while
  a writer is mid-update;
* **GC never drops a pinned version** — a version survives any number of
  publications and explicit ``collect()`` calls until its last pin is
  released.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

import pytest

from repro.datalog import parse_program
from repro.engine.session import MaterializedProgram, QuerySession
from repro.errors import VersioningError

PROGRAM_TEXT = """
    PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
    Standardized(P) :- PatientUnit('Standard', D, P).
    UnitWard('Standard', 'W1').
    UnitWard('Intensive', 'W2').
    PatientWard('W1', 'Sep/5', 'Tom').
    PatientWard('W2', 'Sep/5', 'Lou').
"""

QUERIES = ("?(P) :- Standardized(P).",
           "?(W, D, P) :- PatientWard(W, D, P).")


def _fresh() -> Tuple[MaterializedProgram, QuerySession]:
    materialized = MaterializedProgram(parse_program(PROGRAM_TEXT))
    return materialized, QuerySession(materialized)


def _update_batches(steps: int):
    """A deterministic sequence of always-effective update batches."""
    batches = []
    for step in range(steps):
        if step % 3 == 2:  # retract the fact added two steps earlier
            batches.append(("retract",
                            [("PatientWard", ("W1", f"Day/{step - 2}",
                                              f"p{step - 2}"))]))
        else:
            batches.append(("add",
                            [("PatientWard", ("W1", f"Day/{step}",
                                              f"p{step}"))]))
    return batches


def _apply(materialized: MaterializedProgram, batch) -> None:
    action, facts = batch
    if action == "add":
        materialized.add_facts(facts)
    else:
        materialized.retract_facts(facts)


def _expected_answers_by_version(steps: int) -> Dict[int, Tuple]:
    """Replay the batches single-threaded, recording answers per version."""
    materialized, session = _fresh()
    expected = {materialized.version: tuple(session.answers(q)
                                            for q in QUERIES)}
    for batch in _update_batches(steps):
        _apply(materialized, batch)
        expected[materialized.version] = tuple(session.answers(q)
                                               for q in QUERIES)
    return expected


# -- single-threaded schedules -------------------------------------------------


def test_transaction_pins_one_version_across_updates():
    """A transaction keeps answering from its pinned version while newer
    versions are published (updates interleaved on the same thread)."""
    materialized, session = _fresh()
    with session.read() as txn:
        pinned_version = txn.version
        before = [txn.answers(q) for q in QUERIES]
        materialized.add_facts([("PatientWard", ("W1", "Sep/6", "Nick"))])
        materialized.retract_facts([("PatientWard", ("W2", "Sep/5", "Lou"))])
        assert txn.version == pinned_version
        assert [txn.answers(q) for q in QUERIES] == before  # no torn reads
    after = [session.answers(q) for q in QUERIES]
    assert after != before  # a fresh read sees the newest version
    assert ("W1", "Sep/6", "Nick") in after[1]
    assert ("W2", "Sep/5", "Lou") not in after[1]


def test_interleaved_transactions_each_see_exactly_one_version():
    """Readers opened at different points of an update stream each match the
    single-threaded reference answers of their own version — no mixture."""
    steps = 6
    expected = _expected_answers_by_version(steps)
    materialized, session = _fresh()
    open_transactions = []
    for batch in _update_batches(steps):
        open_transactions.append(session.read())
        _apply(materialized, batch)
    open_transactions.append(session.read())
    try:
        for txn in open_transactions:
            assert tuple(txn.answers(q) for q in QUERIES) == \
                expected[txn.version]
    finally:
        for txn in open_transactions:
            txn.close()


def test_gc_never_drops_a_pinned_version():
    materialized, session = _fresh()
    store = materialized.versions
    with session.read() as txn:
        pinned_version = txn.version
        for batch in _update_batches(4):
            _apply(materialized, batch)
        # explicit GC plus the publication-triggered GC both ran
        store.collect()
        assert pinned_version in store.live_versions()
        assert txn.answers(QUERIES[0]) is not None
    # last pin released: only the latest version survives
    assert store.live_versions() == [materialized.version]
    assert store.collected >= 4


def test_unpinned_intermediate_versions_are_collected_immediately():
    materialized, _ = _fresh()
    store = materialized.versions
    for batch in _update_batches(5):
        _apply(materialized, batch)
    assert store.live_versions() == [materialized.version]
    assert store.published == 6  # initial materialization + 5 updates
    assert store.collected == 5


def test_copy_on_write_shares_untouched_relations():
    """Publication copies only changed relations; untouched relation objects
    (and their indexes) are shared across versions."""
    materialized, session = _fresh()
    with session.read() as txn:
        materialized.add_facts([("PatientWard", ("W1", "Sep/7", "Iggy"))])
        latest = materialized.versions.latest()
        assert latest.instance.relation("UnitWard") is \
            txn.instance.relation("UnitWard")
        assert latest.instance.relation("PatientWard") is not \
            txn.instance.relation("PatientWard")


def test_pin_and_unpin_misuse_raise_versioning_errors():
    materialized, session = _fresh()
    store = materialized.versions
    with pytest.raises(VersioningError):
        store.pin(99)
    txn = session.read()
    txn.close()
    txn.close()  # idempotent
    with pytest.raises(VersioningError):
        _ = txn.version
    bare = store.read()  # store-level transaction: no session attached
    try:
        assert bare.instance.has_relation("PatientWard")
        with pytest.raises(VersioningError):
            bare.answers(QUERIES[0])
    finally:
        bare.close()


# -- threaded schedules --------------------------------------------------------


def test_threaded_readers_see_consistent_versions():
    """Reader threads racing a writer thread: every transaction's answers
    must equal the single-threaded reference answers of its pinned version."""
    steps = 24
    expected = _expected_answers_by_version(steps)
    materialized, session = _fresh()

    observations: List[Tuple[int, Tuple]] = []
    errors: List[BaseException] = []
    done = threading.Event()

    def writer():
        try:
            for batch in _update_batches(steps):
                _apply(materialized, batch)
        finally:
            done.set()

    def reader():
        local = []
        try:
            while not done.is_set():
                with session.read() as txn:
                    local.append((txn.version,
                                  tuple(txn.answers(q) for q in QUERIES)))
            with session.read() as txn:  # one final read of the last version
                local.append((txn.version,
                              tuple(txn.answers(q) for q in QUERIES)))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert observations, "readers never completed a transaction"
    for version, answers in observations:
        assert answers == expected[version], \
            f"torn read at version {version}"
    final_versions = {version for version, _ in observations}
    assert materialized.version in final_versions
    # every unpinned historical version was collected
    assert materialized.versions.live_versions() == [materialized.version]


def test_writers_never_block_readers():
    """Readers answer from published versions while the write lock is held
    (simulating a long in-flight update)."""
    materialized, session = _fresh()
    reference = [session.answers(q) for q in QUERIES]
    completed = []

    def reader():
        for _ in range(5):
            with session.read() as txn:
                completed.append([txn.answers(q) for q in QUERIES])

    with materialized._write_lock:  # writer busy mid-update
        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive(), "reader blocked behind the writer"
    assert completed == [reference] * 5


def test_threaded_gc_keeps_pinned_versions_alive():
    """Pins taken from reader threads protect their versions from the GC
    that runs on every publish/unpin in the writer thread."""
    materialized, session = _fresh()
    pinned = []
    lock = threading.Lock()
    done = threading.Event()

    def reader():
        while not done.is_set():
            txn = session.read()
            with lock:
                pinned.append(txn)
            time.sleep(0.001)

    thread = threading.Thread(target=reader)
    thread.start()
    for batch in _update_batches(12):
        _apply(materialized, batch)
    done.set()
    thread.join(timeout=10)
    try:
        store = materialized.versions
        live = set(store.live_versions())
        for txn in pinned:
            assert txn.version in live, "GC dropped a pinned version"
            assert txn.answers(QUERIES[0]) is not None
    finally:
        for txn in pinned:
            txn.close()
    assert materialized.versions.live_versions() == [materialized.version]
