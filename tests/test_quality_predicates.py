"""Tests for contextual and quality predicates."""

import pytest

from repro.errors import QualityError
from repro.quality.predicates import (CONTEXTUAL, QUALITY, ContextualPredicate,
                                      contextual_predicate, quality_predicate)


class TestContextualPredicate:
    def test_rules_are_parsed_from_text(self):
        predicate = ContextualPredicate(
            "TakenByNurse",
            ["TakenByNurse(T, P, N, Y) :- WorkingSchedules(U, D, N, Y), DayTime(D, T), "
             "PatientUnit(U, D, P)."])
        assert len(predicate.rules) == 1
        assert predicate.role == CONTEXTUAL
        assert not predicate.is_quality()

    def test_quality_role(self):
        predicate = quality_predicate("TakenWithTherm",
                                      ["TakenWithTherm(T, P, 'B1') :- PatientUnit('Standard', D, P), "
                                       "DayTime(D, T)."])
        assert predicate.is_quality()
        assert predicate.role == QUALITY

    def test_contextual_constructor(self):
        predicate = contextual_predicate("Aux", ["Aux(X) :- R(X)."])
        assert predicate.role == CONTEXTUAL

    def test_head_must_mention_the_predicate(self):
        with pytest.raises(QualityError):
            ContextualPredicate("TakenByNurse", ["SomethingElse(X) :- R(X)."])

    def test_at_least_one_rule_required(self):
        with pytest.raises(QualityError):
            ContextualPredicate("P", [])

    def test_non_tgd_definition_rejected(self):
        with pytest.raises(QualityError):
            ContextualPredicate("P", ["false :- R(X)."])

    def test_unknown_role_rejected(self):
        with pytest.raises(QualityError):
            ContextualPredicate("P", ["P(X) :- R(X)."], role="bogus")

    def test_name_required(self):
        with pytest.raises(QualityError):
            ContextualPredicate("", ["P(X) :- R(X)."])

    def test_str_marks_quality_predicates(self):
        predicate = quality_predicate("P", ["P(X) :- R(X)."])
        assert str(predicate).startswith("[P]")
        predicate = contextual_predicate("P", ["P(X) :- R(X)."])
        assert str(predicate).startswith("[C]")

    def test_multiple_defining_rules(self):
        predicate = ContextualPredicate("P", ["P(X) :- R(X).", "P(X) :- S(X)."])
        assert len(predicate.rules) == 2
