"""Property-based tests (hypothesis) on core data structures and invariants.

The invariants covered:

* relational algebra laws (idempotence, commutativity, containment bounds);
* unification soundness (a unifier really unifies) on random atoms;
* chase soundness/monotonicity on random single-rule programs;
* roll-up / drill-down duality on random strict hierarchies;
* class hierarchy implications (linear ⊆ guarded, sticky ⊆ weakly sticky) on
  random rule sets;
* quality-measure bounds on random relation pairs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.datalog import TGD, Atom, DatalogProgram, Variable, chase
from repro.datalog.classes import classify
from repro.datalog.unify import apply_to_atom, unify_atoms
from repro.md.builder import DimensionBuilder
from repro.quality.assessment import assess_relation
from repro.relational import algebra
from repro.relational.instance import Relation
from repro.relational.schema import RelationSchema

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

values = st.sampled_from(["a", "b", "c", "d", 1, 2, 3])
rows2 = st.tuples(values, values)
relation2 = st.lists(rows2, max_size=12).map(
    lambda rows: Relation(RelationSchema("R", ["x", "y"]), rows))

variable_names = st.sampled_from(["X", "Y", "Z", "W"])
terms = st.one_of(variable_names.map(Variable), st.sampled_from(["a", "b", "c"]))
atoms = st.builds(
    lambda predicate, ts: Atom(predicate, ts),
    st.sampled_from(["P", "Q"]),
    st.lists(terms, min_size=1, max_size=3),
)


# ---------------------------------------------------------------------------
# Relational algebra laws
# ---------------------------------------------------------------------------

class TestAlgebraProperties:
    @given(relation2)
    def test_projection_is_idempotent(self, relation):
        once = algebra.project(relation, ["x"])
        twice = algebra.project(once, ["x"])
        assert set(once) == set(twice)

    @given(relation2, relation2)
    def test_union_is_commutative(self, left, right):
        assert set(algebra.union(left, right)) == set(algebra.union(right, left))

    @given(relation2, relation2)
    def test_difference_then_union_recovers_subset(self, left, right):
        difference = algebra.difference(left, right)
        assert set(difference) <= set(left)
        assert set(difference) & set(right) == set()

    @given(relation2, relation2)
    def test_intersection_is_contained_in_both(self, left, right):
        intersection = algebra.intersection(left, right)
        assert set(intersection) <= set(left) and set(intersection) <= set(right)

    @given(relation2, relation2)
    def test_containment_ratio_bounds(self, subject, reference):
        ratio = algebra.tuple_containment_ratio(subject, reference)
        assert 0.0 <= ratio <= 1.0

    @given(relation2)
    def test_containment_ratio_reflexive(self, relation):
        assert algebra.tuple_containment_ratio(relation, relation) == 1.0

    @given(relation2)
    def test_selection_is_a_subset(self, relation):
        selected = algebra.select(relation, lambda row: row["x"] == "a")
        assert set(selected) <= set(relation)


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------

class TestUnificationProperties:
    @given(atoms, atoms)
    def test_unifier_really_unifies(self, left, right):
        unifier = unify_atoms(left, right)
        if unifier is not None:
            assert apply_to_atom(unifier, left) == apply_to_atom(unifier, right)

    @given(atoms)
    def test_atom_unifies_with_itself(self, atom):
        assert unify_atoms(atom, atom) is not None

    @given(atoms, atoms)
    def test_unification_is_symmetric_in_success(self, left, right):
        assert (unify_atoms(left, right) is None) == (unify_atoms(right, left) is None)


# ---------------------------------------------------------------------------
# Chase soundness on random single-rule programs
# ---------------------------------------------------------------------------

edge_rows = st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")),
                     min_size=1, max_size=8)


class TestChaseProperties:
    @settings(max_examples=30, deadline=None)
    @given(edge_rows)
    def test_chase_output_contains_input(self, rows):
        program = DatalogProgram(tgds=[
            TGD([Atom("Up", [Variable("X"), Variable("Y")])],
                [Atom("Edge", [Variable("X"), Variable("Y")])])])
        for row in rows:
            program.add_fact("Edge", row)
        result = chase(program, check_constraints=False)
        assert set(rows) <= set(result.instance.relation("Edge"))

    @settings(max_examples=30, deadline=None)
    @given(edge_rows)
    def test_plain_rule_derives_exactly_the_projection(self, rows):
        program = DatalogProgram(tgds=[
            TGD([Atom("Node", [Variable("X")])],
                [Atom("Edge", [Variable("X"), Variable("Y")])])])
        for row in rows:
            program.add_fact("Edge", row)
        result = chase(program, check_constraints=False)
        assert set(result.instance.relation("Node")) == {(row[0],) for row in rows}

    @settings(max_examples=20, deadline=None)
    @given(edge_rows, edge_rows)
    def test_chase_is_monotone_in_the_data(self, rows, extra):
        def run(data):
            program = DatalogProgram(tgds=[
                TGD([Atom("Node", [Variable("X")])],
                    [Atom("Edge", [Variable("X"), Variable("Y")])])])
            for row in data:
                program.add_fact("Edge", row)
            return set(chase(program, check_constraints=False).instance.relation("Node"))

        assert run(rows) <= run(rows + extra)

    @settings(max_examples=20, deadline=None)
    @given(edge_rows)
    def test_existential_rule_invents_one_null_per_restricted_trigger(self, rows):
        program = DatalogProgram(tgds=[
            TGD([Atom("Tagged", [Variable("X"), Variable("Z")])],
                [Atom("Edge", [Variable("X"), Variable("Y")])])])
        for row in rows:
            program.add_fact("Edge", row)
        result = chase(program, check_constraints=False)
        sources = {row[0] for row in rows}
        tagged_sources = {row[0] for row in result.instance.relation("Tagged")}
        assert tagged_sources == sources
        assert len(result.generated_nulls()) <= len(sources)


# ---------------------------------------------------------------------------
# Roll-up / drill-down duality on random strict hierarchies
# ---------------------------------------------------------------------------

hierarchies = st.lists(
    st.tuples(st.sampled_from(["w1", "w2", "w3", "w4", "w5"]),
              st.sampled_from(["u1", "u2"])),
    min_size=1, max_size=6,
).map(dict)  # ward -> unit mapping guarantees strictness


class TestNavigationDuality:
    @given(hierarchies)
    def test_roll_up_and_drill_down_are_dual(self, mapping):
        builder = DimensionBuilder("H").category_chain("Ward", "Unit")
        for ward, unit in mapping.items():
            builder.member_edge("Ward", ward, "Unit", unit)
        dimension = builder.build()
        for ward, unit in mapping.items():
            assert dimension.roll_up(ward, "Ward", "Unit") == {unit}
            assert ward in dimension.drill_down(unit, "Unit", "Ward")

    @given(hierarchies)
    def test_strict_mapping_rolls_up_to_single_parent(self, mapping):
        builder = DimensionBuilder("H").category_chain("Ward", "Unit")
        for ward, unit in mapping.items():
            builder.member_edge("Ward", ward, "Unit", unit)
        dimension = builder.build()
        for ward in mapping:
            assert len(dimension.roll_up(ward, "Ward", "Unit")) == 1

    @given(hierarchies)
    def test_drill_down_partitions_the_wards(self, mapping):
        builder = DimensionBuilder("H").category_chain("Ward", "Unit")
        for ward, unit in mapping.items():
            builder.member_edge("Ward", ward, "Unit", unit)
        dimension = builder.build()
        recovered = set()
        for unit in set(mapping.values()):
            recovered |= dimension.drill_down(unit, "Unit", "Ward")
        assert recovered == set(mapping)


# ---------------------------------------------------------------------------
# Class-hierarchy implications on random rule sets
# ---------------------------------------------------------------------------

simple_tgds = st.lists(
    st.builds(
        lambda head_terms, body_terms: TGD(
            [Atom("H", head_terms)], [Atom("B", body_terms), Atom("C", body_terms[:1])]),
        st.lists(terms, min_size=1, max_size=2),
        st.lists(terms, min_size=1, max_size=2),
    ),
    min_size=1, max_size=3,
)


class TestClassHierarchyProperties:
    @settings(max_examples=40, deadline=None)
    @given(simple_tgds)
    def test_sticky_implies_weakly_sticky(self, tgds):
        report = classify(tgds)
        if report.is_sticky:
            assert report.is_weakly_sticky

    @settings(max_examples=40, deadline=None)
    @given(simple_tgds)
    def test_linear_implies_guarded(self, tgds):
        linear_only = [tgd for tgd in tgds if tgd.is_linear()]
        if linear_only:
            report = classify(linear_only)
            assert report.is_linear and report.is_guarded

    @settings(max_examples=40, deadline=None)
    @given(simple_tgds)
    def test_finite_and_infinite_rank_partition_positions(self, tgds):
        report = classify(tgds)
        assert not (set(report.finite_rank_positions) & set(report.infinite_rank_positions))


# ---------------------------------------------------------------------------
# Quality measures
# ---------------------------------------------------------------------------

class TestQualityMeasureProperties:
    @given(relation2, relation2)
    def test_ratios_are_bounded(self, original, quality):
        quality = Relation(RelationSchema("R_q", ["x", "y"]), quality)
        assessment = assess_relation(original, quality)
        assert 0.0 <= assessment.quality_ratio <= 1.0
        assert 0.0 <= assessment.completeness_ratio <= 1.0
        assert assessment.departure >= 0

    @given(relation2)
    def test_identical_relations_have_no_departure(self, relation):
        quality = Relation(RelationSchema("R_q", ["x", "y"]), relation)
        assessment = assess_relation(relation, quality)
        assert assessment.quality_ratio == 1.0
        assert assessment.departure == 0

    @given(relation2, relation2)
    def test_departure_is_symmetric_difference_size(self, original, quality):
        quality_rel = Relation(RelationSchema("R_q", ["x", "y"]), quality)
        assessment = assess_relation(original, quality_rel)
        assert assessment.departure == len(set(original) ^ set(quality_rel))
