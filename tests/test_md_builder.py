"""Tests for the dimension and MD-model builders."""

import pytest

from repro.errors import DimensionSchemaError
from repro.md.builder import DimensionBuilder, MDModelBuilder


class TestDimensionBuilder:
    def test_category_chain(self):
        dim = DimensionBuilder("D").category_chain("A", "B", "C").build()
        assert dim.schema.is_above("C", "A")
        assert dim.schema.bottom_categories() == {"A"}

    def test_category_with_parents_of_and_children_of(self):
        dim = (DimensionBuilder("D")
               .category("B")
               .category("A", children_of=["B"])
               .category("C", parents_of=["B"])
               .build())
        assert dim.schema.parents("A") == {"B"}
        assert dim.schema.parents("B") == {"C"}

    def test_member_edges_register_members(self):
        dim = (DimensionBuilder("D")
               .category_chain("A", "B")
               .member_edge("A", "a1", "B", "b1")
               .build())
        assert dim.has_member("A", "a1") and dim.has_member("B", "b1")

    def test_member_edges_bulk(self):
        dim = (DimensionBuilder("D")
               .category_chain("A", "B")
               .member_edges("A", "B", [("a1", "b1"), ("a2", "b1")])
               .build())
        assert dim.children_of("B", "b1") == {("A", "a1"), ("A", "a2")}

    def test_explicit_members_without_edges(self):
        dim = DimensionBuilder("D").category("A").member("A", "a1", "a2").build()
        assert dim.members("A") == {"a1", "a2"}

    def test_empty_chain_rejected(self):
        with pytest.raises(DimensionSchemaError):
            DimensionBuilder("D").category_chain()

    def test_build_validates_schema(self):
        builder = DimensionBuilder("D").category_chain("A", "B")
        builder.member_edge("A", "a1", "B", "b1")
        dim = builder.build()
        assert dim.schema.edges == frozenset({("A", "B")})


class TestMDModelBuilder:
    def test_relations_and_tuples(self):
        dim = DimensionBuilder("D").category_chain("A", "B") \
            .member_edge("A", "a1", "B", "b1").build()
        md = (MDModelBuilder()
              .dimension(dim)
              .relation("R", categorical=[("A", "D", "A")], non_categorical=["v"],
                        rows=[("a1", 1)])
              .tuples("R", [("a1", 2)])
              .build())
        assert len(md.relation("R")) == 2

    def test_multiple_dimensions(self, hospital_md):
        assert set(hospital_md.dimensions) == {"Hospital", "Time"}

    def test_hospital_relations_present(self, hospital_md):
        assert {"PatientWard", "PatientUnit", "WorkingSchedules", "Shifts",
                "DischargePatients", "Thermometer"} <= set(hospital_md.relation_schemas)
