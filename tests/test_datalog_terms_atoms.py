"""Tests for Datalog± terms, atoms and comparison atoms."""

import pytest

from repro.errors import DatalogError
from repro.datalog.atoms import (Atom, Comparison, atoms_positions_of, atoms_variables)
from repro.datalog.terms import Constant, Null, Variable, is_variable, term_value, to_term


class TestTerms:
    def test_to_term_wraps_plain_values(self):
        assert to_term("abc") == Constant("abc")
        assert to_term(3) == Constant(3)

    def test_to_term_preserves_terms(self):
        variable = Variable("X")
        assert to_term(variable) is variable
        null = Null("n1")
        assert to_term(null) is null

    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("X"))

    def test_term_value(self):
        assert term_value(Constant(7)) == 7
        assert term_value(Null("n")) == Null("n")
        with pytest.raises(ValueError):
            term_value(Variable("X"))

    def test_variable_equality_and_order(self):
        assert Variable("X") == Variable("X")
        assert Variable("A") < Variable("B")


class TestAtom:
    def test_construction_coerces_terms(self):
        atom = Atom("R", ["a", Variable("X"), 3])
        assert atom.terms == (Constant("a"), Variable("X"), Constant(3))
        assert atom.arity == 3

    def test_empty_predicate_rejected(self):
        with pytest.raises(DatalogError):
            Atom("", ["a"])

    def test_variables_in_order_without_duplicates(self):
        atom = Atom("R", [Variable("X"), "c", Variable("Y"), Variable("X")])
        assert atom.variables() == [Variable("X"), Variable("Y")]

    def test_constants(self):
        atom = Atom("R", ["a", Variable("X"), "a"])
        assert atom.constants() == [Constant("a")]

    def test_is_ground(self):
        assert Atom("R", ["a", 1]).is_ground()
        assert not Atom("R", [Variable("X")]).is_ground()

    def test_positions(self):
        atom = Atom("R", ["a", "b"])
        assert atom.positions() == [("R", 0), ("R", 1)]

    def test_positions_of_variable(self):
        atom = Atom("R", [Variable("X"), "c", Variable("X")])
        assert atom.positions_of(Variable("X")) == [("R", 0), ("R", 2)]

    def test_negation_helpers(self):
        atom = Atom("R", ["a"])
        negated = atom.negate()
        assert negated.negated
        assert negated.positive() == atom

    def test_fact_round_trip(self):
        atom = Atom.fact("R", ("a", 1, Null("n")))
        assert atom.to_fact_row() == ("a", 1, Null("n"))

    def test_to_fact_row_requires_ground(self):
        with pytest.raises(DatalogError):
            Atom("R", [Variable("X")]).to_fact_row()

    def test_str(self):
        assert str(Atom("R", [Variable("X"), "a"])) == "R(X, a)"
        assert str(Atom("R", ["a"], negated=True)) == "not R(a)"


class TestComparison:
    def test_supported_operators_only(self):
        with pytest.raises(DatalogError):
            Comparison("~", Variable("X"), 1)

    def test_numeric_evaluation(self):
        assert Comparison("<", Variable("X"), Variable("Y")).evaluate(1, 2)
        assert not Comparison(">", Variable("X"), Variable("Y")).evaluate(1, 2)

    def test_string_evaluation(self):
        comparison = Comparison(">=", Variable("T"), "Sep/5-11:45")
        assert comparison.evaluate("Sep/5-12:10", "Sep/5-11:45")
        assert not comparison.evaluate("Sep/5-11:30", "Sep/5-11:45")

    def test_null_equality_semantics(self):
        eq = Comparison("=", Variable("X"), Variable("Y"))
        assert eq.evaluate(Null("n"), Null("n"))
        assert not eq.evaluate(Null("n"), "a")
        lt = Comparison("<", Variable("X"), Variable("Y"))
        assert not lt.evaluate(Null("n"), "a")

    def test_incomparable_types_fall_back(self):
        assert not Comparison("=", Variable("X"), Variable("Y")).evaluate(1, "a")
        assert Comparison("!=", Variable("X"), Variable("Y")).evaluate(1, "a")

    def test_variables(self):
        comparison = Comparison("<", Variable("X"), "c")
        assert comparison.variables() == [Variable("X")]


class TestAtomCollections:
    def test_atoms_variables_order(self):
        atoms = [Atom("R", [Variable("X"), Variable("Y")]),
                 Atom("S", [Variable("Y"), Variable("Z")])]
        assert atoms_variables(atoms) == [Variable("X"), Variable("Y"), Variable("Z")]

    def test_atoms_positions_of(self):
        atoms = [Atom("R", [Variable("X")]), Atom("S", ["c", Variable("X")])]
        assert atoms_positions_of(atoms, Variable("X")) == {("R", 0), ("S", 1)}
