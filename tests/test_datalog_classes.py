"""Tests for the Datalog± class hierarchy checks (Section II/III of the paper)."""


from repro.datalog import parse_rule
from repro.datalog.classes import (classify, compute_sticky_marking, is_guarded, is_linear,
                                   is_non_recursive, is_sticky, is_weakly_acyclic,
                                   is_weakly_sticky)


def rules(*texts):
    return [parse_rule(text) for text in texts]


class TestLinearAndGuarded:
    def test_linear(self):
        assert is_linear(rules("P(X) :- Q(X, Y)."))
        assert not is_linear(rules("P(X) :- Q(X), R(X)."))

    def test_guarded(self):
        assert is_guarded(rules("P(X) :- Q(X, Y), R(Y)."))       # Q guards {X, Y}
        assert not is_guarded(rules("P(X) :- Q(X, Y), R(Y, Z).")) # nothing guards {X,Y,Z}

    def test_linear_implies_guarded(self):
        linear = rules("P(X) :- Q(X, Y).")
        assert is_linear(linear) and is_guarded(linear)


class TestStickyMarking:
    def test_initial_marking_marks_non_head_variables(self):
        marking = compute_sticky_marking(rules("P(X) :- Q(X, Y)."))
        # Y does not occur in the head: its occurrence is marked.
        assert ("Q", 1) in marking.marked_positions
        assert ("Q", 0) not in marking.marked_positions

    def test_propagation_step(self):
        marked = compute_sticky_marking(rules(
            "P(X, Y) :- Q(X, Y).",
            "S(X) :- P(X, Y).",
        ))
        # In the second rule Y is dropped, so (P,1) becomes marked; by
        # propagation the first rule's Y (at (Q,1)) must be marked too.
        assert ("P", 1) in marked.marked_positions
        assert ("Q", 1) in marked.marked_positions

    def test_sticky_program(self):
        # The classical sticky example: the join variable is propagated to
        # every head atom.
        assert is_sticky(rules("P(X, Y, Z) :- Q(X, Y), R(Y, Z)."))

    def test_non_sticky_program(self):
        # The join variable Y is dropped from the head: marked join => not sticky.
        assert not is_sticky(rules("P(X, Z) :- Q(X, Y), R(Y, Z)."))


class TestWeaklySticky:
    def test_non_sticky_but_weakly_sticky(self):
        # Same join, but no existential anywhere: every position has finite
        # rank, so the marked join variable occurs at a finite-rank position.
        assert not is_sticky(rules("P(X, Z) :- Q(X, Y), R(Y, Z)."))
        assert is_weakly_sticky(rules("P(X, Z) :- Q(X, Y), R(Y, Z)."))

    def test_not_weakly_sticky(self):
        # Join variable marked and only at infinite-rank positions: the
        # existential feeds back into the joined position.
        program = rules(
            "exists Z : Q(Y, Z) :- Q(X, Y).",
            "P(X) :- Q(X, Y), Q(Y, X).",
        )
        report = classify(program)
        assert not report.is_sticky
        assert not report.is_weakly_sticky
        assert report.weakly_sticky_witness

    def test_sticky_implies_weakly_sticky(self):
        program = rules("P(X, Y, Z) :- Q(X, Y), R(Y, Z).")
        report = classify(program)
        assert report.is_sticky and report.is_weakly_sticky

    def test_hospital_ontology_is_weakly_sticky_not_sticky(self, hospital_ontology):
        report = classify([rule.tgd for rule in hospital_ontology.rules])
        assert report.is_weakly_sticky
        assert not report.is_sticky


class TestWeakAcyclicityAndRecursion:
    def test_weakly_acyclic(self):
        assert is_weakly_acyclic(rules("exists Z : P(X, Z) :- Q(X, Y)."))
        assert not is_weakly_acyclic(rules("exists Y : Edge(X, Y) :- Edge(W, X)."))

    def test_non_recursive(self):
        assert is_non_recursive(rules("P(X) :- Q(X)."))
        assert not is_non_recursive(rules("P(X) :- Q(X).", "Q(X) :- P(X)."))

    def test_classify_summary_keys(self):
        summary = classify(rules("P(X) :- Q(X).")).summary()
        assert set(summary) == {"linear", "guarded", "sticky", "weakly_sticky",
                                "weakly_acyclic"}
