"""Tests for relation-level roll-up and drill-down navigation."""

import pytest

from repro.errors import NavigationError
from repro.md.navigation import drill_down_relation, members_reachable, roll_up_relation
from repro.relational.values import Null


class TestRollUpRelation:
    def test_patient_ward_to_patient_unit(self, fresh_hospital_md):
        rolled = roll_up_relation(fresh_hospital_md, "PatientWard", "Ward", "Unit",
                                  new_name="PatientUnitDirect")
        assert ("Standard", "Sep/5", "Tom Waits") in rolled
        assert ("Intensive", "Sep/6", "Lou Reed") in rolled
        assert ("Terminal", "Sep/9", "Tom Waits") in rolled
        assert len(rolled) == len(fresh_hospital_md.relation("PatientWard"))

    def test_roll_up_to_institution(self, fresh_hospital_md):
        rolled = roll_up_relation(fresh_hospital_md, "PatientWard", "Ward", "Institution")
        institutions = {row[0] for row in rolled}
        assert institutions == {"H1", "H2"}

    def test_roll_up_day_to_month(self, fresh_hospital_md):
        rolled = roll_up_relation(fresh_hospital_md, "PatientWard", "Day", "Month")
        assert all(row[1] == "2005-09" for row in rolled)

    def test_wrong_direction_rejected(self, fresh_hospital_md):
        with pytest.raises(NavigationError):
            roll_up_relation(fresh_hospital_md, "WorkingSchedules", "Unit", "Ward")

    def test_matches_chase_generated_patient_unit(self, fresh_hospital_md,
                                                  hospital_ontology):
        rolled = roll_up_relation(fresh_hospital_md, "PatientWard", "Ward", "Unit")
        chased = hospital_ontology.chase().instance.relation("PatientUnit")
        chased_ground = {row for row in chased
                         if not any(isinstance(v, Null) for v in row)}
        assert set(rolled) <= chased_ground


class TestDrillDownRelation:
    def test_working_schedules_to_shifts(self, fresh_hospital_md):
        drilled = drill_down_relation(fresh_hospital_md, "WorkingSchedules", "Unit", "Ward",
                                      extra_non_categorical=["Shift"])
        rows = {row[:3] for row in drilled}
        # the Standard unit drills down to W1 and W2 (Example 2)
        assert ("W1", "Sep/9", "Mark") in rows
        assert ("W2", "Sep/9", "Mark") in rows
        # generated shift values are fresh nulls
        assert all(isinstance(row[-1], Null) for row in drilled)

    def test_drill_down_produces_one_tuple_per_child(self, fresh_hospital_md):
        drilled = drill_down_relation(fresh_hospital_md, "WorkingSchedules", "Unit", "Ward")
        standard_rows = [row for row in drilled if row[2] == "Helen" and row[1] == "Sep/5"]
        assert len(standard_rows) == 2

    def test_wrong_direction_rejected(self, fresh_hospital_md):
        with pytest.raises(NavigationError):
            drill_down_relation(fresh_hospital_md, "PatientWard", "Ward", "Unit")

    def test_discharge_to_unit(self, fresh_hospital_md):
        drilled = drill_down_relation(fresh_hospital_md, "DischargePatients",
                                      "Institution", "Unit")
        units_for_tom = {row[0] for row in drilled if row[2] == "Tom Waits"}
        assert units_for_tom == {"Standard", "Intensive"}


class TestMembersReachable:
    def test_upward(self, fresh_hospital_md):
        dimension = fresh_hospital_md.dimension("Hospital")
        assert members_reachable(dimension, "W1", "Ward", "Institution") == ("H1",)

    def test_downward(self, fresh_hospital_md):
        dimension = fresh_hospital_md.dimension("Hospital")
        assert members_reachable(dimension, "Standard", "Unit", "Ward") == ("W1", "W2")

    def test_same_category(self, fresh_hospital_md):
        dimension = fresh_hospital_md.dimension("Hospital")
        assert members_reachable(dimension, "W1", "Ward", "Ward") == ("W1",)

    def test_incomparable_categories_rejected(self):
        from repro.md.builder import DimensionBuilder
        dim = (DimensionBuilder("T")
               .edge("Day", "Week").edge("Day", "Month")
               .member_edge("Day", "d1", "Week", "w1")
               .member_edge("Day", "d1", "Month", "m1")
               .build())
        with pytest.raises(NavigationError):
            members_reachable(dim, "w1", "Week", "Month")
