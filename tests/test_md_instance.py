"""Tests for dimension instances and MD instances (members, roll-up, drill-down)."""

import pytest

from repro.errors import (CategoricalRelationError, DimensionInstanceError, NavigationError)
from repro.hospital.dimensions import build_hospital_dimension, build_time_dimension
from repro.md.builder import MDModelBuilder
from repro.md.instance import DimensionInstance
from repro.md.schema import DimensionSchema


@pytest.fixture()
def hospital_dim():
    return build_hospital_dimension()


class TestMembership:
    def test_members_per_category(self, hospital_dim):
        assert hospital_dim.members("Ward") == {"W1", "W2", "W3", "W4"}
        assert hospital_dim.members("Unit") == {"Standard", "Intensive", "Terminal"}
        assert hospital_dim.members("Institution") == {"H1", "H2"}

    def test_unknown_category(self, hospital_dim):
        with pytest.raises(DimensionInstanceError):
            hospital_dim.members("Missing")

    def test_has_member(self, hospital_dim):
        assert hospital_dim.has_member("Ward", "W1")
        assert not hospital_dim.has_member("Ward", "W9")

    def test_member_count(self, hospital_dim):
        assert hospital_dim.member_count() == 4 + 3 + 2 + 1

    def test_add_member_requires_known_category(self):
        dim = DimensionInstance(DimensionSchema("D", categories=["A"]))
        with pytest.raises(DimensionInstanceError):
            dim.add_member("B", "x")

    def test_edge_requires_schema_edge(self):
        dim = DimensionInstance(DimensionSchema("D", child_parent_edges=[("A", "B")]))
        with pytest.raises(DimensionInstanceError):
            dim.add_edge("B", "b1", "A", "a1")


class TestNavigation:
    def test_parents_and_children_of_member(self, hospital_dim):
        assert hospital_dim.parents_of("Ward", "W1") == {("Unit", "Standard")}
        assert hospital_dim.children_of("Unit", "Standard") == {("Ward", "W1"), ("Ward", "W2")}

    def test_roll_up_adjacent(self, hospital_dim):
        assert hospital_dim.roll_up("W1", "Ward", "Unit") == {"Standard"}

    def test_roll_up_transitive(self, hospital_dim):
        assert hospital_dim.roll_up("W1", "Ward", "Institution") == {"H1"}
        assert hospital_dim.roll_up("W4", "Ward", "Institution") == {"H2"}

    def test_roll_up_same_category(self, hospital_dim):
        assert hospital_dim.roll_up("W1", "Ward", "Ward") == {"W1"}

    def test_roll_up_wrong_direction(self, hospital_dim):
        with pytest.raises(NavigationError):
            hospital_dim.roll_up("Standard", "Unit", "Ward")

    def test_drill_down_adjacent(self, hospital_dim):
        assert hospital_dim.drill_down("Standard", "Unit", "Ward") == {"W1", "W2"}

    def test_drill_down_transitive(self, hospital_dim):
        assert hospital_dim.drill_down("H1", "Institution", "Ward") == {"W1", "W2", "W3"}

    def test_drill_down_wrong_direction(self, hospital_dim):
        with pytest.raises(NavigationError):
            hospital_dim.drill_down("W1", "Ward", "Unit")

    def test_rollup_pairs(self, hospital_dim):
        pairs = hospital_dim.rollup_pairs("Ward", "Unit")
        assert ("W1", "Standard") in pairs and ("W3", "Intensive") in pairs
        assert len(pairs) == 4

    def test_time_dimension_rollup(self):
        time_dim = build_time_dimension()
        assert time_dim.roll_up("Sep/5-12:10", "Time", "Day") == {"Sep/5"}
        assert time_dim.roll_up("Sep/5", "Day", "Month") == {"2005-09"}
        assert time_dim.roll_up("Sep/5-12:10", "Time", "Year") == {"2005"}


class TestMDInstance:
    def test_relation_registration_and_tuples(self, fresh_hospital_md):
        md = fresh_hospital_md
        assert set(md.relation("PatientWard").column("Patient")) == {"Tom Waits", "Lou Reed"}
        assert md.total_tuples() > 0

    def test_unknown_dimension_in_relation_rejected(self):
        builder = MDModelBuilder()
        with pytest.raises(CategoricalRelationError):
            builder.relation("R", categorical=[("A", "Nope", "C")])

    def test_unknown_category_in_relation_rejected(self, hospital_dim):
        builder = MDModelBuilder().dimension(hospital_dim)
        with pytest.raises(CategoricalRelationError):
            builder.relation("R", categorical=[("A", "Hospital", "Nope")])

    def test_relation_schema_lookup(self, fresh_hospital_md):
        schema = fresh_hospital_md.relation_schema("PatientWard")
        assert schema.attribute_names == ("Ward", "Day", "Patient")
        with pytest.raises(CategoricalRelationError):
            fresh_hospital_md.relation_schema("Missing")

    def test_add_tuples_requires_declared_relation(self, fresh_hospital_md):
        with pytest.raises(CategoricalRelationError):
            fresh_hospital_md.add_tuples("Missing", [("a",)])

    def test_dimension_lookup(self, fresh_hospital_md):
        assert fresh_hospital_md.dimension("Hospital").schema.name == "Hospital"
        with pytest.raises(DimensionInstanceError):
            fresh_hospital_md.dimension("Nope")
