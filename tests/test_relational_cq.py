"""Tests for the pattern-based conjunctive query evaluator."""

import pytest

from repro.errors import ArityError, QueryAnsweringError
from repro.relational.cq import PatternAtom, PatternQuery, evaluate, holds, is_pattern_variable
from repro.relational.instance import DatabaseInstance


@pytest.fixture()
def instance():
    db = DatabaseInstance()
    db.declare("Parent", ["parent", "child"])
    db.declare("Person", ["name", "age"])
    db.add_all("Parent", [("ann", "bob"), ("bob", "carol"), ("ann", "dan")])
    db.add_all("Person", [("ann", 70), ("bob", 45), ("carol", 20), ("dan", 40)])
    return db


class TestPatternAtom:
    def test_variable_detection(self):
        assert is_pattern_variable("?x")
        assert not is_pattern_variable("x")
        assert not is_pattern_variable("?")
        assert not is_pattern_variable(42)

    def test_atom_variables_in_order(self):
        atom = PatternAtom("R", ["?x", "c", "?y", "?x"])
        assert atom.variables() == ["?x", "?y"]


class TestPatternQuery:
    def test_answer_variable_must_occur_in_body(self):
        with pytest.raises(QueryAnsweringError):
            PatternQuery(["?z"], [PatternAtom("Parent", ["?x", "?y"])])

    def test_str_rendering(self):
        query = PatternQuery(["?x"], [PatternAtom("Parent", ["?x", "?y"])])
        assert "Parent" in str(query)


class TestEvaluate:
    def test_single_atom_query(self, instance):
        query = PatternQuery(["?c"], [PatternAtom("Parent", ["ann", "?c"])])
        assert evaluate(query, instance) == [("bob",), ("dan",)]

    def test_join_query(self, instance):
        query = PatternQuery(
            ["?grandchild"],
            [PatternAtom("Parent", ["ann", "?x"]),
             PatternAtom("Parent", ["?x", "?grandchild"])])
        assert evaluate(query, instance) == [("carol",)]

    def test_join_on_repeated_variable_within_atom(self, instance):
        instance.declare("Self", ["a", "b"])
        instance.add("Self", ("x", "x"))
        instance.add("Self", ("x", "y"))
        query = PatternQuery(["?a"], [PatternAtom("Self", ["?a", "?a"])])
        assert evaluate(query, instance) == [("x",)]

    def test_filters(self, instance):
        query = PatternQuery(
            ["?name"],
            [PatternAtom("Person", ["?name", "?age"])],
            filters=[lambda binding: binding["?age"] >= 45])
        assert evaluate(query, instance) == [("ann",), ("bob",)]

    def test_constant_mismatch_yields_empty(self, instance):
        query = PatternQuery(["?c"], [PatternAtom("Parent", ["zoe", "?c"])])
        assert evaluate(query, instance) == []

    def test_arity_mismatch_raises(self, instance):
        query = PatternQuery(["?x"], [PatternAtom("Parent", ["?x"])])
        with pytest.raises(ArityError):
            evaluate(query, instance)

    def test_duplicate_answers_removed(self, instance):
        query = PatternQuery(["?p"], [PatternAtom("Parent", ["?p", "?c"])])
        assert evaluate(query, instance) == [("ann",), ("bob",)]


class TestHolds:
    def test_holds_true(self, instance):
        query = PatternQuery([], [PatternAtom("Parent", ["ann", "?x"])])
        assert holds(query, instance)

    def test_holds_false(self, instance):
        query = PatternQuery([], [PatternAtom("Parent", ["carol", "?x"])])
        assert not holds(query, instance)

    def test_holds_with_failing_filter(self, instance):
        query = PatternQuery([], [PatternAtom("Person", ["?n", "?a"])],
                             filters=[lambda binding: binding["?a"] > 100])
        assert not holds(query, instance)
