"""Tests for the synthetic workload generator and query-workload helpers."""


from repro.md.validation import validate_md_instance
from repro.workloads import (WorkloadSpec, boolean_probe, full_scan_query, generate_workload,
                             point_queries)


class TestWorkloadSpec:
    def test_scaled_overrides_fields(self):
        spec = WorkloadSpec(tuples_per_relation=10)
        bigger = spec.scaled(tuples_per_relation=100, seed=3)
        assert bigger.tuples_per_relation == 100 and bigger.seed == 3
        assert spec.tuples_per_relation == 10  # original untouched


class TestGeneratedStructure:
    def test_dimensions_and_relations(self, tiny_workload):
        spec = tiny_workload.spec
        assert len(tiny_workload.md.dimensions) == spec.dimensions
        assert set(tiny_workload.base_relation_names) == {"Base0"}
        assert set(tiny_workload.upward_relation_names) == {"Up0"}
        assert set(tiny_workload.downward_relation_names) == {"Down0"}

    def test_generated_hierarchies_are_strict_and_valid(self, tiny_workload):
        assert validate_md_instance(tiny_workload.md).is_valid

    def test_member_counts_follow_fanout(self, tiny_workload):
        dimension = tiny_workload.md.dimension("D0")
        spec = tiny_workload.spec
        bottom = sorted(dimension.schema.bottom_categories())[0]
        assert len(dimension.members(bottom)) == spec.top_members * spec.fanout ** (spec.depth - 1)

    def test_base_relation_tuple_count(self, tiny_workload):
        relation = tiny_workload.md.relation("Base0")
        assert len(relation) <= tiny_workload.spec.tuples_per_relation
        assert len(relation) > 0

    def test_determinism(self):
        spec = WorkloadSpec(tuples_per_relation=15, assessment_tuples=15, seed=42)
        first = generate_workload(spec)
        second = generate_workload(spec)
        assert set(first.md.relation("Base0")) == set(second.md.relation("Base0"))
        assert set(first.assessment_instance.relation("Readings")) == \
            set(second.assessment_instance.relation("Readings"))

    def test_different_seeds_differ(self):
        first = generate_workload(WorkloadSpec(seed=1, tuples_per_relation=30))
        second = generate_workload(WorkloadSpec(seed=2, tuples_per_relation=30))
        assert set(first.md.relation("Base0")) != set(second.md.relation("Base0"))


class TestGeneratedOntology:
    def test_ontology_is_weakly_sticky(self, tiny_workload):
        assert tiny_workload.ontology.is_weakly_sticky()

    def test_upward_rule_generates_data(self, tiny_workload):
        chased = tiny_workload.ontology.chase().instance
        assert len(chased.relation("Up0")) > 0

    def test_downward_rule_generates_nulls(self, tiny_workload):
        chased = tiny_workload.ontology.chase().instance
        assert chased.relation("Down0").nulls()

    def test_queries_have_answers(self, tiny_workload):
        answered = [q for q in tiny_workload.queries
                    if tiny_workload.ontology.certain_answers(q)]
        assert answered

    def test_total_facts_grows_with_tuples(self):
        small = generate_workload(WorkloadSpec(tuples_per_relation=10, seed=5))
        large = generate_workload(WorkloadSpec(tuples_per_relation=200, seed=5))
        assert large.total_facts() > small.total_facts()


class TestGeneratedQualityContext:
    def test_quality_version_filters_dirty_tuples(self, tiny_workload):
        versions = tiny_workload.context.quality_versions_for(
            tiny_workload.assessment_instance)
        readings = tiny_workload.assessment_instance.relation("Readings")
        assert 0 < len(versions["Readings"]) <= len(readings)

    def test_dirty_fraction_zero_keeps_everything(self):
        workload = generate_workload(WorkloadSpec(dirty_fraction=0.0, seed=3,
                                                  assessment_tuples=30))
        versions = workload.context.quality_versions_for(workload.assessment_instance)
        assert len(versions["Readings"]) == len(
            workload.assessment_instance.relation("Readings"))

    def test_dirty_fraction_one_removes_most(self):
        workload = generate_workload(WorkloadSpec(dirty_fraction=1.0, seed=3,
                                                  assessment_tuples=30))
        versions = workload.context.quality_versions_for(workload.assessment_instance)
        assert len(versions["Readings"]) < len(
            workload.assessment_instance.relation("Readings"))


class TestQueryHelpers:
    def test_point_queries(self, tiny_workload):
        queries = point_queries(tiny_workload.ontology, "Base0", limit=3)
        assert len(queries) <= 3
        assert all(not q.is_boolean() for q in queries)

    def test_full_scan_query(self, tiny_workload):
        query = full_scan_query(tiny_workload.ontology, "Up0")
        answers = tiny_workload.ontology.certain_answers(query)
        assert answers

    def test_boolean_probe(self, tiny_workload):
        row = next(iter(tiny_workload.md.relation("Base0")))
        probe = boolean_probe(tiny_workload.ontology, "Base0", row)
        assert tiny_workload.ontology.holds(probe)


class TestSeedPlumbing:
    """Child streams (``derive_rng``) isolate components from each other's
    draw counts — the regression class for the shared-``Random`` bug."""

    def test_derive_rng_is_stable_and_label_separated(self):
        import random

        from repro.workloads import derive_rng

        assert derive_rng(random.Random(5), "a").random() == \
            derive_rng(random.Random(5), "a").random()
        assert derive_rng(random.Random(5), "a").random() != \
            derive_rng(random.Random(5), "b").random()

    def test_assessment_layer_independent_of_base_tuple_count(self):
        """Changing ``tuples_per_relation`` (a *base*-layer knob) must not
        reshuffle the assessment instance — it did when both layers drew
        from one shared generator."""
        small = generate_workload(
            WorkloadSpec(tuples_per_relation=10, assessment_tuples=20, seed=7))
        large = generate_workload(
            WorkloadSpec(tuples_per_relation=60, assessment_tuples=20, seed=7))
        assert set(small.assessment_instance.relation("Readings")) == \
            set(large.assessment_instance.relation("Readings"))
        assert small.queries == large.queries

    def test_update_streams_private_per_target(self, tiny_workload):
        """Base and assessment streams from one seed never share state:
        building them in either order yields identical steps."""
        from repro.workloads import generate_update_stream

        def steps(target):
            return [(tuple(map(tuple, step.adds)),
                     tuple(map(tuple, step.retracts)))
                    for step in generate_update_stream(
                        tiny_workload, steps=4, seed=3, target=target)]

        base_first = (steps("base"), steps("assessment"))
        assessment_first = (steps("assessment"), steps("base"))
        assert base_first == (assessment_first[1], assessment_first[0])
        assert steps("base") != steps("assessment")
