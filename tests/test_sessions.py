"""Unit tests for the session layer (repro.engine.session, repro.quality.session).

The differential suite (``test_session_differential.py``) proves incremental
== from-scratch; these tests pin down the API surface: update results, the
incremental-vs-full decision, cache behaviour and invalidation, stats
threading, and the hospital scenario's session plumbing.
"""

from __future__ import annotations

import pytest

from repro.datalog import chase, parse_program
from repro.engine import EngineStats
from repro.engine.session import MaterializedProgram, QuerySession
from repro.hospital import HospitalScenario

PROGRAM_TEXT = """
    PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
    Standardized(P) :- PatientUnit('Standard', D, P).
    UnitWard('Standard', 'W1').
    UnitWard('Intensive', 'W2').
    PatientWard('W1', 'Sep/5', 'Tom').
    PatientWard('W2', 'Sep/5', 'Lou').
"""


@pytest.fixture
def materialized():
    return MaterializedProgram(parse_program(PROGRAM_TEXT))


# -- EngineStats (satellite: counters declared once) --------------------------


def test_stats_merge_and_dict_cover_every_field():
    stats = EngineStats(engine="indexed")
    other = EngineStats(engine="indexed")
    for name in EngineStats.counter_names():
        setattr(other, name, 2)
    stats.merge(other)
    assert all(getattr(stats, name) == 2 for name in EngineStats.counter_names())
    as_dict = stats.as_dict()
    assert as_dict["engine"] == "indexed"
    assert set(as_dict) == {"engine", *EngineStats.counter_names()}
    assert {"cache_hits", "cache_misses", "incremental_updates",
            "full_rechases"} <= set(EngineStats.counter_names())


def test_stats_delta_and_snapshot():
    stats = EngineStats()
    stats.rows_scanned = 7
    snap = stats.snapshot()
    stats.rows_scanned += 5
    delta = stats.delta(snap)
    assert delta.rows_scanned == 5
    assert snap.rows_scanned == 7  # snapshot is independent


# -- MaterializedProgram ------------------------------------------------------


def test_materialization_matches_one_shot_chase(materialized):
    reference = chase(parse_program(PROGRAM_TEXT), check_constraints=False)
    assert reference.instance == materialized.instance
    assert materialized.result.steps == reference.steps


def test_add_facts_reports_applied_and_changed(materialized):
    update = materialized.add_facts([("PatientWard", ("W1", "Sep/6", "Nick"))])
    assert update.action == "add"
    assert update.strategy == "incremental"
    assert update.applied == [("PatientWard", ("W1", "Sep/6", "Nick"))]
    assert update.changed_predicates == {
        "PatientWard", "PatientUnit", "Standardized"}
    assert update.steps == 2
    assert update.stats.incremental_updates == 1
    assert materialized.version == 1


def test_duplicate_add_is_noop(materialized):
    update = materialized.add_facts([("PatientWard", ("W1", "Sep/5", "Tom"))])
    assert update.strategy == "noop"
    assert update.applied == []
    assert materialized.version == 0


def test_retract_missing_fact_is_noop(materialized):
    update = materialized.retract_facts([("PatientWard", ("W9", "Sep/5", "x"))])
    assert update.strategy == "noop"
    assert materialized.version == 0


def test_retract_deletes_derivation_cone(materialized):
    update = materialized.retract_facts([("PatientWard", ("W1", "Sep/5", "Tom"))])
    assert update.strategy == "incremental"
    assert ("Tom",) not in materialized.instance.relation("Standardized")
    assert len(materialized.instance.relation("PatientUnit")) == 1
    assert update.changed_predicates == {
        "PatientWard", "PatientUnit", "Standardized"}


def test_added_fact_survives_retraction_of_former_support(materialized):
    # Make the derived fact PatientUnit(Standard, Sep/5, Tom) extensional...
    materialized.add_facts([("PatientUnit", ("Standard", "Sep/5", "Tom"))])
    # ...then retract the fact that originally derived it.
    materialized.retract_facts([("PatientWard", ("W1", "Sep/5", "Tom"))])
    assert ("Standard", "Sep/5", "Tom") in materialized.instance.relation("PatientUnit")
    assert ("Tom",) in materialized.instance.relation("Standardized")


def test_edb_program_tracks_updates(materialized):
    materialized.add_facts([("PatientWard", ("W1", "Sep/7", "Iggy"))])
    materialized.retract_facts([("PatientWard", ("W2", "Sep/5", "Lou"))])
    edb = materialized.edb_program().database
    assert ("W1", "Sep/7", "Iggy") in edb.relation("PatientWard")
    assert ("W2", "Sep/5", "Lou") not in edb.relation("PatientWard")
    # intensional relations never hold EDB facts
    assert not edb.has_relation("PatientUnit") or \
        len(edb.relation("PatientUnit")) == 0


def test_without_provenance_retraction_falls_back_to_full():
    materialized = MaterializedProgram(parse_program(PROGRAM_TEXT),
                                       record_provenance=False)
    update = materialized.retract_facts([("PatientWard", ("W1", "Sep/5", "Tom"))])
    assert update.strategy == "full"
    assert update.changed_predicates is None
    assert materialized.stats.full_rechases == 1
    assert ("Tom",) not in materialized.instance.relation("Standardized")


# -- QuerySession -------------------------------------------------------------


def test_query_session_caches_parse_plan_and_answers(materialized):
    session = QuerySession(materialized)
    query = "?(P) :- PatientUnit('Standard', D, P)."
    first = session.answers(query)
    assert first == (("Tom",),)
    before = session.stats.snapshot()
    assert session.answers(query) == first
    delta = session.stats.delta(before)
    assert delta.cache_hits >= 2 and delta.cache_misses == 0
    assert delta.rows_scanned == 0  # served entirely from the answer cache


def test_update_maintains_touched_queries_in_place(materialized):
    session = QuerySession(materialized)
    touched = "?(P) :- PatientUnit(U, D, P)."
    untouched = "?(W) :- UnitWard(U, W)."
    session.answers(touched)
    session.answers(untouched)
    before = session.stats.snapshot()
    materialized.add_facts([("PatientWard", ("W1", "Sep/8", "Patti"))])
    # The touched query's cached answers were moved by the update's delta
    # (no re-join); the untouched one was left alone entirely.
    assert session.stats.delta(before).answers_maintained == 1
    before = session.stats.snapshot()
    assert ("Patti",) in session.answers(touched)
    assert session.answers(untouched) == (("W1",), ("W2",))
    delta = session.stats.delta(before)
    assert delta.cache_misses == 0  # both served from maintained entries
    assert delta.cache_hits >= 2
    assert delta.rows_scanned == 0  # no join work at read time


def test_update_invalidates_touched_queries_without_maintenance(materialized):
    session = QuerySession(materialized, maintain_answers=False)
    touched = "?(P) :- PatientUnit(U, D, P)."
    untouched = "?(W) :- UnitWard(U, W)."
    session.answers(touched)
    session.answers(untouched)
    materialized.add_facts([("PatientWard", ("W1", "Sep/8", "Patti"))])
    before = session.stats.snapshot()
    assert ("Patti",) in session.answers(touched)
    assert session.answers(untouched) == (("W1",), ("W2",))
    delta = session.stats.delta(before)
    assert delta.cache_misses > 0   # the touched query was re-evaluated
    assert delta.cache_hits > 0     # the untouched one came from cache


def test_empty_delta_update_keeps_answer_cache(materialized):
    """An incremental update whose delta is empty (the inserted fact already
    existed as a derived fact) must not invalidate cached answers —
    regression for predicate-touch invalidation on no-op updates."""
    session = QuerySession(materialized)
    query = "?(P) :- PatientUnit('Standard', D, P)."
    first = session.answers(query)
    update = materialized.add_facts(
        [("PatientUnit", ("Standard", "Sep/5", "Tom"))])
    assert update.is_incremental
    assert update.applied  # the EDB did change...
    assert update.changed_predicates == set()  # ...the materialization didn't
    before = session.stats.snapshot()
    assert session.answers(query) == first
    delta = session.stats.delta(before)
    assert delta.cache_hits >= 1 and delta.cache_misses == 0
    assert delta.rows_scanned == 0  # served from the untouched answer cache


def test_answer_many_reports_batch_stats(materialized):
    session = QuerySession(materialized)
    batch = session.answer_many(["?(P) :- Standardized(P).",
                                 "?(W) :- UnitWard('Standard', W)."])
    assert batch.answers == [(("Tom",),), (("W1",),)]
    assert len(batch) == 2
    assert batch.stats.cache_misses > 0
    repeat = session.answer_many(["?(P) :- Standardized(P)."])
    assert repeat.stats.cache_misses == 0 and repeat.stats.cache_hits > 0


def test_default_query_session_is_shared(materialized):
    assert materialized.queries() is materialized.queries()
    assert materialized.certain_answers("?(P) :- Standardized(P).") == (("Tom",),)
    assert materialized.holds("? :- PatientUnit('Standard', D, 'Tom').")
    assert not materialized.holds("? :- PatientUnit('Standard', D, 'Lou').")


def test_ws_answers_agree_and_cache_solver(materialized):
    session = QuerySession(materialized)
    query = "?(P) :- PatientUnit('Standard', D, P)."
    assert session.ws_answers(query) == session.answers(query)
    before = session.stats.snapshot()
    session.ws_answers(query)
    assert session.stats.delta(before).cache_hits >= 1
    materialized.add_facts([("PatientWard", ("W1", "Sep/9", "Nico"))])
    assert ("Nico",) in session.ws_answers(query)


# -- hospital scenario routing ------------------------------------------------


def test_scenario_session_reproduces_table2_and_updates():
    scenario = HospitalScenario()
    expected = {tuple(row) for row in scenario.expected_quality_measurements()}
    assert {tuple(row) for row in scenario.quality_measurements()} == expected
    assert scenario.quality_answers_to_doctor_query() == \
        scenario.expected_doctor_answers()

    baseline = scenario.assess()
    update = scenario.record_measurements([("Sep/5-12:10", "Lou Reed", 37.0)])
    assert update.strategy == "incremental"
    after = scenario.assess()
    assert after.relations["Measurements"].total_tuples == \
        baseline.relations["Measurements"].total_tuples + 1
    removed = scenario.remove_measurements([("Sep/5-12:10", "Lou Reed", 37.0)])
    assert removed.applied
    assert str(scenario.assess()) == str(baseline)
    # the scenario's own copy of the instance stays in sync
    assert len(scenario.measurements.relation("Measurements")) == \
        baseline.relations["Measurements"].total_tuples


def test_scenario_session_survives_save_and_restore(tmp_path):
    """The hospital feed resumes after a restart: snapshot, restore in a
    fresh scenario, keep recording measurements incrementally."""
    scenario = HospitalScenario()
    baseline = str(scenario.assess())
    path = tmp_path / "hospital.snapshot"
    scenario.save_session(path)

    fresh = HospitalScenario()
    restored = fresh.restore_session(path)
    assert str(fresh.assess()) == baseline
    assert {tuple(row) for row in fresh.quality_measurements()} == \
        {tuple(row) for row in fresh.expected_quality_measurements()}
    update = fresh.record_measurements([("Sep/5-12:10", "Lou Reed", 37.0)])
    assert update.strategy == "incremental"
    assert restored.materialized.stats.full_rechases == 0
    assert len(fresh.measurements.relation("Measurements")) == \
        len(scenario.measurements.relation("Measurements")) + 1
