"""Tests for dimension schemas (category DAGs)."""

import pytest

from repro.errors import DimensionSchemaError
from repro.md.schema import DimensionSchema


@pytest.fixture()
def hospital_schema():
    return DimensionSchema(
        "Hospital",
        categories=["Ward", "Unit", "Institution", "AllHospital"],
        child_parent_edges=[("Ward", "Unit"), ("Unit", "Institution"),
                            ("Institution", "AllHospital")],
    )


@pytest.fixture()
def branching_schema():
    """A non-linear hierarchy: Day rolls up to both Week and Month."""
    return DimensionSchema(
        "Time",
        child_parent_edges=[("Day", "Week"), ("Day", "Month"),
                            ("Week", "Year"), ("Month", "Year")],
    )


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(DimensionSchemaError):
            DimensionSchema("")

    def test_self_loop_rejected(self):
        with pytest.raises(DimensionSchemaError):
            DimensionSchema("D", child_parent_edges=[("A", "A")])

    def test_cycle_rejected(self):
        schema = DimensionSchema("D", child_parent_edges=[("A", "B"), ("B", "C")])
        with pytest.raises(DimensionSchemaError):
            schema.add_edge("C", "A")

    def test_edges_register_categories(self):
        schema = DimensionSchema("D", child_parent_edges=[("A", "B")])
        assert "A" in schema and "B" in schema

    def test_add_category_idempotent(self, hospital_schema):
        hospital_schema.add_category("Ward")
        assert hospital_schema.categories.count("Ward") == 1


class TestStructure:
    def test_parents_and_children(self, hospital_schema):
        assert hospital_schema.parents("Ward") == {"Unit"}
        assert hospital_schema.children("Unit") == {"Ward"}
        assert hospital_schema.parents("AllHospital") == set()

    def test_unknown_category(self, hospital_schema):
        with pytest.raises(DimensionSchemaError):
            hospital_schema.parents("Missing")

    def test_ancestors_and_descendants(self, hospital_schema):
        assert hospital_schema.ancestors("Ward") == {"Unit", "Institution", "AllHospital"}
        assert hospital_schema.descendants("Institution") == {"Unit", "Ward"}

    def test_is_above(self, hospital_schema):
        assert hospital_schema.is_above("Unit", "Ward")
        assert not hospital_schema.is_above("Ward", "Unit")
        assert not hospital_schema.is_above("Ward", "Ward")

    def test_comparable(self, branching_schema):
        assert branching_schema.comparable("Day", "Year")
        assert not branching_schema.comparable("Week", "Month")

    def test_bottom_and_top(self, hospital_schema, branching_schema):
        assert hospital_schema.bottom_categories() == {"Ward"}
        assert hospital_schema.top_categories() == {"AllHospital"}
        assert branching_schema.bottom_categories() == {"Day"}
        assert branching_schema.top_categories() == {"Year"}

    def test_levels_and_height(self, hospital_schema):
        assert hospital_schema.level_of("Ward") == 0
        assert hospital_schema.level_of("AllHospital") == 3
        assert hospital_schema.height() == 3

    def test_paths_between(self, branching_schema):
        paths = branching_schema.paths_between("Day", "Year")
        assert ("Day", "Week", "Year") in paths
        assert ("Day", "Month", "Year") in paths
        assert branching_schema.paths_between("Day", "Day") == [("Day",)]

    def test_topological_order(self, hospital_schema):
        order = hospital_schema.topological_order()
        assert order.index("Ward") < order.index("Unit") < order.index("AllHospital")

    def test_validate(self, hospital_schema):
        hospital_schema.validate()  # should not raise

    def test_equality(self):
        first = DimensionSchema("D", child_parent_edges=[("A", "B")])
        second = DimensionSchema("D", child_parent_edges=[("A", "B")])
        assert first == second
