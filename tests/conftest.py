"""Shared fixtures for the test-suite.

The expensive objects (the hospital scenario, chased ontologies, generated
workloads) are session-scoped: the tests only read from them.  Tests that
need to mutate build their own instances.
"""

from __future__ import annotations

import pytest

from repro.datalog import parse_program
from repro.hospital import HospitalScenario, build_md_instance, build_ontology
from repro.workloads import WorkloadSpec, generate_workload


@pytest.fixture(scope="session")
def hospital_scenario() -> HospitalScenario:
    """The paper's running example with rules (7)-(9) and constraint (6)."""
    return HospitalScenario()


@pytest.fixture(scope="session")
def hospital_ontology(hospital_scenario):
    """The hospital MD ontology (shared, read-only)."""
    return hospital_scenario.ontology


@pytest.fixture(scope="session")
def hospital_md(hospital_scenario):
    """The hospital multidimensional instance (shared, read-only)."""
    return hospital_scenario.md


@pytest.fixture()
def fresh_hospital_md():
    """A fresh hospital MD instance for tests that mutate it."""
    return build_md_instance()


@pytest.fixture()
def fresh_hospital_ontology():
    """A fresh hospital ontology for tests that add rules/constraints."""
    return build_ontology()


@pytest.fixture(scope="session")
def small_program():
    """A small Datalog± program exercising upward and downward navigation."""
    return parse_program("""
        PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
        exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).
        UnitWard('Standard', 'W1').
        UnitWard('Standard', 'W2').
        UnitWard('Intensive', 'W3').
        PatientWard('W1', 'Sep/5', 'Tom Waits').
        PatientWard('W3', 'Sep/6', 'Lou Reed').
        WorkingSchedules('Standard', 'Sep/9', 'Mark', 'non-c.').
    """)


@pytest.fixture(scope="session")
def tiny_workload():
    """A small synthetic workload for integration tests."""
    spec = WorkloadSpec(dimensions=2, depth=3, fanout=2, top_members=2,
                        base_relations=1, tuples_per_relation=20,
                        assessment_tuples=30, upward_rules=True,
                        downward_rules=True, seed=7)
    return generate_workload(spec)
