"""Tests for dimensional rules (forms (4)/(10)) and dimensional constraints."""

import pytest

from repro.errors import DimensionalConstraintError, DimensionalRuleError
from repro.datalog.parser import parse_rule
from repro.ontology.compiler import OntologyCompiler
from repro.ontology.rules import (DOWNWARD, FORM_4, FORM_10, UPWARD, DimensionalConstraint,
                                  DimensionalRule, referential_constraint)


@pytest.fixture(scope="module")
def hospital_vocab():
    from repro.hospital import build_md_instance
    md = build_md_instance()
    compiler = OntologyCompiler()
    return md, compiler.build_vocabulary(md)


def make_rule(text, hospital_vocab, label=""):
    md, vocabulary = hospital_vocab
    schemas = {name: dim.schema for name, dim in md.dimensions.items()}
    return DimensionalRule(parse_rule(text), vocabulary, dimension_schemas=schemas,
                           label=label)


class TestForm4:
    def test_rule_7_is_form_4_upward(self, hospital_vocab):
        rule = make_rule(
            "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).", hospital_vocab)
        assert rule.form == FORM_4
        assert rule.direction == UPWARD
        assert rule.is_upward()
        assert rule.dimensions() == {"Hospital", "Time"}

    def test_rule_8_is_form_4_downward(self, hospital_vocab):
        rule = make_rule(
            "exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).",
            hospital_vocab)
        assert rule.form == FORM_4
        assert rule.direction == DOWNWARD
        assert rule.is_downward()

    def test_non_ontology_predicate_rejected(self, hospital_vocab):
        with pytest.raises(DimensionalRuleError):
            make_rule("PatientUnit(U, D, P) :- Bogus(U, D, P).", hospital_vocab)

    def test_head_must_be_categorical(self, hospital_vocab):
        with pytest.raises(DimensionalRuleError):
            make_rule("Unit(U) :- PatientUnit(U, D, P).", hospital_vocab)

    def test_join_on_non_categorical_position_rejected(self, hospital_vocab):
        # Joining on the Patient (non-categorical) attribute violates form (4).
        with pytest.raises(DimensionalRuleError):
            make_rule(
                "PatientUnit(U, D, P) :- PatientWard(W, D, P), PatientUnit(U, D2, P).",
                hospital_vocab)

    def test_rule_without_navigation_join(self, hospital_vocab):
        rule = make_rule("PatientUnit(U, D, P) :- WorkingSchedules(U, D, P, T).",
                         hospital_vocab)
        assert rule.direction == "none"


class TestForm10:
    def test_rule_9_is_form_10_downward(self, hospital_vocab):
        rule = make_rule(
            "exists U : InstitutionUnit(I, U), PatientUnit(U, D, P) :- "
            "DischargePatients(I, D, P).", hospital_vocab)
        assert rule.form == FORM_10
        assert rule.direction == DOWNWARD

    def test_form_10_body_must_be_categorical_only(self, hospital_vocab):
        with pytest.raises(DimensionalRuleError):
            make_rule(
                "exists U : InstitutionUnit(I, U), PatientUnit(U, D, P) :- "
                "DischargePatients(I, D, P), UnitWard(U2, W).", hospital_vocab)

    def test_form_10_level_check(self, hospital_vocab):
        # Generating data at the *Institution* level from ward-level data
        # violates the "body at same or higher level" condition of form (10).
        with pytest.raises(DimensionalRuleError):
            make_rule(
                "exists I : DischargePatients(I, D, P) :- PatientWard(W, D, P).",
                hospital_vocab)

    def test_two_categorical_head_atoms_rejected(self, hospital_vocab):
        with pytest.raises(DimensionalRuleError):
            make_rule(
                "PatientUnit(U, D, P), PatientWard(W, D, P) :- DischargePatients(I, D, P), "
                "UnitWard(U, W).", hospital_vocab)


class TestDimensionalConstraint:
    def test_egd_constraint(self, hospital_vocab):
        md, vocabulary = hospital_vocab
        constraint = DimensionalConstraint(parse_rule(
            "T = T2 :- Thermometer(W, T, N), Thermometer(W2, T2, N2), "
            "UnitWard(U, W), UnitWard(U, W2)."), vocabulary)
        assert constraint.kind == "egd"
        assert constraint.is_intra_dimensional()

    def test_denial_constraint_inter_dimensional(self, hospital_vocab):
        md, vocabulary = hospital_vocab
        constraint = DimensionalConstraint(parse_rule(
            "false :- PatientWard(W, D, P), UnitWard('Intensive', W), MonthDay('2005-09', D)."),
            vocabulary)
        assert constraint.kind == "denial"
        assert constraint.is_inter_dimensional()
        assert constraint.dimensions() == {"Hospital", "Time"}

    def test_tgd_rejected_as_constraint(self, hospital_vocab):
        md, vocabulary = hospital_vocab
        with pytest.raises(DimensionalConstraintError):
            DimensionalConstraint(parse_rule("PatientUnit(U, D, P) :- PatientWard(W, D, P), "
                                             "UnitWard(U, W)."), vocabulary)

    def test_unknown_predicate_rejected(self, hospital_vocab):
        md, vocabulary = hospital_vocab
        with pytest.raises(DimensionalConstraintError):
            DimensionalConstraint(parse_rule("false :- Bogus(X)."), vocabulary)


class TestReferentialConstraint:
    def test_shape_of_generated_constraint(self):
        constraint = referential_constraint("PatientUnit", 0, 3, "Unit")
        assert len(constraint.positive_atoms()) == 1
        assert len(constraint.negative_atoms()) == 1
        negated = constraint.negative_atoms()[0]
        assert negated.predicate == "Unit"
        # the negated category atom shares the first variable of the relation atom
        assert negated.terms[0] == constraint.positive_atoms()[0].terms[0]
