"""Tests for the MDOntology facade."""

import pytest

from repro.errors import OntologyError, RewritingError
from repro.hospital import build_md_instance, build_ontology, build_upward_only_ontology
from repro.ontology.mdontology import MDOntology
from repro.relational.values import Null


class TestConstruction:
    def test_vocabulary_and_fact_count(self, hospital_ontology):
        assert hospital_ontology.vocabulary.is_categorical("PatientWard")
        assert hospital_ontology.extensional_fact_count() > 40

    def test_add_rule_from_text_and_object(self, fresh_hospital_ontology):
        rule = fresh_hospital_ontology.add_rule(
            "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).", label="again")
        assert rule.label == "again"

    def test_add_rule_rejects_constraints(self, fresh_hospital_ontology):
        with pytest.raises(OntologyError):
            fresh_hospital_ontology.add_rule("false :- PatientWard(W, D, P).")

    def test_add_constraint_rejects_tgds(self, fresh_hospital_ontology):
        with pytest.raises(OntologyError):
            fresh_hospital_ontology.add_constraint(
                "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).")

    def test_program_contains_rules_and_referential_constraints(self, hospital_ontology):
        program = hospital_ontology.program()
        assert len(program.tgds) == 3            # rules (7), (8), (9)
        assert len(program.egds) == 1            # constraint (6)
        assert len(program.constraints) >= 10    # form-(1) referential constraints

    def test_program_is_cached_until_invalidated(self, fresh_hospital_ontology):
        first = fresh_hospital_ontology.program()
        assert fresh_hospital_ontology.program() is first
        fresh_hospital_ontology.add_rule(
            "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).")
        assert fresh_hospital_ontology.program() is not first


class TestReasoning:
    def test_certain_answers_upward(self, hospital_ontology):
        answers = hospital_ontology.certain_answers(
            "?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').")
        assert answers == (("Standard",),)

    def test_certain_answers_downward(self, hospital_ontology):
        assert hospital_ontology.certain_answers(
            "?(D) :- Shifts('W2', D, 'Mark', S).") == (("Sep/9",),)

    def test_answers_with_nulls_exposes_unknown_shift(self, hospital_ontology):
        rows = hospital_ontology.answers_with_nulls(
            "?(S) :- Shifts('W2', D, 'Mark', S).")
        assert len(rows) == 1 and isinstance(rows[0][0], Null)

    def test_holds(self, hospital_ontology):
        assert hospital_ontology.holds("? :- PatientUnit('Intensive', 'Sep/6', 'Lou Reed').")
        assert not hospital_ontology.holds("? :- PatientUnit('Terminal', 'Sep/6', 'Lou Reed').")

    def test_ws_answers_agree_with_chase(self, hospital_ontology):
        query = "?(U) :- PatientUnit(U, 'Sep/6', 'Tom Waits')."
        assert hospital_ontology.ws_answers(query) == hospital_ontology.certain_answers(query)

    def test_ws_holds(self, hospital_ontology):
        assert hospital_ontology.ws_holds("? :- Shifts('W1', D, 'Mark', S).")

    def test_rewrite_requires_upward_only(self, hospital_ontology):
        with pytest.raises(RewritingError):
            hospital_ontology.rewrite("?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').")

    def test_rewrite_answers_on_upward_fragment(self):
        ontology = build_upward_only_ontology()
        query = "?(U, P) :- PatientUnit(U, 'Sep/5', P)."
        assert ontology.rewrite_answers(query) == ontology.certain_answers(query)
        assert len(ontology.rewrite(query)) >= 2


class TestConsistency:
    def test_consistent_without_closure_constraints(self, hospital_ontology):
        assert hospital_ontology.is_consistent()

    def test_closure_constraint_violation_detected(self):
        ontology = build_ontology(include_closure_constraints=True)
        result = ontology.check_consistency()
        assert not result.is_consistent
        witnesses = [violation.witness for violation in result.violations]
        assert any(w.get("W") == "W3" for w in witnesses)

    def test_referential_violation_detected(self):
        md = build_md_instance()
        md.database.add("PatientWard", ("W99", "Sep/5", "Ghost"))
        ontology = MDOntology(md)
        result = ontology.check_consistency()
        assert not result.is_consistent

    def test_rule_9_nulls_do_not_violate_referential_constraints(self, hospital_ontology):
        # Rule (9) invents a null Unit member; under cautious semantics the
        # referential constraint on PatientUnit.Unit must not fire for it.
        result = hospital_ontology.check_consistency()
        assert result.is_consistent
