"""The open-loop traffic harness (:mod:`repro.workloads.driver`).

Covers the compiler (deterministic byte-identical schedules, mix
adherence, retract-pool degradation, spec validation), the runner's
coordinated-omission accounting (a too-slow target surfaces *debt*, never
skipped ops), and the abort path (a daemon stopped mid-run yields a clean
``aborted`` report with every worker thread joined).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.scenarios import build_scenario
from repro.serving import ServingClient
from repro.serving.daemon import ServingDaemon
from repro.workloads.driver import (OP_CLASSES, ScenarioBinding,
    SessionTarget, ClientTarget, TrafficSpec, compile_schedule, run_schedule)


def _binding(rows: int = 8) -> ScenarioBinding:
    return ScenarioBinding(
        relation="R",
        queries=("?(X) :- R(X, Y).", "?(Y) :- R('k0', Y)."),
        quality_queries=("?(X) :- R_q(X, Y).",),
        initial_rows=tuple((f"k{i}", i) for i in range(rows)),
        fresh_row=lambda rng, index: (f"n{index}", rng.randrange(1000)))


# -- the compiler ------------------------------------------------------------


def test_same_seed_compiles_byte_identical_schedules():
    spec = TrafficSpec(qps=500, duration=2.0, seed=11)
    first = compile_schedule(spec, _binding())
    second = compile_schedule(spec, _binding())
    assert first.encode() == second.encode()
    shifted = compile_schedule(
        TrafficSpec(qps=500, duration=2.0, seed=12), _binding())
    assert shifted.encode() != first.encode()


def test_scenario_binding_is_reproducible_across_builds():
    """Two independently built scenarios bind to byte-identical traffic."""
    spec = TrafficSpec(qps=200, duration=1.0, seed=3)
    first = compile_schedule(spec, build_scenario("sensornet").binding())
    second = compile_schedule(spec, build_scenario("sensornet").binding())
    assert first.encode() == second.encode()


def test_mix_fractions_hold_over_a_long_schedule():
    spec = TrafficSpec(qps=1000, duration=10.0, seed=5)
    schedule = compile_schedule(spec, _binding())
    counts = schedule.class_counts()
    total = sum(counts.values())
    assert total == 10000
    for op, fraction in spec.normalized_mix().items():
        observed = counts.get(op, 0) / total
        # Retract ops may degrade to queries against an empty pool, and
        # the draws are random: 0.02 is > 3 sigma at n=10000.
        assert abs(observed - fraction) < 0.02, (op, observed, fraction)


def test_arrivals_are_open_loop_timestamps():
    spec = TrafficSpec(qps=100, duration=0.5, seed=0)
    schedule = compile_schedule(spec, _binding())
    assert [op.at for op in schedule.ops] == \
        [index / 100 for index in range(50)]


def test_empty_pool_retracts_degrade_to_queries():
    spec = TrafficSpec(mix={"retract": 0.7, "query": 0.3},
                       qps=100, duration=1.0, seed=2)
    schedule = compile_schedule(spec, _binding(rows=0))
    counts = schedule.class_counts()
    assert counts.get("retract", 0) == 0
    assert counts["query"] == len(schedule.ops)


def test_retract_pool_replays_added_rows():
    """Retract payloads only ever name initial rows or rows an earlier
    add op introduced — the run-time replay can never miss."""
    spec = TrafficSpec(mix={"add": 0.4, "retract": 0.6},
                       qps=200, duration=1.0, seed=9)
    schedule = compile_schedule(spec, _binding(rows=2))
    live = {tuple(row) for row in _binding(rows=2).initial_rows}
    for op in schedule.ops:
        if op.op == "add":
            live.update(tuple(row) for row in op.payload[1])
        elif op.op == "retract":
            for row in op.payload[1]:
                assert tuple(row) in live, (op.index, row)
                live.discard(tuple(row))


@pytest.mark.parametrize("mix", [
    {"query": 0.5, "scan": 0.5},        # unknown class
    {"query": -0.5, "holds": 1.5},      # negative fraction
    {"query": 0.0},                     # zero-sum
])
def test_invalid_mixes_are_rejected(mix):
    with pytest.raises(ValueError):
        TrafficSpec(mix=mix).normalized_mix()


def test_invalid_spec_and_binding_are_rejected():
    with pytest.raises(ValueError):
        compile_schedule(TrafficSpec(qps=0), _binding())
    with pytest.raises(ValueError):
        compile_schedule(TrafficSpec(duration=-1), _binding())
    empty = ScenarioBinding(relation="R", queries=(), quality_queries=(),
                            initial_rows=(), fresh_row=lambda rng, i: (i,))
    with pytest.raises(ValueError):
        compile_schedule(TrafficSpec(), empty)


def test_mix_normalization_drops_zero_classes():
    mix = TrafficSpec(mix={"query": 3.0, "add": 1.0,
                           "holds": 0.0}).normalized_mix()
    assert mix == {"query": 0.75, "add": 0.25}
    assert set(TrafficSpec().normalized_mix()) == set(OP_CLASSES)


# -- coordinated-omission accounting -----------------------------------------


class _SlowTarget:
    """Every op takes ``delay`` seconds — slower than the arrival rate."""

    def __init__(self, delay: float):
        self.delay = delay
        self.executed = 0
        self._lock = threading.Lock()

    def make_worker(self):
        def execute(op):
            time.sleep(self.delay)
            with self._lock:
                self.executed += 1
        return execute

    def close(self):
        pass


def test_unattainable_rate_surfaces_debt_not_skips():
    """Offered 200 QPS, service time 4x the arrival interval, one worker:
    the run must execute *every* op and report the lag as debt."""
    spec = TrafficSpec(mix={"query": 1.0}, qps=200, duration=0.25, seed=1)
    schedule = compile_schedule(spec, _binding())
    target = _SlowTarget(delay=0.02)
    report = run_schedule(schedule, target, workers=1)
    assert not report.aborted
    assert report.executed == report.scheduled == len(schedule.ops)
    assert target.executed == len(schedule.ops)
    assert report.cancelled == 0
    assert report.debt_seconds > 0
    stats = report.classes["query"]
    assert stats["late_ops"] > 0
    assert stats["max_debt_ms"] > 0
    # Corrected latency includes queueing, so it dominates service time.
    assert stats["p99_ms"] >= stats["service_p99_ms"]
    assert report.achieved_qps < spec.qps


def test_in_process_session_run_is_clean():
    scenario = build_scenario("sensornet")
    spec = TrafficSpec(qps=200, duration=0.5, seed=4)
    schedule = compile_schedule(spec, scenario.binding())
    report = run_schedule(
        schedule, SessionTarget(scenario.session(), scenario.assessed_relation),
        workers=2)
    assert not report.aborted
    assert report.errors == {}
    assert report.ok == report.executed == report.scheduled
    assert sum(stats["count"] for stats in report.classes.values()) == \
        report.scheduled
    assert report.as_dict()["classes"] == report.classes


# -- abort on daemon shutdown ------------------------------------------------


def test_daemon_stopped_mid_run_aborts_cleanly(tmp_path):
    scenario = build_scenario("sensornet")
    daemon = ServingDaemon(scenario.serving_backend(), tmp_path / "serve",
                           sync=False)
    daemon.recover()
    host, port = daemon.start()

    spec = TrafficSpec(qps=100, duration=3.0, seed=6)
    schedule = compile_schedule(spec, scenario.binding())
    target = ClientTarget(
        lambda **kw: ServingClient(host, port, **kw),
        relation=scenario.assessed_relation)

    stopper = threading.Timer(0.4, daemon.stop)
    stopper.start()
    try:
        report = run_schedule(schedule, target, workers=2)
    finally:
        stopper.join()
        daemon.stop()

    assert report.aborted
    assert report.abort_error in ("DaemonShutdownError",
                                  "DaemonUnavailableError")
    assert report.cancelled > 0
    assert report.executed + report.cancelled == report.scheduled
    # No stranded worker threads: the runner joins everything it spawned.
    assert not [thread for thread in threading.enumerate()
                if thread.name.startswith("driver-worker-")]
