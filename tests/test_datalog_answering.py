"""Tests for chase-based certain-answer query answering."""


from repro.datalog import parse_program, parse_query
from repro.datalog.answering import (certain_answers, certainly_holds, evaluate_boolean_query,
                                     evaluate_query)
from repro.datalog.chase import chase


class TestEvaluateQuery:
    def test_certain_answers_exclude_nulls(self, small_program):
        result = chase(small_program)
        query = parse_query("?(W, D, N, S) :- Shifts(W, D, N, S).")
        certain = evaluate_query(query, result.instance, allow_nulls=False)
        assert certain == ()  # every Shifts tuple carries a null shift
        with_nulls = evaluate_query(query, result.instance, allow_nulls=True)
        assert len(with_nulls) == 2

    def test_projection_away_from_nulls_is_certain(self, small_program):
        result = chase(small_program)
        query = parse_query("?(D) :- Shifts('W2', D, 'Mark', S).")
        assert evaluate_query(query, result.instance) == (("Sep/9",),)

    def test_comparisons_filter_answers(self, small_program):
        result = chase(small_program)
        query = parse_query("?(P) :- PatientWard(W, D, P), D > 'Sep/5'.")
        assert evaluate_query(query, result.instance) == (("Lou Reed",),)

    def test_boolean_evaluation(self, small_program):
        result = chase(small_program)
        assert evaluate_boolean_query(parse_query("? :- PatientUnit('Standard', D, P)."),
                                      result.instance)
        assert not evaluate_boolean_query(parse_query("? :- PatientUnit('Terminal', D, P)."),
                                          result.instance)


class TestCertainAnswers:
    def test_upward_navigation_answer(self, small_program):
        query = parse_query("?(U, P) :- PatientUnit(U, 'Sep/5', P).")
        assert certain_answers(small_program, query) == (("Standard", "Tom Waits"),)

    def test_downward_navigation_answer(self, small_program):
        query = parse_query("?(D) :- Shifts('W1', D, 'Mark', S).")
        assert certain_answers(small_program, query) == (("Sep/9",),)

    def test_boolean_certainty(self, small_program):
        assert certainly_holds(small_program, parse_query("? :- Shifts('W2', D, 'Mark', S)."))
        assert not certainly_holds(small_program,
                                   parse_query("? :- Shifts('W3', D, 'Mark', S)."))

    def test_chase_result_can_be_reused(self, small_program):
        shared = chase(small_program, check_constraints=False)
        first = certain_answers(small_program, parse_query("?(D) :- Shifts('W1', D, 'Mark', S)."),
                                chase_result=shared)
        second = certain_answers(small_program, parse_query("?(D) :- Shifts('W2', D, 'Mark', S)."),
                                 chase_result=shared)
        assert first == second == (("Sep/9",),)

    def test_answers_over_extensional_predicates_only(self):
        program = parse_program("""
            Edge(a, b). Edge(b, c).
        """)
        query = parse_query("?(X, Y) :- Edge(X, Y).")
        assert certain_answers(program, query) == (("a", "b"), ("b", "c"))

    def test_constants_in_query_restrict_answers(self, small_program):
        query = parse_query("?(P) :- PatientUnit('Intensive', 'Sep/6', P).")
        assert certain_answers(small_program, query) == (("Lou Reed",),)
