"""Tests for labeled nulls and the value helpers."""


from repro.relational.values import (Null, NullFactory, ground_values, is_ground, is_null,
                                     value_sort_key)


class TestNull:
    def test_equality_by_label(self):
        assert Null("n1") == Null("n1")
        assert Null("n1") != Null("n2")

    def test_hashable(self):
        assert len({Null("a"), Null("a"), Null("b")}) == 2

    def test_ordering_by_label(self):
        assert Null("a") < Null("b")

    def test_str_uses_bottom_symbol(self):
        assert "n7" in str(Null("n7"))

    def test_null_is_not_equal_to_its_label(self):
        assert Null("x") != "x"


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        nulls = [factory.fresh() for _ in range(10)]
        assert len(set(nulls)) == 10

    def test_prefix_is_used(self):
        factory = NullFactory(prefix="z")
        assert factory.fresh().label.startswith("z")

    def test_two_factories_are_independent_but_deterministic(self):
        first = NullFactory()
        second = NullFactory()
        assert first.fresh() == second.fresh()

    def test_fresh_many_count(self):
        factory = NullFactory()
        assert len(factory.fresh_many(5)) == 5


class TestPredicates:
    def test_is_null(self):
        assert is_null(Null("n1"))
        assert not is_null("n1")

    def test_is_ground(self):
        assert is_ground("abc")
        assert is_ground(42)
        assert not is_ground(Null("n1"))

    def test_ground_values_filters_nulls(self):
        values = ["a", Null("n1"), 3, Null("n2")]
        assert list(ground_values(values)) == ["a", 3]


class TestValueSortKey:
    def test_total_order_over_mixed_types(self):
        values = [3, "b", Null("n1"), 1.5, "a", Null("n0")]
        ordered = sorted(values, key=value_sort_key)
        # numbers first, then strings, then nulls
        assert ordered[:2] == [1.5, 3]
        assert ordered[2:4] == ["a", "b"]
        assert ordered[4:] == [Null("n0"), Null("n1")]

    def test_sorting_is_stable_and_deterministic(self):
        values = ["x", 2, Null("q")]
        assert sorted(values, key=value_sort_key) == sorted(values, key=value_sort_key)
