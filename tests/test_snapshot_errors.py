"""Corruption and compatibility tests for the snapshot format.

Every way a snapshot file can be wrong — truncated, bit-flipped, written
by a different format version, or taken against a different ontology /
EDB — must surface as a typed :class:`~repro.errors.SnapshotError`
subclass with an actionable message: never a raw JSON traceback, and never
a silently empty or stale instance.
"""

from __future__ import annotations

import json

import pytest

from repro.datalog import parse_program
from repro.engine.session import MaterializedProgram
from repro.errors import (SnapshotError, SnapshotFormatError,
                          SnapshotIntegrityError, SnapshotMismatchError)

PROGRAM_TEXT = """
    PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
    exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).
    UnitWard('Standard', 'W1').
    PatientWard('W1', 'Sep/5', 'Tom').
    WorkingSchedules('Standard', 'Sep/9', 'Mark', 'non-c.').
"""


@pytest.fixture
def saved(tmp_path):
    materialized = MaterializedProgram(parse_program(PROGRAM_TEXT))
    path = tmp_path / "session.snapshot"
    materialized.save(path)
    return materialized, path


def test_truncated_file_raises_integrity_error(saved):
    _, path = saved
    text = path.read_text(encoding="utf-8")
    path.write_text(text[: len(text) // 2], encoding="utf-8")
    with pytest.raises(SnapshotIntegrityError, match="truncated or corrupted"):
        MaterializedProgram.load(path)


def test_flipped_format_version_raises_format_error(saved):
    _, path = saved
    header_text, payload_text = path.read_text(encoding="utf-8").split("\n", 1)
    header = json.loads(header_text)
    header["format_version"] = header["format_version"] + 1
    path.write_text(json.dumps(header) + "\n" + payload_text,
                    encoding="utf-8")
    with pytest.raises(SnapshotFormatError, match="format version"):
        MaterializedProgram.load(path)


def test_bit_flip_in_payload_raises_checksum_error(saved):
    _, path = saved
    header_text, payload_text = path.read_text(encoding="utf-8").split("\n", 1)
    flipped = payload_text.replace("Tom", "Tim", 1)  # valid JSON, wrong bytes
    assert flipped != payload_text
    path.write_text(header_text + "\n" + flipped, encoding="utf-8")
    with pytest.raises(SnapshotIntegrityError, match="checksum"):
        MaterializedProgram.load(path)


def test_ontology_hash_mismatch_raises_mismatch_error(saved):
    materialized, path = saved
    changed = materialized.edb_program()
    changed.add_tgd(parse_program(
        "Flagged(P) :- PatientUnit('Standard', D, P).").tgds[0])
    with pytest.raises(SnapshotMismatchError, match="re-chase"):
        MaterializedProgram.load(path, program=changed)


def test_changed_edb_raises_mismatch_error(saved):
    materialized, path = saved
    changed = materialized.edb_program().copy()
    changed.database.add("PatientWard", ("W9", "Sep/9", "Eve"))
    with pytest.raises(SnapshotMismatchError, match="extensional data"):
        MaterializedProgram.load(path, program=changed)


def test_emptied_relation_raises_mismatch_error(saved):
    """The EDB check is two-directional: a relation the program emptied
    since the save is stale data, not a free pass."""
    materialized, path = saved
    changed = materialized.edb_program().copy()
    for row in changed.database.relation("PatientWard").rows():
        changed.database.relation("PatientWard").discard(row)
    with pytest.raises(SnapshotMismatchError, match="extensional data"):
        MaterializedProgram.load(path, program=changed)


def test_missing_file_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError, match="does not exist"):
        MaterializedProgram.load(tmp_path / "never-saved.snapshot")


def test_non_snapshot_json_raises_format_error(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
    with pytest.raises(SnapshotFormatError, match="not a repro snapshot"):
        MaterializedProgram.load(path)


def test_binary_file_raises_format_error(tmp_path):
    path = tmp_path / "model.bin"
    path.write_bytes(b"\xff\xfe\x00pickle-ish\x80\x04")
    with pytest.raises(SnapshotFormatError, match="not a repro snapshot"):
        MaterializedProgram.load(path)


def test_program_snapshot_is_not_a_quality_session(saved):
    """QualitySession.load on a MaterializedProgram snapshot (no assessment
    extra) is a typed, actionable refusal — not a KeyError."""
    from repro.hospital import HospitalScenario
    from repro.quality.session import QualitySession
    _, path = saved
    with pytest.raises(SnapshotFormatError, match="no instance under"):
        QualitySession.load(HospitalScenario().context, path)


def test_all_snapshot_failures_are_typed(saved):
    """Every snapshot failure derives from SnapshotError — one except clause
    protects a caller from all of them (and none is a bare json error)."""
    for error in (SnapshotFormatError, SnapshotIntegrityError,
                  SnapshotMismatchError):
        assert issubclass(error, SnapshotError)
    _, path = saved
    path.write_text("{not json", encoding="utf-8")
    try:
        MaterializedProgram.load(path)
    except SnapshotError as exc:
        assert "corrupted" in str(exc)
    else:  # pragma: no cover - failure path
        pytest.fail("corrupted snapshot loaded without error")


def test_failed_save_preserves_previous_snapshot(saved):
    """A save that dies while *encoding* (unserializable value discovered
    late — the daemon-checkpoint failure mode) leaves the previous good
    snapshot loadable and litters no temp files."""
    materialized, path = saved
    poison = ("W1", "Sep/7", object())
    materialized.instance.relation("PatientWard").add(poison)
    with pytest.raises(SnapshotError, match="cannot serialize"):
        materialized.save(path)
    assert not list(path.parent.glob("*.tmp"))
    materialized.instance.relation("PatientWard").discard(poison)
    restored = MaterializedProgram.load(path)  # the old file is untouched
    assert restored.instance == materialized.instance


def test_failed_write_cleans_temp_and_preserves_previous(saved, monkeypatch):
    """A save that dies while *writing* (disk full before the temp file
    reaches its final name) removes the partial temp file and leaves the
    previous snapshot in place."""
    import os as os_module
    materialized, path = saved
    original_bytes = path.read_bytes()

    def exploding_replace(*_args, **_kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os_module, "replace", exploding_replace)
    with pytest.raises(SnapshotError, match="cannot write"):
        materialized.save(path)
    monkeypatch.undo()
    assert not list(path.parent.glob("*.tmp"))
    assert path.read_bytes() == original_bytes
    MaterializedProgram.load(path)  # still perfectly loadable


def test_intact_snapshot_still_loads(saved):
    """The guard rails don't reject healthy files: sanity for this suite."""
    materialized, path = saved
    restored = MaterializedProgram.load(
        path, program=materialized.edb_program())
    assert restored.instance == materialized.instance
    assert restored.certain_answers("?(P) :- PatientUnit('Standard', D, P).") \
        == materialized.certain_answers("?(P) :- PatientUnit('Standard', D, P).")
