"""Cross-module integration tests.

These tests exercise whole pipelines (MD model → ontology → chase → quality
context → assessment) and assert cross-algorithm agreement on both the
hospital scenario and synthetic workloads.
"""


from repro.datalog import DeterministicWSQAns, certain_answers, chase, parse_query
from repro.datalog.rewriting import QueryRewriter
from repro.md.navigation import drill_down_relation, roll_up_relation
from repro.quality import assess_database, compare_answers, quality_answers
from repro.relational.values import Null
from repro.workloads import WorkloadSpec, generate_workload


class TestNavigationAgreement:
    """Procedural navigation (repro.md) vs logical navigation (the chase)."""

    def test_roll_up_matches_rule_7_chase(self, hospital_scenario):
        md = hospital_scenario.md
        rolled = roll_up_relation(md, "PatientWard", "Ward", "Unit")
        chased = hospital_scenario.ontology.chase().instance.relation("PatientUnit")
        chased_ground = {row for row in chased
                         if not any(isinstance(value, Null) for value in row)}
        assert set(rolled) == chased_ground

    def test_drill_down_matches_rule_8_chase(self, hospital_scenario):
        md = hospital_scenario.md
        drilled = drill_down_relation(md, "WorkingSchedules", "Unit", "Ward",
                                      extra_non_categorical=["Shift"])
        chased = hospital_scenario.ontology.chase().instance.relation("Shifts")
        # compare on the non-invented attributes (ward, day, nurse)
        drilled_keys = {row[:3] for row in drilled}
        chased_keys = {row[:3] for row in chased if isinstance(row[3], Null)}
        assert chased_keys <= drilled_keys


class TestAlgorithmAgreementOnSyntheticWorkloads:
    def test_three_routes_agree_on_upward_only_workload(self):
        workload = generate_workload(WorkloadSpec(
            dimensions=1, depth=3, fanout=2, top_members=2, base_relations=1,
            tuples_per_relation=25, upward_rules=True, downward_rules=False, seed=11))
        program = workload.ontology.program()
        rewriter = QueryRewriter([rule.tgd for rule in workload.ontology.rules])
        solver = DeterministicWSQAns(program)
        shared_chase = chase(program, check_constraints=False)
        for query in workload.queries:
            reference = certain_answers(program, query, chase_result=shared_chase)
            assert solver.answers(query) == reference
            assert rewriter.answers(query, program.database) == reference

    def test_chase_and_ws_agree_with_downward_rules(self, tiny_workload):
        program = tiny_workload.ontology.program()
        shared_chase = chase(program, check_constraints=False)
        solver = DeterministicWSQAns(program)
        for query in tiny_workload.queries:
            assert solver.answers(query) == \
                certain_answers(program, query, chase_result=shared_chase)


class TestQualityPipelineOnSyntheticWorkload:
    def test_assessment_ratio_tracks_dirty_fraction(self):
        clean = generate_workload(WorkloadSpec(dirty_fraction=0.0, assessment_tuples=40,
                                               seed=5))
        dirty = generate_workload(WorkloadSpec(dirty_fraction=0.8, assessment_tuples=40,
                                               seed=5))
        clean_versions = clean.context.quality_versions_for(clean.assessment_instance)
        dirty_versions = dirty.context.quality_versions_for(dirty.assessment_instance)
        clean_ratio = assess_database(clean.assessment_instance, clean_versions).quality_ratio
        dirty_ratio = assess_database(dirty.assessment_instance, dirty_versions).quality_ratio
        assert clean_ratio == 1.0
        assert dirty_ratio < clean_ratio

    def test_quality_answers_are_subset_of_direct_answers(self, tiny_workload):
        member = next(iter(tiny_workload.assessment_instance.relation("Readings")))[0]
        query = parse_query(f"?(S, V) :- Readings(E, S, V), E = '{member}'.")
        comparison = compare_answers(tiny_workload.context,
                                     tiny_workload.assessment_instance, query)
        assert set(comparison.quality) <= set(comparison.direct)

    def test_quality_answers_empty_for_dirty_member(self):
        workload = generate_workload(WorkloadSpec(dirty_fraction=1.0, assessment_tuples=30,
                                                  seed=9))
        instance = workload.assessment_instance
        versions = workload.context.quality_versions_for(instance)
        dirty_members = {row[0] for row in instance.relation("Readings")} - \
            {row[0] for row in versions["Readings"]}
        if dirty_members:
            member = sorted(dirty_members)[0]
            answers = quality_answers(workload.context, instance,
                                      f"?(S, V) :- Readings(E, S, V), E = '{member}'.")
            assert answers == ()


class TestScalingSanity:
    def test_chase_output_grows_linearly_in_base_tuples(self):
        sizes = []
        for tuples in (20, 40):
            workload = generate_workload(WorkloadSpec(
                dimensions=1, depth=3, fanout=2, base_relations=1,
                tuples_per_relation=tuples, upward_rules=True, downward_rules=False,
                seed=2))
            result = workload.ontology.chase()
            sizes.append(result.instance.total_tuples())
        assert sizes[1] > sizes[0]

    def test_chase_is_idempotent_on_its_own_output(self, hospital_ontology):
        first = hospital_ontology.chase()
        program = hospital_ontology.program().copy(database=first.instance)
        second = chase(program, check_constraints=False)
        assert second.steps == 0
        assert second.instance.total_tuples() == first.instance.total_tuples()
