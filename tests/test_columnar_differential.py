"""Differential tests: the columnar engine ≡ indexed ≡ naive.

The columnar matcher (:mod:`repro.engine.columnar`) replaces the
tuple-at-a-time backtracking joins with batch operations over interned-int
column stores, plus generated specialized join functions.  None of that is
allowed to be observable: this suite pins, over the same randomized program
families as the session/IVM differentials plus generated MD workloads,

* **chase results** — identical fact sets (ground and null-carrying, up to
  null renaming via the ground projection) across all three engines;
* **query answering** — identical certain answers *and* identical support
  counts (the counting-IVM invariant) on randomized conjunctive queries;
* **delta joins** — identical homomorphism sets and projected counts when
  pivoting randomized deltas through a :class:`DeltaJoinPlan`;
* **update streams / IVM** — a columnar-engined session absorbing a
  randomized update stream keeps answering exactly like a from-scratch
  chase, with maintenance actually running (no silent fallback);

each on **both kernel paths**: vectorized (numpy) and the pure-Python
fallback (``repro.relational.columns._np`` monkeypatched to ``None``, the
same switch the ``REPRO_NO_NUMPY`` environment variable throws at import
time).
"""

from __future__ import annotations

import random

import pytest

from repro.datalog import DatalogProgram, chase
from repro.datalog.answering import (certain_answers, evaluate_query,
                                     evaluate_query_counts)
from repro.datalog.atoms import Atom
from repro.datalog.rules import EGD, TGD
from repro.datalog.terms import Variable
from repro.engine.matching import DeltaJoinPlan, matcher_for
from repro.engine.session import MaterializedProgram, QuerySession
from repro.relational import columns as columns_module
from repro.relational.instance import DatabaseInstance
from repro.workloads import WorkloadSpec, generate_workload

from test_session_differential import (CONSTANTS, _ground_facts,
                                       _random_program, _random_queries,
                                       _random_updates)

KERNELS = ("numpy", "fallback")


@pytest.fixture(params=KERNELS)
def kernel(request, monkeypatch):
    """Run the test body under each columnar kernel path."""
    if request.param == "numpy":
        if columns_module._np is None:
            pytest.skip("numpy not available in this environment")
    else:
        monkeypatch.setattr(columns_module, "_np", None)
    return request.param


def _fact_sets(result):
    """(all facts, ground facts) of a chase result, name-keyed."""
    every = {(relation.schema.name, row)
             for relation in result.instance for row in relation}
    return every, _ground_facts(result.instance)


def _substitution_keys(homomorphisms):
    return sorted(
        tuple(sorted((variable.name, str(term))
                     for variable, term in homomorphism.items()))
        for homomorphism in homomorphisms)


# -- chase --------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("existential", (False, True))
def test_chase_columnar_equals_reference(seed, existential, kernel):
    program = _random_program(seed, existential=existential)
    reference = chase(program, engine="indexed", check_constraints=False)
    columnar = chase(program, engine="columnar", check_constraints=False)
    if existential:
        # Null labels depend on firing order; the ground projection is the
        # order-independent certain core.
        assert _ground_facts(columnar.instance) == \
            _ground_facts(reference.instance)
    else:
        assert _fact_sets(columnar) == _fact_sets(reference)
    assert columnar.stats.engine == "columnar"


def test_chase_uses_batch_path(kernel):
    program = _random_program(3, existential=False)
    result = chase(program, engine="columnar", check_constraints=False)
    assert result.stats.batch_joins > 0
    assert result.stats.rows_batch_scanned > 0


# -- existential-heavy and EGD-merge-heavy programs ---------------------------


def _existential_heavy_program(seed):
    """Null invention on almost every rule: single-existential heads (the
    batch-eligible shape), a double-existential head, a chain consuming
    invented nulls to invent more, and one multi-atom existential head —
    batch-INELIGIBLE, so the per-trigger fallback runs in the same chase."""
    rng = random.Random(seed)
    database = DatabaseInstance()
    base = database.declare("E0", ["a", "b"])
    for _ in range(rng.randint(6, 14)):
        base.add((rng.choice(CONSTANTS), rng.choice(CONSTANTS)))
    x, y, n = Variable("X"), Variable("Y"), Variable("N")
    z = [Variable(f"Z{i}") for i in range(5)]
    tgds = [
        TGD([Atom("E1", [x, z[0]])], [Atom("E0", [x, y])]),
        TGD([Atom("E2", [y, z[1], z[2]])], [Atom("E0", [x, y])]),
        TGD([Atom("E3", [n, z[3]])], [Atom("E1", [x, n])]),
        TGD([Atom("E4", [x, z[4]]), Atom("E5", [z[4], y])],
            [Atom("E0", [x, y])]),
        TGD([Atom("E6", [x, y])],
            [Atom("E1", [x, n]), Atom("E3", [n, y])]),
    ]
    return DatalogProgram(tgds=tgds, database=database)


@pytest.mark.parametrize("seed", range(6))
def test_existential_heavy_chase_equals_reference(seed, kernel):
    program = _existential_heavy_program(seed)
    results = {engine: chase(program, engine=engine, check_constraints=False)
               for engine in ("naive", "indexed", "columnar")}
    ground = {engine: _ground_facts(result.instance)
              for engine, result in results.items()}
    assert ground["columnar"] == ground["indexed"] == ground["naive"]
    stats = results["columnar"].stats
    assert stats.triggers_batched > 0
    assert stats.nulls_bulk_allocated > 0
    # the multi-atom existential head is batch-ineligible: some triggers
    # must have gone through the per-trigger fallback
    assert stats.triggers_fired > stats.triggers_batched


def _egd_merge_heavy_program(seed):
    """Invented nulls immediately constrained by functional dependencies:
    every declared key forces a null↔constant merge (keys are unique, so no
    constant↔constant conflict can arise), and ``Typed`` re-projects the
    merged values so the rewrites must propagate into derived facts."""
    rng = random.Random(seed)
    database = DatabaseInstance()
    item = database.declare("Item", ["x"])
    declared = database.declare("Declared", ["x", "t"])
    for index in range(rng.randint(5, 10)):
        key = f"k{index}"
        item.add((key,))
        if index == 0 or rng.random() < 0.7:
            declared.add((key, rng.choice(CONSTANTS)))
    x, t, t2, z = (Variable("X"), Variable("T"), Variable("T2"),
                   Variable("Z"))
    program = DatalogProgram(
        tgds=[TGD([Atom("HasType", [x, z])], [Atom("Item", [x])]),
              TGD([Atom("Typed", [t])], [Atom("HasType", [x, t])])],
        database=database)
    program.add_egd(EGD(t, t2, [Atom("HasType", [x, t]),
                                Atom("HasType", [x, t2])]))
    program.add_egd(EGD(t, t2, [Atom("HasType", [x, t]),
                                Atom("Declared", [x, t2])]))
    return program


@pytest.mark.parametrize("seed", range(6))
def test_egd_merge_heavy_chase_equals_reference(seed, kernel):
    program = _egd_merge_heavy_program(seed)
    results = {engine: chase(program, engine=engine)
               for engine in ("naive", "indexed", "columnar")}
    ground = {engine: _ground_facts(result.instance)
              for engine, result in results.items()}
    assert ground["columnar"] == ground["indexed"] == ground["naive"]
    # the seeded EDB always declares at least one key, so merges must occur,
    # and the chase must still run through the batched trigger path
    assert results["columnar"].egd_merges >= 1
    assert results["columnar"].stats.triggers_batched > 0


# -- query answering ----------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_query_counts_equal_across_engines(seed, kernel):
    program = _random_program(seed, existential=True)
    chased = chase(program, check_constraints=False)
    rng = random.Random(7000 + seed)
    for query in _random_queries(rng, program, count=5):
        counts = {
            engine: evaluate_query_counts(query, chased.instance,
                                          engine=engine)
            for engine in ("naive", "indexed", "columnar")}
        assert counts["columnar"] == counts["indexed"] == counts["naive"], \
            str(query)
        answers = {
            engine: evaluate_query(query, chased.instance, engine=engine)
            for engine in ("naive", "indexed", "columnar")}
        assert answers["columnar"] == answers["indexed"] == \
            answers["naive"], str(query)


def test_workload_queries_equal(kernel):
    """Generated MD-style workloads (the benchmark shape) agree too."""
    spec = WorkloadSpec(dimensions=1, depth=3, fanout=3, top_members=2,
                        base_relations=1, tuples_per_relation=60,
                        upward_rules=True, seed=13)
    workload = generate_workload(spec)
    program = workload.ontology.program()
    chased = chase(program, check_constraints=False)
    for query in workload.queries:
        assert evaluate_query(query, chased.instance, engine="columnar") == \
            evaluate_query(query, chased.instance, engine="indexed"), \
            str(query)


# -- delta joins --------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_delta_join_plans_equal(seed, kernel):
    program = _random_program(seed, existential=False)
    chased = chase(program, check_constraints=False)
    rng = random.Random(8000 + seed)
    for query in _random_queries(rng, program, count=4):
        plans = {
            engine: DeltaJoinPlan(matcher_for(engine), query.body,
                                  variables=query.body_variables(),
                                  comparisons=query.comparisons)
            for engine in ("indexed", "columnar")}
        # A randomized delta: live facts, plus a bogus fact that must be
        # skipped (not in the instance).
        live = [(relation.schema.name, row)
                for relation in chased.instance
                for row in relation.rows()]
        if not live:
            continue
        delta = rng.sample(live, k=min(5, len(live)))
        delta.append((delta[0][0], ("no-such", ) * len(delta[0][1])))
        homs = {engine: _substitution_keys(
                    plan.homomorphisms(chased.instance, delta))
                for engine, plan in plans.items()}
        assert homs["columnar"] == homs["indexed"], str(query)
        counts = {engine: plan.projected_counts(chased.instance, delta,
                                                query.answer_variables)
                  for engine, plan in plans.items()}
        assert counts["columnar"] == counts["indexed"], str(query)


# -- update streams and IVM ---------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_update_streams_columnar_equals_scratch(seed, kernel):
    program = _random_program(seed, existential=False)
    materialized = MaterializedProgram(program, engine="columnar")
    rng = random.Random(6000 + seed)
    for action, facts in _random_updates(rng, program, steps=5):
        if action == "add":
            materialized.add_facts(facts)
        else:
            materialized.retract_facts(facts)
        reference = chase(materialized.edb_program(),
                          check_constraints=False)
        assert _ground_facts(reference.instance) == \
            _ground_facts(materialized.instance)


@pytest.mark.parametrize("seed", range(6))
def test_ivm_maintenance_columnar_equals_scratch(seed, kernel):
    program = _random_program(seed, existential=True)
    materialized = MaterializedProgram(program, engine="columnar")
    session = QuerySession(materialized)
    rng = random.Random(9000 + seed)
    queries = _random_queries(rng, program, count=4)
    for query in queries:
        session.answers(query)  # warm the maintained entries
    for action, facts in _random_updates(rng, program, steps=5):
        if action == "add":
            materialized.add_facts(facts)
        else:
            materialized.retract_facts(facts)
        reference = chase(materialized.edb_program(),
                          check_constraints=False)
        for query in queries:
            assert session.answers(query) == \
                certain_answers(materialized.edb_program(), query,
                                chase_result=reference), str(query)
    # No EGDs anywhere: the counting maintenance must actually have run.
    assert session.stats.maintenance_fallbacks == 0


def test_columnar_counters_and_codegen_cache(kernel):
    """The batch path bills its counters; repeated shapes hit the codegen
    cache."""
    program = _random_program(2, existential=False)
    chased = chase(program, check_constraints=False)
    rng = random.Random(42)
    queries = [query for query in _random_queries(rng, program, count=4)
               if len(query.body) > 1]
    assert queries, "seeded query set unexpectedly empty"
    matcher = matcher_for("columnar")
    for query in queries:
        for _ in range(3):
            list(matcher.find_homomorphisms(query.body, chased.instance,
                                            comparisons=query.comparisons))
    assert matcher.stats.batch_joins > 0
    assert matcher.stats.rows_batch_scanned >= matcher.stats.batch_joins
    assert matcher.stats.codegen_cache_hits > 0
