"""Unit tests for the columnar storage layer and its session plumbing.

Covers the :class:`~repro.relational.values.ValueCatalog`, the
:class:`~repro.relational.columns.ColumnStore` kept in sync by
``Relation.add``/``discard``, the copy-on-write ``Relation.snapshot()``
(the MVCC-publish fix: an untouched relation shares one cached clone
instead of re-copying its pattern indexes per publication), and the query
session's support-count budget (LRU eviction of maintained answer counts,
billed to ``stats.support_evictions``).
"""

from __future__ import annotations

import random


from repro.datalog import parse_program
from repro.engine.session import MaterializedProgram, QuerySession
from repro.relational.columns import ColumnStore, index_delta_merge_count
from repro.relational.instance import DatabaseInstance
from repro.relational.values import value_catalog


# -- ValueCatalog -------------------------------------------------------------


def test_value_catalog_codes_are_stable_and_bijective():
    catalog = value_catalog()
    code_a = catalog.code("cs-test-a")
    assert catalog.code("cs-test-a") == code_a
    assert catalog.value(code_a) == "cs-test-a"
    assert catalog.try_code("cs-test-never-registered") is None
    code_null = catalog.code(__import__("repro.relational.values",
                                        fromlist=["Null"]).Null("cs_n1"))
    assert catalog.is_null_code(code_null)
    assert not catalog.is_null_code(code_a)


# -- ColumnStore sync ---------------------------------------------------------


def _relation_with_rows(rows):
    instance = DatabaseInstance()
    relation = instance.declare("R", [f"a{i}" for i in range(len(rows[0]))])
    for row in rows:
        relation.add(row)
    return relation


def test_column_store_mirrors_relation_mutations():
    relation = _relation_with_rows([("a", 1), ("b", 2), ("c", 3)])
    store = relation.column_store()
    assert len(store) == 3
    generation = store.generation
    relation.add(("d", 4))
    assert len(store) == 4
    assert store.generation > generation
    relation.discard(("b", 2))
    assert len(store) == 3
    # Swap-remove keeps columns dense and positions consistent.
    catalog = value_catalog()
    decoded = sorted(
        (catalog.value(store.column(0)[slot]), catalog.value(store.column(1)[slot]))
        for slot in range(len(store)))
    assert decoded == [("a", 1), ("c", 3), ("d", 4)]


def test_group_index_probes_and_invalidation():
    relation = _relation_with_rows([("a", 1), ("a", 2), ("b", 1)])
    store = relation.column_store()
    catalog = value_catalog()
    groups = store.group_index((0,))
    assert len(groups[catalog.code("a")]) == 2
    assert len(groups[catalog.code("b")]) == 1
    # Mutation invalidates the cached index; the rebuilt one sees the change.
    relation.add(("b", 9))
    rebuilt = store.group_index((0,))
    assert rebuilt is not groups or len(rebuilt[catalog.code("b")]) == 2
    assert len(store.group_index((0,))[catalog.code("b")]) == 2
    # Multi-position keys are code tuples.
    pair = store.group_index((0, 1))
    assert len(pair[(catalog.code("a"), catalog.code(1))]) == 1


def test_column_store_copy_is_independent():
    relation = _relation_with_rows([("a", 1), ("b", 2)])
    store = relation.column_store()
    clone = store.copy()
    relation.add(("c", 3))
    assert len(store) == 3
    assert len(clone) == 2


def test_lazy_build_from_bulk_assigned_rows():
    """Snapshot restore assigns ``_rows`` wholesale on fresh relations; the
    column store must rebuild from them on first columnar access."""
    instance = DatabaseInstance()
    relation = instance.declare("S", ["a", "b"])
    relation._rows = dict.fromkeys([("x", 1), ("y", 2)])  # decode_instance path
    store = relation.column_store()
    assert len(store) == 2


def _assert_group_index_matches_rebuild(store, positions):
    """Maintained index buckets == a from-scratch rebuild's buckets.

    Compares decoded row multisets per key (slot numbering may legitimately
    differ after swap-removes) plus total coverage: every live slot appears
    in exactly one bucket.
    """
    maintained = store.group_index(positions)
    reference = ColumnStore.build(store.arity, list(store._rows))
    rebuilt = reference.group_index(positions)
    catalog = value_catalog()

    def decoded(victim, slots):
        return sorted(
            tuple(catalog.value(victim.column(p)[int(slot)])
                  for p in range(victim.arity))
            for slot in slots)

    live = {key: decoded(store, maintained[key])
            for key in maintained if len(maintained[key])}
    assert live == {key: decoded(reference, rebuilt[key]) for key in rebuilt}
    seen = [int(slot) for key in maintained for slot in maintained[key]]
    assert sorted(seen) == list(range(len(store)))


def test_group_index_consistent_under_bulk_extends_and_discards():
    """Regression: delta-merged group indexes must track interleaved
    ``add_many`` bulk extends and swap-remove discards exactly — every
    maintained bucket equals what a from-scratch rebuild would produce,
    and the merges are counted (not silently rebuilt)."""
    rng = random.Random(7)
    instance = DatabaseInstance()
    relation = instance.declare("T", ["k", "g", "v"])
    relation.add_many([(f"k{i % 5}", i % 3, i) for i in range(12)])
    store = relation.column_store()
    single = store.group_index((0,))
    pair = store.group_index((0, 1))
    merges_before = index_delta_merge_count()

    next_value = 100
    for step in range(40):
        if rng.random() < 0.6 or len(relation) < 4:
            batch = [(f"k{rng.randrange(8)}", rng.randrange(3), next_value + j)
                     for j in range(rng.randrange(1, 5))]
            next_value += len(batch)
            generation = store.generation
            assert all(relation.add_many(batch))
            # one bulk extend per batch, not one mutation per row
            assert store.generation == generation + 1
        else:
            relation.discard(rng.choice(sorted(relation.rows())))
        # the SAME index objects are maintained in place, never swapped out
        assert store.group_index((0,)) is single
        assert store.group_index((0, 1)) is pair
        _assert_group_index_matches_rebuild(store, (0,))
        _assert_group_index_matches_rebuild(store, (0, 1))

    assert index_delta_merge_count() > merges_before


# -- snapshot copy-on-write ---------------------------------------------------


def test_snapshot_shared_while_unmutated():
    """The MVCC-publish fix: snapshotting an untouched relation returns the
    same cached clone — no per-publication index re-copy."""
    relation = _relation_with_rows([("a", 1), ("b", 2)])
    relation.probe((0,), ("a",))  # force a pattern index into existence
    first = relation.snapshot()
    second = relation.snapshot()
    assert first is second
    # The shared clone carries the pattern indexes (no rebuild on probe).
    assert first.index_count() == relation.index_count()
    assert sorted(first.probe((0,), ("a",))) == [("a", 1)]


def test_snapshot_refreshes_after_mutation():
    relation = _relation_with_rows([("a", 1)])
    before = relation.snapshot()
    relation.add(("b", 2))
    after = relation.snapshot()
    assert after is not before
    assert sorted(before.rows()) == [("a", 1)]
    assert sorted(after.rows()) == [("a", 1), ("b", 2)]
    # Discards count as mutations too.
    relation.discard(("a", 1))
    assert relation.snapshot() is not after


def test_snapshot_clone_is_isolated_from_later_mutations():
    relation = _relation_with_rows([("a", 1)])
    clone = relation.snapshot()
    relation.add(("b", 2))
    assert sorted(clone.rows()) == [("a", 1)]
    store = clone.column_store()
    assert len(store) == 1


def test_publish_reuses_snapshot_for_untouched_relations():
    """Across two updates touching only one relation, the untouched
    relation's published object is shared (same clone), the touched one is
    refreshed."""
    program = parse_program("""
        r(1,2). r(2,3).
        s(7).
    """)
    materialized = MaterializedProgram(program)
    versions = materialized.versions
    v0 = versions.latest()
    materialized.add_facts([("r", (3, 4))])
    v1 = versions.latest()
    materialized.add_facts([("r", (4, 5))])
    v2 = versions.latest()
    assert v1.instance.relation("s") is v2.instance.relation("s")
    assert v1.instance.relation("r") is not v2.instance.relation("r")
    assert v0.version < v1.version < v2.version


# -- support-count budget -----------------------------------------------------


def _session_with_queries(support_budget):
    program = parse_program("""
        edge(1,2). edge(2,3). edge(3,4). edge(4,5).
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- path(X,Y), edge(Y,Z).
    """)
    session = QuerySession(MaterializedProgram(program),
                           support_budget=support_budget)
    queries = ["q(X) :- path(X, 5).",
               "q(X, Y) :- path(X, Y).",
               "q(Y) :- path(1, Y).",
               "q(X) :- edge(X, Y), path(Y, 5)."]
    return session, queries


def test_support_budget_evicts_lru_entries():
    session, queries = _session_with_queries(support_budget=6)
    baseline = [QuerySession(session.materialized).answers(q) for q in queries]
    for query in queries:
        session.answers(query)
    assert session.stats.support_evictions > 0
    kept = sum(len(entry.counts) for entry in session._maintained.values())
    # The budget holds (up to the always-retained most recent entry).
    recent = max(session._maintained.values(), key=lambda e: e.last_used)
    assert kept - len(recent.counts) <= 6
    # Evicted queries still answer correctly (re-answer + re-seed).
    for query, expected in zip(queries, baseline):
        assert session.answers(query) == expected


def test_unbounded_budget_never_evicts():
    session, queries = _session_with_queries(support_budget=None)
    for query in queries:
        session.answers(query)
    assert session.stats.support_evictions == 0
    assert len(session._maintained) == len(queries)


def test_eviction_survives_update_maintenance():
    """Eviction under the publish lock composes with maintenance: evicted
    entries re-answer correctly after further updates."""
    session, queries = _session_with_queries(support_budget=6)
    for query in queries:
        session.answers(query)
    session.materialized.add_facts([("edge", (5, 6))])
    reference = QuerySession(MaterializedProgram(
        session.materialized.edb_program()))
    for query in queries:
        assert session.answers(query) == reference.answers(query), query
    assert session.stats.support_evictions > 0
