"""Tests for categorical relation schemas."""

import pytest

from repro.errors import CategoricalRelationError
from repro.md.relations import CategoricalAttribute, CategoricalRelationSchema


@pytest.fixture()
def patient_ward():
    return CategoricalRelationSchema(
        "PatientWard",
        categorical=[CategoricalAttribute("Ward", "Hospital", "Ward"),
                     CategoricalAttribute("Day", "Time", "Day")],
        non_categorical=["Patient"],
    )


class TestCategoricalAttribute:
    def test_requires_all_fields(self):
        with pytest.raises(CategoricalRelationError):
            CategoricalAttribute("", "Hospital", "Ward")
        with pytest.raises(CategoricalRelationError):
            CategoricalAttribute("Ward", "", "Ward")

    def test_str(self):
        attribute = CategoricalAttribute("Ward", "Hospital", "Ward")
        assert "Hospital" in str(attribute)


class TestCategoricalRelationSchema:
    def test_attribute_order_is_categorical_first(self, patient_ward):
        assert patient_ward.attribute_names == ("Ward", "Day", "Patient")
        assert patient_ward.arity == 3

    def test_positions(self, patient_ward):
        assert patient_ward.categorical_positions() == [0, 1]
        assert patient_ward.non_categorical_positions() == [2]
        assert patient_ward.is_categorical_position(0)
        assert not patient_ward.is_categorical_position(2)

    def test_position_of(self, patient_ward):
        assert patient_ward.position_of("Patient") == 2
        with pytest.raises(CategoricalRelationError):
            patient_ward.position_of("Nope")

    def test_categorical_attribute_lookup(self, patient_ward):
        assert patient_ward.categorical_attribute("Day").dimension == "Time"
        with pytest.raises(CategoricalRelationError):
            patient_ward.categorical_attribute("Patient")

    def test_attributes_linked_to_dimension(self, patient_ward):
        assert [a.name for a in patient_ward.attributes_linked_to("Hospital")] == ["Ward"]

    def test_dimensions_in_order(self, patient_ward):
        assert patient_ward.dimensions() == ["Hospital", "Time"]

    def test_needs_at_least_one_categorical_attribute(self):
        with pytest.raises(CategoricalRelationError):
            CategoricalRelationSchema("R", categorical=[], non_categorical=["a"])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(CategoricalRelationError):
            CategoricalRelationSchema(
                "R",
                categorical=[CategoricalAttribute("X", "D", "C")],
                non_categorical=["X"],
            )

    def test_to_relation_schema(self, patient_ward):
        relational = patient_ward.to_relation_schema()
        assert relational.name == "PatientWard"
        assert relational.attributes == ("Ward", "Day", "Patient")

    def test_equality(self, patient_ward):
        clone = CategoricalRelationSchema(
            "PatientWard",
            categorical=[CategoricalAttribute("Ward", "Hospital", "Ward"),
                         CategoricalAttribute("Day", "Time", "Day")],
            non_categorical=["Patient"])
        assert clone == patient_ward

    def test_str_uses_paper_notation(self, patient_ward):
        assert ";" in str(patient_ward)
