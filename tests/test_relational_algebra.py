"""Tests for the relational algebra operators."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.instance import Relation
from repro.relational.schema import RelationSchema


@pytest.fixture()
def employees():
    rel = Relation(RelationSchema("Emp", ["name", "dept", "salary"]))
    rel.add_all([
        ("ann", "db", 100),
        ("bob", "db", 90),
        ("carol", "ai", 120),
    ])
    return rel


@pytest.fixture()
def departments():
    rel = Relation(RelationSchema("Dept", ["dept", "floor"]))
    rel.add_all([("db", 1), ("ai", 2)])
    return rel


class TestSelection:
    def test_select_with_predicate(self, employees):
        result = algebra.select(employees, lambda row: row["salary"] > 95)
        assert set(result) == {("ann", "db", 100), ("carol", "ai", 120)}

    def test_select_eq(self, employees):
        result = algebra.select_eq(employees, {"dept": "db"})
        assert len(result) == 2

    def test_select_eq_multiple_conditions(self, employees):
        result = algebra.select_eq(employees, {"dept": "db", "name": "bob"})
        assert set(result) == {("bob", "db", 90)}

    def test_select_renames(self, employees):
        result = algebra.select(employees, lambda row: True, name="All")
        assert result.schema.name == "All"


class TestProjection:
    def test_project_removes_duplicates(self, employees):
        result = algebra.project(employees, ["dept"])
        assert set(result) == {("db",), ("ai",)}

    def test_project_order(self, employees):
        result = algebra.project(employees, ["salary", "name"])
        assert result.schema.attributes == ("salary", "name")

    def test_project_unknown_attribute(self, employees):
        with pytest.raises(SchemaError):
            algebra.project(employees, ["missing"])


class TestRename:
    def test_rename_attribute(self, employees):
        result = algebra.rename(employees, {"dept": "department"})
        assert "department" in result.schema.attributes
        assert len(result) == len(employees)

    def test_rename_unknown_attribute(self, employees):
        with pytest.raises(SchemaError):
            algebra.rename(employees, {"missing": "x"})


class TestSetOperators:
    def test_union(self, employees):
        extra = Relation(employees.schema, [("dave", "db", 80)])
        assert len(algebra.union(employees, extra)) == 4

    def test_union_removes_duplicates(self, employees):
        assert len(algebra.union(employees, employees)) == 3

    def test_difference(self, employees):
        subset = Relation(employees.schema, [("ann", "db", 100)])
        result = algebra.difference(employees, subset)
        assert ("ann", "db", 100) not in result
        assert len(result) == 2

    def test_intersection(self, employees):
        subset = Relation(employees.schema, [("ann", "db", 100), ("zed", "x", 1)])
        assert set(algebra.intersection(employees, subset)) == {("ann", "db", 100)}

    def test_incompatible_arity_rejected(self, employees, departments):
        with pytest.raises(SchemaError):
            algebra.union(employees, departments)


class TestJoins:
    def test_natural_join(self, employees, departments):
        result = algebra.natural_join(employees, departments)
        assert result.schema.attributes == ("name", "dept", "salary", "floor")
        assert ("ann", "db", 100, 1) in result
        assert len(result) == 3

    def test_natural_join_no_shared_attributes_is_product(self, departments):
        other = Relation(RelationSchema("X", ["k"]), [("a",), ("b",)])
        result = algebra.natural_join(departments, other)
        assert len(result) == 4

    def test_theta_join(self, employees, departments):
        result = algebra.theta_join(
            employees, departments, lambda e, d: e["dept"] == d["dept"] and d["floor"] == 1)
        assert len(result) == 2

    def test_cartesian_product(self, employees, departments):
        assert len(algebra.cartesian_product(employees, departments)) == 6


class TestQualityHelpers:
    def test_distinct_values(self, employees):
        assert algebra.distinct_values(employees, "dept") == {"db", "ai"}

    def test_tuple_containment_ratio(self, employees):
        reference = Relation(employees.schema, [("ann", "db", 100), ("bob", "db", 90)])
        assert algebra.tuple_containment_ratio(employees, reference) == pytest.approx(2 / 3)

    def test_tuple_containment_ratio_empty_subject(self, employees):
        empty = Relation(employees.schema)
        assert algebra.tuple_containment_ratio(empty, employees) == 1.0
