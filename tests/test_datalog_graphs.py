"""Tests for the position graph (weak acyclicity / finite rank) and predicate graph."""

import pytest

from repro.datalog import parse_rule
from repro.datalog.graphs import build_position_graph, build_predicate_graph


class TestPositionGraph:
    def test_ordinary_and_special_edges(self):
        rule = parse_rule("exists Z : P(X, Z) :- Q(X, Y).")
        graph = build_position_graph([rule])
        assert (("Q", 0), ("P", 0)) in graph.ordinary_edges
        assert (("Q", 0), ("P", 1)) in graph.special_edges

    def test_weakly_acyclic_program(self):
        rules = [parse_rule("exists Z : P(X, Z) :- Q(X, Y).")]
        graph = build_position_graph(rules)
        assert graph.is_weakly_acyclic()
        assert graph.infinite_rank_positions() == set()

    def test_non_weakly_acyclic_program(self):
        rules = [parse_rule("exists Y : Edge(X, Y) :- Edge(W, X).")]
        graph = build_position_graph(rules)
        assert not graph.is_weakly_acyclic()
        assert ("Edge", 1) in graph.infinite_rank_positions()
        # the value propagates to position 0 as well
        assert ("Edge", 0) in graph.infinite_rank_positions()

    def test_finite_rank_positions_complement(self):
        rules = [parse_rule("exists Y : Edge(X, Y) :- Edge(W, X).")]
        graph = build_position_graph(rules)
        assert graph.finite_rank_positions() | graph.infinite_rank_positions() == graph.positions

    def test_plain_recursion_is_weakly_acyclic(self):
        rules = [parse_rule("Path(X, Z) :- Path(X, Y), Edge(Y, Z)."),
                 parse_rule("Path(X, Y) :- Edge(X, Y).")]
        graph = build_position_graph(rules)
        assert graph.is_weakly_acyclic()

    def test_reachable_from(self):
        rules = [parse_rule("P(X) :- Q(X)."), parse_rule("R(X) :- P(X).")]
        graph = build_position_graph(rules)
        assert ("R", 0) in graph.reachable_from({("Q", 0)})

    def test_successors(self):
        rules = [parse_rule("P(X) :- Q(X).")]
        graph = build_position_graph(rules)
        assert graph.successors(("Q", 0)) == {("P", 0)}

    def test_hospital_rules_positions(self, hospital_ontology):
        tgds = [rule.tgd for rule in hospital_ontology.rules]
        graph = build_position_graph(tgds)
        # Rule (8) invents a null at the Shifts shift position.
        assert ("Shifts", 3) in graph.infinite_rank_positions() or \
            ("Shifts", 3) in {target for _s, target in graph.special_edges}
        # Categorical positions of PatientUnit stay finite rank in the
        # ontology without rule (9)... with rule (9) the Unit position gets a
        # special edge but no cycle, so the whole graph stays weakly acyclic.
        assert graph.is_weakly_acyclic()


class TestPredicateGraph:
    def test_edges_from_body_to_head(self):
        rules = [parse_rule("P(X) :- Q(X), R(X).")]
        graph = build_predicate_graph(rules)
        assert ("Q", "P") in graph.edges and ("R", "P") in graph.edges

    def test_recursion_detection(self):
        recursive = [parse_rule("P(X) :- P(X).")]
        assert build_predicate_graph(recursive).is_recursive()
        non_recursive = [parse_rule("P(X) :- Q(X).")]
        assert not build_predicate_graph(non_recursive).is_recursive()

    def test_mutual_recursion(self):
        rules = [parse_rule("P(X) :- Q(X)."), parse_rule("Q(X) :- P(X).")]
        graph = build_predicate_graph(rules)
        assert graph.predicates_on_cycles() == {"P", "Q"}

    def test_topological_order(self):
        rules = [parse_rule("P(X) :- Q(X)."), parse_rule("R(X) :- P(X).")]
        order = build_predicate_graph(rules).topological_order()
        assert order.index("Q") < order.index("P") < order.index("R")

    def test_topological_order_rejects_cycles(self):
        rules = [parse_rule("P(X) :- P(X).")]
        with pytest.raises(ValueError):
            build_predicate_graph(rules).topological_order()
