"""Tests for contexts, quality-version specs and their assembly/evaluation."""

import pytest

from repro.errors import ContextError, QualityVersionError
from repro.quality.context import Context, default_context_name
from repro.quality.versions import QualityVersionSpec, default_quality_name
from repro.relational.instance import DatabaseInstance


@pytest.fixture()
def simple_instance():
    db = DatabaseInstance()
    db.declare("Readings", ["sensor", "value"])
    db.add_all("Readings", [("s1", 10), ("s2", 20), ("s3", 30)])
    return db


@pytest.fixture()
def simple_context():
    """A context without any MD ontology: quality = reading from a trusted sensor."""
    context = Context(name="simple")
    context.map_relation("Readings", arity=2)
    context.add_external_source("TrustedSensor", ["sensor"], rows=[("s1",), ("s2",)])
    context.add_quality_predicate(
        "Trusted", ["Trusted(S) :- TrustedSensor(S)."],
        description="sensors on the calibration list")
    context.define_quality_version(
        "Readings", ["Readings_q(S, V) :- Readings_c(S, V), Trusted(S)."])
    return context


class TestQualityVersionSpec:
    def test_default_name(self):
        assert default_quality_name("Measurements") == "Measurements_q"
        spec = QualityVersionSpec("R", ["R_q(X) :- R_c(X)."])
        assert spec.quality_relation == "R_q"

    def test_head_must_be_quality_relation(self):
        with pytest.raises(QualityVersionError):
            QualityVersionSpec("R", ["Other(X) :- R_c(X)."])

    def test_existential_rules_rejected(self):
        with pytest.raises(QualityVersionError):
            QualityVersionSpec("R", ["exists Z : R_q(X, Z) :- R_c(X, Y)."])

    def test_at_least_one_rule(self):
        with pytest.raises(QualityVersionError):
            QualityVersionSpec("R", [])

    def test_custom_quality_relation_name(self):
        spec = QualityVersionSpec("R", ["Clean(X) :- R_c(X)."], quality_relation="Clean")
        assert spec.quality_relation == "Clean"


class TestContextConstruction:
    def test_default_context_name(self):
        assert default_context_name("Measurements") == "Measurements_c"

    def test_contextual_name_requires_mapping(self, simple_context):
        assert simple_context.contextual_name("Readings") == "Readings_c"
        with pytest.raises(ContextError):
            simple_context.contextual_name("Other")

    def test_quality_predicates_listed(self, simple_context):
        assert [p.name for p in simple_context.quality_predicates()] == ["Trusted"]

    def test_add_rule_rejects_non_tgds(self, simple_context):
        with pytest.raises(ContextError):
            simple_context.add_rule("false :- Readings_c(S, V).")

    def test_assemble_requires_mapped_relations(self, simple_context):
        with pytest.raises(ContextError):
            simple_context.assemble(DatabaseInstance())


class TestContextEvaluation:
    def test_assembled_program_contains_copy_rules(self, simple_context, simple_instance):
        program = simple_context.assemble(simple_instance)
        heads = {atom.predicate for tgd in program.tgds for atom in tgd.head}
        assert "Readings_c" in heads and "Readings_q" in heads and "Trusted" in heads

    def test_quality_version_materialization(self, simple_context, simple_instance):
        quality = simple_context.quality_version(simple_instance, "Readings")
        assert set(quality) == {("s1", 10), ("s2", 20)}
        assert quality.schema.attributes == ("sensor", "value")

    def test_quality_versions_for_shares_chase(self, simple_context, simple_instance):
        versions = simple_context.quality_versions_for(simple_instance)
        assert set(versions) == {"Readings"}
        assert len(versions["Readings"]) == 2

    def test_quality_version_requires_declaration(self, simple_context, simple_instance):
        with pytest.raises(ContextError):
            simple_context.quality_version(simple_instance, "Other")

    def test_chase_includes_external_sources(self, simple_context, simple_instance):
        result = simple_context.chase(simple_instance)
        assert ("s1",) in result.instance.relation("TrustedSensor")

    def test_hospital_context_quality_version(self, hospital_scenario):
        quality = hospital_scenario.context.quality_version(
            hospital_scenario.measurements, "Measurements")
        assert set(quality) == set(hospital_scenario.expected_quality_measurements())
