"""Differential suite: daemon-served answers ≡ in-process session answers.

A :class:`~repro.serving.daemon.ServingDaemon` driven over its socket
protocol must be observationally identical to an in-process
:class:`~repro.engine.session.MaterializedProgram` fed the same updates:

* identical certain answers (and null-preserving answers) across
  randomized query/update interleavings, on both engines, with inline
  checkpoints firing mid-stream;
* identical answers at **pinned read versions** — a client holding a pin
  keeps reading the old cut while writes (its own or another client's)
  advance the daemon, exactly like an in-process
  :class:`~repro.engine.versioning.ReadTransaction`;
* concurrent clients see no torn reads: within one pinned client read,
  repeated answers never change while a writer storms the daemon;
* quality sessions (hospital scenario) serve the same quality-version
  rows, quality answers and assessments as the in-process session, and
  keep doing so after a restart from snapshot + WAL.
"""

from __future__ import annotations

import random
import threading

import pytest

import test_session_differential as differential
from repro.engine.session import MaterializedProgram
from repro.hospital import HospitalScenario
from repro.hospital.scenario import DOCTOR_QUERY
from repro.serving import CompactionPolicy, ServingClient
from repro.serving.daemon import ProgramBackend, ServingDaemon
from repro.serving.wal import OP_ADD
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

ENGINES = ("indexed", "naive")


def _serve(backend, data_dir, **policy_knobs):
    """Recover + start a daemon and connect one client to it."""
    daemon = ServingDaemon(backend, data_dir,
                           policy=CompactionPolicy(**policy_knobs)
                           if policy_knobs else None)
    daemon.recover()
    host, port = daemon.start()
    return daemon, ServingClient(host, port)


def _apply_both(client: ServingClient, mirror: MaterializedProgram,
                action: str, facts) -> None:
    if action in ("add", OP_ADD):
        client.add_facts(facts)
        mirror.add_facts(facts)
    else:
        client.retract_facts(facts)
        mirror.retract_facts(facts)


def _assert_answers_match(client: ServingClient,
                          mirror: MaterializedProgram, queries) -> None:
    session = mirror.queries()
    for query in queries:
        text = str(query)
        assert client.answers(text) == session.answers(text)
        assert client.answers(text, allow_nulls=True) == \
            session.answers(text, allow_nulls=True)
        assert client.holds(text) == session.holds(text)


# -- randomized interleavings --------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(6))
def test_randomized_interleavings_match_in_process(seed, engine, tmp_path):
    """Random programs (existential on odd seeds), random update streams,
    random queries between updates — served and in-process answers agree
    at every step, while inline checkpoints fire mid-stream."""
    existential = seed % 2 == 1
    program = differential._random_program(seed, existential=existential)
    mirror = MaterializedProgram(
        differential._random_program(seed, existential=existential),
        engine=engine)
    backend = ProgramBackend(
        differential._random_program(seed, existential=existential),
        engine=engine)
    daemon, client = _serve(backend, tmp_path / "data",
                            checkpoint_every_records=3)
    try:
        rng = random.Random(8000 + seed)
        query_rng = random.Random(8500 + seed)
        for action, facts in differential._random_updates(rng, program,
                                                          steps=8):
            _apply_both(client, mirror, action, facts)
            queries = differential._random_queries(query_rng,
                                                   mirror.edb_program())
            _assert_answers_match(client, mirror, queries)
        assert client.stats()["serving"]["lsn"] == daemon.last_lsn
    finally:
        client.close()
        daemon.stop()


@pytest.mark.parametrize("engine", ENGINES)
def test_workload_stream_with_mid_stream_restart(engine, tmp_path):
    """A generated MD workload stream, served across a daemon restart:
    the restarted daemon (snapshot + WAL replay) keeps matching the
    in-process mirror step for step."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, upward_rules=True, downward_rules=True,
        seed=7))
    mirror = MaterializedProgram(workload.ontology.program(), engine=engine)
    daemon, client = _serve(
        ProgramBackend(workload.ontology.program(), engine=engine),
        tmp_path / "data", checkpoint_every_records=4)
    stream = generate_update_stream(workload, steps=6, adds_per_step=2,
                                    retracts_per_step=1, seed=7)
    try:
        for index, step in enumerate(stream):
            if index == 3:  # crash/restart mid-stream, WAL tail unflushed
                client.close()
                daemon.stop()
                daemon, client = _serve(
                    ProgramBackend(workload.ontology.program(),
                                   engine=engine),
                    tmp_path / "data", checkpoint_every_records=4)
                _assert_answers_match(client, mirror, workload.queries)
            _apply_both(client, mirror, "add", step.adds)
            _apply_both(client, mirror, "retract", step.retracts)
            _assert_answers_match(client, mirror, workload.queries)
    finally:
        client.close()
        daemon.stop()


# -- pinned read versions ------------------------------------------------------


def test_pinned_reads_match_in_process_transactions(tmp_path):
    """A client pin behaves exactly like an in-process ReadTransaction:
    reads at the pinned version ignore every later write, on the daemon
    and the mirror alike."""
    program_text = """
        Derived(X, Y) :- Base(X, Y).
        Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
        Base(a, b). Base(c, d).
        Link(b, t1). Link(d, t2).
    """
    from repro.datalog import parse_program
    query = "?(X, Z) :- Joined(X, Z)."
    mirror = MaterializedProgram(parse_program(program_text))
    daemon, client = _serve(ProgramBackend(parse_program(program_text)),
                            tmp_path / "data")
    try:
        mirror_session = mirror.queries()
        client.answers(query)  # warm both sides identically
        mirror_session.answers(query)

        with mirror_session.read() as txn, client.read() as pinned:
            assert pinned.version == txn.version
            frozen = txn.answers(query)
            assert pinned.answers(query) == frozen

            writes = [("add", [("Base", ("e", "b"))]),
                      ("add", [("Link", ("d", "t9"))]),
                      ("retract", [("Base", ("a", "b"))])]
            for action, facts in writes:
                _apply_both(client, mirror, action, facts)
                # The pinned cut is frozen on both sides...
                assert pinned.answers(query) == frozen
                assert txn.answers(query) == frozen
                # ...while unpinned reads advance in lockstep.
                assert client.answers(query) == mirror_session.answers(query)
        assert client.answers(query) == mirror_session.answers(query)

        # A second client holds its own pin concurrently with writes from
        # the first; GC never collects a version a client still pins.
        other = ServingClient(client.host, client.port)
        try:
            version = other.pin()
            before = other.answers(query, version=version)
            client.add_facts([("Base", ("f", "d"))])
            mirror.add_facts([("Base", ("f", "d"))])
            assert other.answers(query, version=version) == before
            assert other.answers(query) == mirror.queries().answers(query)
            other.unpin(version)
        finally:
            other.close()
    finally:
        client.close()
        daemon.stop()


def test_concurrent_pinned_readers_see_no_torn_reads(tmp_path):
    """Reader threads each pin a version and re-read while a writer storms
    the daemon: within one pin, answers never change."""
    from repro.datalog import parse_program
    program_text = """
        Derived(X, Y) :- Base(X, Y).
        Base(a, b).
    """
    query = "?(X, Y) :- Derived(X, Y)."
    daemon, client = _serve(ProgramBackend(parse_program(program_text)),
                            tmp_path / "data")
    failures = []
    stop = threading.Event()

    def reader(index: int) -> None:
        with ServingClient(client.host, client.port) as own:
            while not stop.is_set():
                with own.read() as pinned:
                    first = pinned.answers(query)
                    for _ in range(3):
                        if pinned.answers(query) != first:
                            failures.append(
                                f"reader {index} saw a torn read")
                            return

    threads = [threading.Thread(target=reader, args=(index,))
               for index in range(3)]
    try:
        for thread in threads:
            thread.start()
        for burst in range(12):
            client.add_facts([("Base", (f"w{burst}", f"v{burst}"))])
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures
        assert not any(thread.is_alive() for thread in threads)
    finally:
        stop.set()
        client.close()
        daemon.stop()


# -- quality sessions ----------------------------------------------------------


def test_hospital_quality_session_served_matches_in_process(tmp_path):
    """The hospital scenario runs against the daemon exactly as it runs
    in-process: same doctor answers, same quality version, same
    assessment — including after live measurement updates and a restart
    from snapshot + WAL."""
    mirror = HospitalScenario()
    served = HospitalScenario()
    daemon, client = _serve(served.serving_backend(), tmp_path / "data",
                            checkpoint_every_records=2)

    measurements_q = "?(T, P, V) :- Measurements_q(T, P, V)."

    def assert_equivalent():
        session = mirror.session()
        assert client.quality_answers(DOCTOR_QUERY) == \
            session.quality_answers(DOCTOR_QUERY)
        assert client.quality_version("Measurements") == \
            tuple(session.quality_version("Measurements").sorted_rows())
        assert client.assess()["text"] == str(session.assess())
        assert client.answers(measurements_q) == \
            session.query_session.answers(measurements_q)

    try:
        assert_equivalent()
        new_rows = [("Sep/5-12:20", "Tom Waits", 38.3),
                    ("Sep/6-11:00", "Lou Reed", 37.1)]
        client.add_facts([("Measurements", row) for row in new_rows])
        mirror.record_measurements(new_rows)
        assert_equivalent()

        client.retract_facts([("Measurements", new_rows[0])])
        mirror.remove_measurements([new_rows[0]])
        assert_equivalent()

        # Restart: the quality session recovers from snapshot ⊕ WAL (the
        # instance under assessment travels in the snapshot's extras).
        client.close()
        daemon.stop()
        daemon, client = _serve(HospitalScenario().serving_backend(),
                                tmp_path / "data",
                                checkpoint_every_records=2)
        assert daemon.recovery["snapshot"] is not None
        assert_equivalent()

        more = [("Sep/9-10:00", "Tom Waits", 37.9)]
        client.add_facts([("Measurements", row) for row in more])
        mirror.record_measurements(more)
        assert_equivalent()
    finally:
        client.close()
        daemon.stop()


def test_quality_ops_refused_on_program_backend(tmp_path):
    from repro.datalog import parse_program
    from repro.errors import ServingProtocolError
    daemon, client = _serve(
        ProgramBackend(parse_program("Derived(X) :- Base(X). Base(a).")),
        tmp_path / "data")
    try:
        with pytest.raises(ServingProtocolError, match="quality backend"):
            client.assess()
    finally:
        client.close()
        daemon.stop()
