"""Crash/fault-injection recovery suite for the serving daemon.

The invariant under test: **snapshot ⊕ WAL replay ≡ live session** — after
*any* crash (SIGKILL mid-write-burst, a death inside a checkpoint, a torn
or bit-flipped WAL tail), recovery reproduces exactly the state of a clean
replay of the durable WAL prefix:

* every **acknowledged** update is durable (``durable LSN >= acked``, with
  at most one unacknowledged in-flight record on top);
* the recovered instance's ground facts and certain answers are identical
  to a fresh cold chase that applies the same durable update prefix
  in-process;
* damage *before* the tail (lost updates) is refused loudly
  (:class:`~repro.errors.WALCorruptionError`), never skipped;
* a failed checkpoint leaves the previous snapshot and the live WAL
  intact, and the daemon keeps serving.

Crash points are driven two ways: an external ``SIGKILL`` against a real
daemon subprocess mid-burst, and deterministic in-process crash points
(``REPRO_FAULT_CRASH`` — see :mod:`repro.serving.wal`) that die with
``os._exit`` at exact WAL/checkpoint steps.  ``REPRO_FAULT_SEED`` (CI
matrix) shifts the randomized positions, streams and byte offsets.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import threading
from pathlib import Path
from typing import List, Tuple

import pytest

import test_session_differential as differential
import repro
from repro.datalog import parse_program
from repro.engine.session import MaterializedProgram
from repro.errors import (DaemonUnavailableError, ServingError,
                          ServingProtocolError, SnapshotError,
                          WALCorruptionError)
from repro.serving import (CompactionPolicy, ServingClient, current_segment,
                           latest_snapshot, list_segments, scan_wal)
from repro.serving.daemon import ProgramBackend, ServingDaemon
from repro.serving.wal import FAULT_EXIT_CODE, OP_ADD, OP_RETRACT
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
ENGINES = ("indexed", "naive")
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Joined(X, Z) :- Derived(X, Y), Link(Y, Z).
    Base(a, b). Base(c, d).
    Link(b, t1). Link(d, t2).
"""

QUERIES = ("?(X, Z) :- Joined(X, Z).",
           "?(X, Y) :- Derived(X, Y).",
           "? :- Joined(X, t1).")

UpdateItem = Tuple[str, List[Tuple[str, Tuple]]]


# -- helpers ------------------------------------------------------------------


def _stream(rng: random.Random, steps: int) -> List[UpdateItem]:
    """A deterministic add/retract item stream over PROGRAM_TEXT's EDB."""
    added: List[Tuple[str, Tuple]] = []
    items: List[UpdateItem] = []
    for index in range(steps):
        if added and rng.random() < 0.3:
            victim = added.pop(rng.randrange(len(added)))
            items.append((OP_RETRACT, [victim]))
        else:
            fact = ("Base", (f"x{index}", rng.choice(["b", "d"]))) \
                if rng.random() < 0.7 else \
                ("Link", (rng.choice(["b", "d"]), f"t{index + 3}"))
            added.append(fact)
            items.append((OP_ADD, [fact]))
    return items


def _apply_item(materialized: MaterializedProgram, item: UpdateItem) -> None:
    op, facts = item
    if op == OP_ADD:
        materialized.add_facts(facts)
    else:
        materialized.retract_facts(facts)


def _wal_file(data_dir: Path) -> Path:
    """The live (highest-based) WAL segment file."""
    return current_segment(data_dir)[1]


def _durable_lsn(data_dir: Path) -> int:
    """The last durable record on disk: snapshot cut ⊕ intact WAL suffix."""
    found = latest_snapshot(data_dir)
    base = found[0] if found is not None else 0
    scan = scan_wal(_wal_file(data_dir))
    last = scan.records[-1].lsn if scan.records else scan.header["base_lsn"]
    return max(base, last)


def _durable_records(data_dir: Path) -> List:
    """Every durable record across the whole segment chain, LSN order."""
    records = []
    for _, path in list_segments(data_dir):
        records.extend(record for record in scan_wal(path).records
                       if not records or record.lsn > records[-1].lsn)
    return records


def _recover(data_dir: Path,
             program_text: str = PROGRAM_TEXT) -> ServingDaemon:
    daemon = ServingDaemon(ProgramBackend(parse_program(program_text)),
                           data_dir)
    daemon.recover()
    return daemon


def _clean_replay(items: List[UpdateItem], durable: int,
                  program_text: str = PROGRAM_TEXT) -> MaterializedProgram:
    """The oracle: a cold chase plus the durable update prefix, in-process.

    Record LSN ``k`` is exactly ``items[k - 1]`` (the daemon assigns LSNs
    1, 2, ... to the stream in order), so the durable prefix of the WAL is
    the first ``durable`` stream items."""
    oracle = MaterializedProgram(parse_program(program_text))
    for item in items[:durable]:
        _apply_item(oracle, item)
    return oracle


def _assert_equals_oracle(recovered: MaterializedProgram,
                          oracle: MaterializedProgram,
                          queries=QUERIES) -> None:
    assert differential._ground_facts(recovered.instance) == \
        differential._ground_facts(oracle.instance)
    for query in queries:
        assert recovered.certain_answers(query) == \
            oracle.certain_answers(query)


def _spawn_daemon(data_dir: Path, program_file: Path, *,
                  checkpoint_every: int = None,
                  fault: str = None, no_sync: bool = False,
                  engine: str = None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    if fault:
        env["REPRO_FAULT_CRASH"] = fault
    command = [sys.executable, "-m", "repro.serving.daemon",
               "--data-dir", str(data_dir), "--program", str(program_file),
               "--port", "0", "--quiet"]
    if checkpoint_every is not None:
        command += ["--checkpoint-every", str(checkpoint_every)]
    if no_sync:
        command += ["--no-sync"]
    if engine is not None:
        command += ["--engine", engine]
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.dlg"
    path.write_text(PROGRAM_TEXT, encoding="utf-8")
    return path


def _drive_until_dead(client: ServingClient,
                      items: List[UpdateItem]) -> int:
    """Send items until the daemon dies; returns how many were acked."""
    acked = 0
    for op, facts in items:
        try:
            if op == OP_ADD:
                client.add_facts(facts)
            else:
                client.retract_facts(facts)
            acked += 1
        except (DaemonUnavailableError, ServingProtocolError):
            return acked
    pytest.fail("the daemon outlived the whole stream without crashing")


# -- SIGKILL mid-write-burst --------------------------------------------------


def test_sigkill_mid_write_burst_recovers_to_durable_prefix(tmp_path,
                                                            program_file):
    """A real daemon process killed with SIGKILL mid-burst: the recovered
    state equals a clean replay of the durable WAL prefix, and every
    acknowledged update survived."""
    rng = random.Random(900 + FAULT_SEED)
    items = _stream(rng, steps=30)
    kill_after = rng.randint(3, 12)
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file)
    try:
        client = ServingClient.connect(data_dir, wait=30.0)
        acked = 0
        for index, item in enumerate(items):
            if index == kill_after:
                os.kill(process.pid, signal.SIGKILL)
                process.wait(timeout=30)
            op, facts = item
            try:
                if op == OP_ADD:
                    client.add_facts(facts)
                else:
                    client.retract_facts(facts)
                acked += 1
            except (DaemonUnavailableError, ServingProtocolError):
                break
        assert process.poll() is not None, "SIGKILL did not land"
        client.close()
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.wait(timeout=30)

    durable = _durable_lsn(data_dir)
    # Durability: nothing acked is lost; at most one in-flight record may
    # be durable-but-unacknowledged.
    assert acked <= durable <= acked + 1
    daemon = _recover(data_dir)
    assert daemon.last_lsn == durable
    _assert_equals_oracle(daemon.backend.materialized,
                          _clean_replay(items, durable))
    daemon.stop()


# -- deterministic in-process crash points ------------------------------------


@pytest.mark.parametrize("sync_mode", ["sync", "no-sync"])
@pytest.mark.parametrize("point", ["wal-append", "wal-torn"])
def test_injected_crash_around_append(tmp_path, program_file, point,
                                      sync_mode):
    """Die exactly at (or halfway through) the n-th WAL append: recovery
    replays to precisely the last durable record — n for a completed
    append, n-1 for a torn half-written frame.  Under ``--no-sync`` the
    process-crash durability story is the same (the torn-tail fault point
    flushes what it wrote before dying, like the OS cache surviving a
    process crash)."""
    crash_at = 3 + (FAULT_SEED % 4)
    rng = random.Random(1300 + FAULT_SEED)
    items = _stream(rng, steps=crash_at + 5)
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file,
                            fault=f"{point}:{crash_at}",
                            no_sync=sync_mode == "no-sync")
    try:
        client = ServingClient.connect(data_dir, wait=30.0)
        acked = _drive_until_dead(client, items)
        client.close()
        assert process.wait(timeout=30) == FAULT_EXIT_CODE
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.wait(timeout=30)

    assert acked == crash_at - 1  # the crashing append was never acked
    durable = _durable_lsn(data_dir)
    expected = crash_at if point == "wal-append" else crash_at - 1
    assert durable == expected
    daemon = _recover(data_dir)
    report = daemon.recovery
    assert report["replayed_records"] == durable
    if point == "wal-torn":
        assert report["torn_tail"] is not None
        assert report["truncated_bytes"] > 0
    _assert_equals_oracle(daemon.backend.materialized,
                          _clean_replay(items, durable))
    daemon.stop()


@pytest.mark.parametrize("point", ["pre-auto-checkpoint",
                                   "checkpoint-after-snapshot",
                                   "checkpoint-after-rotate"])
def test_injected_crash_mid_checkpoint(tmp_path, program_file, point):
    """Die before/inside/after the checkpoint's atomic steps: whatever
    combination of old/new snapshot and old/fresh WAL the crash leaves,
    recovery converges on the same durable prefix."""
    checkpoint_every = 4 + (FAULT_SEED % 3)
    rng = random.Random(1700 + FAULT_SEED)
    items = _stream(rng, steps=checkpoint_every + 4)
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file,
                            checkpoint_every=checkpoint_every,
                            fault=f"{point}:1")
    try:
        client = ServingClient.connect(data_dir, wait=30.0)
        acked = _drive_until_dead(client, items)
        client.close()
        assert process.wait(timeout=30) == FAULT_EXIT_CODE
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.wait(timeout=30)

    # The crash fires inside the write that trips the checkpoint trigger.
    assert acked == checkpoint_every - 1
    durable = _durable_lsn(data_dir)
    assert durable == checkpoint_every
    daemon = _recover(data_dir)
    assert daemon.last_lsn == durable
    _assert_equals_oracle(daemon.backend.materialized,
                          _clean_replay(items, durable))
    # The recovered directory keeps serving and checkpointing normally.
    for item in items[durable:durable + 2]:
        op, facts = item
        daemon.apply_write(op, list(facts))
    daemon.checkpoint()
    _assert_equals_oracle(daemon.backend.materialized,
                          _clean_replay(items, durable + 2))
    daemon.stop()


# -- offline tail faults over generated workloads (both engines) --------------


def _workload_items(workload, steps: int) -> List[UpdateItem]:
    stream = generate_update_stream(workload, steps=steps, adds_per_step=2,
                                    retracts_per_step=1,
                                    seed=11 + FAULT_SEED)
    items: List[UpdateItem] = []
    for step in stream:
        if step.adds:
            items.append((OP_ADD, list(step.adds)))
        if step.retracts:
            items.append((OP_RETRACT, list(step.retracts)))
    return items


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("fault", ["truncate", "bitflip"])
def test_tail_faults_on_workload_stream(tmp_path, engine, fault):
    """Truncate or bit-flip the WAL tail under a generated MD workload
    stream: recovery truncates back to the last durable record and agrees
    with a fresh differential chase of that prefix, on both engines."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=12, upward_rules=True, downward_rules=True,
        seed=7))
    program = workload.ontology.program()
    items = _workload_items(workload, steps=5)

    data_dir = tmp_path / "data"
    daemon = ServingDaemon(
        ProgramBackend(workload.ontology.program(), engine=engine), data_dir,
        policy=CompactionPolicy(checkpoint_every_records=None,
                                max_wal_bytes=None))
    daemon.recover()
    for item in items:
        op, facts = item
        daemon.apply_write(op, list(facts))
    daemon.stop()  # the crash: nothing checkpointed, WAL holds everything

    wal_file = _wal_file(data_dir)
    data = wal_file.read_bytes()
    rng = random.Random(FAULT_SEED * 31 + len(fault))
    if fault == "truncate":
        data = data[:-rng.randint(2, 60)]
    else:
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        position = rng.randrange(last_line_start, len(data) - 1)
        data = data[:position] + bytes([data[position] ^ 0x20]) + \
            data[position + 1:]
    wal_file.write_bytes(data)

    durable = _durable_lsn(data_dir)
    assert durable < len(items)  # the fault really cost the tail
    recovered = ServingDaemon(
        ProgramBackend(workload.ontology.program(), engine=engine), data_dir)
    report = recovered.recover()
    assert report["torn_tail"] is not None
    assert report["replayed_records"] == durable

    oracle = MaterializedProgram(program, engine=engine)
    for item in items[:durable]:
        _apply_item(oracle, item)
    _assert_equals_oracle(recovered.backend.materialized, oracle,
                          queries=workload.queries)
    recovered.stop()


def test_damage_before_the_tail_is_refused(tmp_path):
    """A bit flip in a *middle* record (later records intact) means lost
    updates: recovery must refuse with WALCorruptionError, not silently
    skip the hole."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    items = _stream(random.Random(2100 + FAULT_SEED), steps=6)
    for item in items:
        op, facts = item
        daemon.apply_write(op, list(facts))
    daemon.stop()

    wal_file = _wal_file(data_dir)
    lines = wal_file.read_bytes().splitlines(keepends=True)
    victim = 2  # a record frame strictly before the tail (0 is the header)
    lines[victim] = lines[victim][:70] + \
        bytes([lines[victim][70] ^ 0x01]) + lines[victim][71:]
    wal_file.write_bytes(b"".join(lines))

    with pytest.raises(WALCorruptionError, match="before its tail"):
        _recover(data_dir)


# -- checkpoint failure leaves the previous durable state intact --------------


def test_failed_checkpoint_leaves_snapshot_and_wal_intact(tmp_path):
    """A SnapshotError inside a daemon checkpoint (unserializable value
    discovered late) must leave the previous snapshot and the live WAL
    untouched — the daemon keeps serving, and a later recovery still
    replays the full durable prefix."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    items = _stream(random.Random(2500 + FAULT_SEED), steps=4)
    for item in items:
        op, facts = item
        daemon.apply_write(op, list(facts))
    snapshot_before = latest_snapshot(data_dir)
    wal_before = _wal_file(data_dir)
    wal_bytes_before = wal_before.stat().st_size

    # Poison the instance with a value the snapshot codec refuses.
    poison = ("Base", ("poisoned", object()))
    daemon.backend.materialized.instance.relation("Base").add(poison[1])
    with pytest.raises(SnapshotError, match="cannot serialize"):
        daemon.checkpoint()

    assert latest_snapshot(data_dir) == snapshot_before
    assert _wal_file(data_dir) == wal_before  # no rotation happened
    assert wal_before.stat().st_size == wal_bytes_before
    assert not list(data_dir.glob("*.tmp"))

    # Still serving: the WAL accepts further writes, and once the poison
    # is gone the checkpoint succeeds.
    daemon.backend.materialized.instance.relation("Base").discard(poison[1])
    extra = ("Base", ("after-failure", "b"))
    daemon.apply_write(OP_ADD, [extra])
    assert daemon.checkpoint()["checkpointed"]
    daemon.stop()

    recovered = _recover(data_dir)
    oracle = _clean_replay(items, len(items))
    oracle.add_facts([extra])
    _assert_equals_oracle(recovered.backend.materialized, oracle)
    recovered.stop()


def test_inapplicable_writes_never_poison_the_wal(tmp_path):
    """A write the backend cannot apply must not stay in the WAL: a wrong
    arity is refused before the append, and a hard EGD conflict (only
    discoverable mid-chase) is rolled back out of the log — either way the
    data directory stays recoverable and later writes keep flowing."""
    from repro.errors import ArityError, EGDConflictError
    program_text = """
        Stored(X, T) :- Declared(X, T).
        T = T2 :- Stored(X, T), Stored(X, T2).
        Declared(i1, alpha).
    """
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir, program_text)

    with pytest.raises(ArityError, match="arity"):
        daemon.apply_write(OP_ADD, [("Declared", ("only-one-value",))])
    assert daemon.last_lsn == 0  # nothing was appended

    # Two distinct constants for i1 fire the EGD into a hard conflict
    # mid-chase — after the record was durably appended.
    with pytest.raises(EGDConflictError):
        daemon.apply_write(OP_ADD, [("Declared", ("i1", "beta"))])
    assert daemon.last_lsn == 0
    assert _durable_lsn(data_dir) == 0  # the poisoned record was rolled back

    # The live state was rebuilt from the durable state: the failed
    # update's partial mutations (the EDB row, the aborted chase) are
    # gone — live answers, the next checkpoint and recovery all agree
    # the update never happened.
    probe = "?(X, T) :- Stored(X, T)."
    assert daemon.backend.materialized.certain_answers(probe) == \
        (("i1", "alpha"),)
    assert ("i1", "beta") not in \
        daemon.backend.materialized.edb.relation("Declared")

    # The WAL still accepts clean writes after the rollback...
    daemon.apply_write(OP_ADD, [("Declared", ("i2", "gamma"))])
    assert _durable_lsn(data_dir) == 1
    assert daemon.checkpoint()["checkpointed"]  # bakes only clean facts
    daemon.stop()

    # ...and recovery replays/restores the clean state, unimpeded.
    recovered = _recover(data_dir, program_text)
    assert recovered.backend.materialized.certain_answers(probe) == \
        (("i1", "alpha"), ("i2", "gamma"))
    recovered.stop()


# -- restart stability --------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_repeated_recovery_is_stable(tmp_path, engine):
    """Recover → serve → crash → recover ... across checkpoints: every
    generation equals the clean replay of its durable prefix."""
    rng = random.Random(3000 + FAULT_SEED)
    items = _stream(rng, steps=12)
    data_dir = tmp_path / "data"
    cursor = 0
    for generation in range(3):
        daemon = ServingDaemon(
            ProgramBackend(parse_program(PROGRAM_TEXT), engine=engine),
            data_dir,
            policy=CompactionPolicy(checkpoint_every_records=3))
        daemon.recover()
        assert daemon.last_lsn == cursor
        for item in items[cursor:cursor + 4]:
            op, facts = item
            daemon.apply_write(op, list(facts))
        cursor += 4
        _assert_equals_oracle(daemon.backend.materialized,
                              _clean_replay(items, cursor))
        daemon.stop()  # abandon without a final checkpoint
    durable = _durable_lsn(data_dir)
    assert durable == cursor


def test_failed_append_repairs_the_file(tmp_path):
    """An append that dies mid-write (disk full) must truncate its partial
    frame back out, so a later successful append cannot land after garbage
    and turn the whole log into refused damage-before-tail."""
    from repro.errors import WALError
    from repro.serving import WriteAheadLog

    class ExplodingFile:
        """Delegates to the real handle; the first write half-succeeds."""

        def __init__(self, inner):
            self.inner = inner
            self.exploded = False

        def write(self, data):
            if not self.exploded:
                self.exploded = True
                self.inner.write(data[: len(data) // 2])
                self.inner.flush()
                raise OSError(28, "No space left on device")
            return self.inner.write(data)

        def __getattr__(self, name):
            return getattr(self.inner, name)

    wal = WriteAheadLog.create(tmp_path / "wal.log")
    wal.append(OP_ADD, [("Base", ("a", "b"))])
    real_file = wal._file
    wal._file = ExplodingFile(real_file)
    with pytest.raises(WALError, match="cannot append"):
        wal.append(OP_ADD, [("Base", ("c", "d"))])
    wal._file = real_file

    lsn = wal.append(OP_ADD, [("Base", ("e", "f"))])  # the disk recovered
    assert lsn == 2
    wal.close()
    from repro.serving import scan_wal
    scan = scan_wal(tmp_path / "wal.log")
    assert [record.lsn for record in scan.records] == [1, 2]
    assert scan.torn_reason is None  # no partial frame survived


def test_wal_without_snapshot_is_refused(tmp_path):
    """A WAL with no snapshot to replay onto must not be silently
    discarded by a bootstrap."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    daemon.apply_write(OP_ADD, [("Base", ("z", "b"))])
    daemon.stop()
    for snapshot in list(data_dir.glob("snapshot-*.snap")):
        snapshot.unlink()
    with pytest.raises(ServingError, match="no snapshot"):
        _recover(data_dir)


# -- group commit -------------------------------------------------------------


def test_group_commit_concurrent_writers_match_oracle(tmp_path):
    """Threads hammering apply_write concurrently: every write lands
    exactly once, the WAL is a gap-free LSN chain, live and recovered
    state both equal a clean replay of the durable records, and one fsync
    covers each commit batch."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    writers, per_writer = 8, 6
    errors: List[BaseException] = []

    def hammer(writer: int) -> None:
        try:
            for index in range(per_writer):
                daemon.apply_write(
                    OP_ADD, [("Base", (f"w{writer}n{index}", "b"))])
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(writer,))
               for writer in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert daemon.last_lsn == writers * per_writer

    records = _durable_records(data_dir)
    assert [record.lsn for record in records] == \
        list(range(1, writers * per_writer + 1))
    oracle = MaterializedProgram(parse_program(PROGRAM_TEXT))
    for record in records:
        _apply_item(oracle, (record.op, list(record.facts)))
    _assert_equals_oracle(daemon.backend.materialized, oracle)

    stats = daemon.serving_stats
    assert stats.wal_records == writers * per_writer
    assert 1 <= stats.commit_batches <= stats.wal_records
    assert stats.wal_fsyncs == stats.commit_batches  # one fsync per batch
    assert stats.degraded_retries == 0
    daemon.stop()

    recovered = _recover(data_dir)
    _assert_equals_oracle(recovered.backend.materialized, oracle)
    recovered.stop()


@pytest.mark.parametrize("engine", ENGINES)
def test_injected_crash_between_batch_fsync_and_ack(tmp_path, program_file,
                                                    engine):
    """Die between the group-commit batch fsync and the per-writer acks:
    every acknowledged write survives recovery, and the recovered state is
    exactly a clean replay of the durable records.  Unacked writes were
    never visible before the crash (apply follows durability), and only
    durable ones may surface after it."""
    crash_batch = 2 + (FAULT_SEED % 3)
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file,
                            fault=f"group-commit-durable:{crash_batch}",
                            engine=engine)
    writers, per_writer = 8, 25
    acked: List[Tuple[str, Tuple]] = []
    acked_lock = threading.Lock()

    def hammer(writer: int) -> None:
        try:
            client = ServingClient.connect(data_dir, wait=30.0)
        except DaemonUnavailableError:
            return  # the daemon died before this writer got in
        try:
            for index in range(per_writer):
                fact = ("Base", (f"w{writer}n{index}", "b"))
                try:
                    client.add_facts([fact])
                except (DaemonUnavailableError, ServingProtocolError):
                    return
                with acked_lock:
                    acked.append(fact)
        finally:
            client.close()

    try:
        threads = [threading.Thread(target=hammer, args=(writer,))
                   for writer in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert process.wait(timeout=30) == FAULT_EXIT_CODE
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
            process.wait(timeout=30)

    records = _durable_records(data_dir)
    durable_facts = {fact for record in records for fact in record.facts}
    assert len(acked) < writers * per_writer  # the crash landed mid-stream
    assert set(acked) <= durable_facts  # durability precedes every ack

    daemon = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT),
                                          engine=engine), data_dir)
    daemon.recover()
    oracle = MaterializedProgram(parse_program(PROGRAM_TEXT), engine=engine)
    for record in records:
        _apply_item(oracle, (record.op, list(record.facts)))
    _assert_equals_oracle(daemon.backend.materialized, oracle)
    base = daemon.backend.materialized.edb.relation("Base")
    for fact in acked:
        assert fact[1] in base  # every acked write survived recovery
    daemon.stop()


# -- segmented WAL ------------------------------------------------------------


def test_segments_rotate_prune_and_replay_older_snapshots(tmp_path):
    """Checkpoints rotate the WAL into fresh ``wal-<baselsn>.log`` segments
    and prune only segments no retained snapshot needs; recovery replays
    across the chain, and deleting the newest snapshot still recovers from
    an older one through multiple segments — the point of segmenting over
    truncate-and-rewrite."""
    data_dir = tmp_path / "data"
    daemon = ServingDaemon(
        ProgramBackend(parse_program(PROGRAM_TEXT)), data_dir,
        policy=CompactionPolicy(checkpoint_every_records=3,
                                keep_snapshots=2))
    daemon.recover()
    items = _stream(random.Random(4200 + FAULT_SEED), steps=10)
    for item in items:
        op, facts = item
        daemon.apply_write(op, list(facts))
    daemon.stop()

    segments = list_segments(data_dir)
    assert len(segments) >= 2  # rotation happened
    assert segments[0][0] > 0  # ...and pruning dropped covered segments
    # Chain invariant: each segment ends where its successor starts.
    for (base, path), (next_base, _) in zip(segments, segments[1:]):
        records = scan_wal(path).records
        assert (records[-1].lsn if records else base) == next_base

    recovered = _recover(data_dir)  # from the newest snapshot
    _assert_equals_oracle(recovered.backend.materialized,
                          _clean_replay(items, len(items)))
    recovered.stop()

    # The older retained snapshot's chain survived pruning: recovery from
    # it replays records across multiple segments.
    newest = latest_snapshot(data_dir)
    assert newest is not None
    newest[1].unlink()
    recovered = _recover(data_dir)
    assert recovered.recovery["replayed_records"] > 0
    _assert_equals_oracle(recovered.backend.materialized,
                          _clean_replay(items, len(items)))
    recovered.stop()


def test_rollback_fsyncs_even_without_sync(tmp_path, monkeypatch):
    """``rollback_to`` must fsync unconditionally: under ``--no-sync`` the
    truncate would otherwise live only in the OS cache, and a later crash
    could resurrect rolled-back frames on recovery."""
    from repro.serving import WriteAheadLog
    wal = WriteAheadLog.create(tmp_path / "wal.log", sync=False)
    frames = wal.append_batch([(OP_ADD, [("Base", ("a", "b"))]),
                               (OP_ADD, [("Base", ("c", "d"))])])
    synced: List[int] = []
    real_fsync = os.fsync

    def counting_fsync(fd):
        synced.append(fd)
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", counting_fsync)
    wal.rollback_to(frames[0].lsn, frames[1].offset)
    assert synced  # the truncate reached the disk despite sync=False
    wal.close()
    scan = scan_wal(tmp_path / "wal.log")
    assert [record.lsn for record in scan.records] == [1]
    assert scan.torn_reason is None


# -- lifecycle bugfixes -------------------------------------------------------


def test_stop_releases_connection_pins_and_closes_wal_once(tmp_path):
    """Stopping the daemon while a client still holds a pin must release
    that pin (no superseded version left uncollectable) and close the WAL
    exactly once; a second stop() is a no-op."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    daemon.start(host="127.0.0.1", port=0)
    try:
        client = ServingClient.connect(data_dir, wait=30.0)
        pinned = client.pin()
        daemon.apply_write(OP_ADD, [("Base", ("fresh", "b"))])  # supersede
        assert pinned in daemon.backend.versions.live_versions()
    finally:
        daemon.stop()
    assert daemon._wal is None  # closed exactly once, handle dropped
    # The connection's pin was released on stop: the superseded version
    # is collectable, only the latest survives.
    daemon.backend.versions.collect()
    assert pinned not in daemon.backend.versions.live_versions()
    daemon.stop()  # idempotent: nothing left to close, nothing raises
    assert client.unpin(pinned) is False  # daemon gone: tolerant unpin
    client.close()


def test_client_read_close_is_idempotent_and_survives_daemon_death(tmp_path):
    """ClientRead.close() twice is a no-op, unpin after the pin is gone
    reports False instead of raising, and a daemon death inside a read
    context must not mask the body's exception in ``__exit__``."""
    data_dir = tmp_path / "data"
    daemon = _recover(data_dir)
    daemon.start(host="127.0.0.1", port=0)
    client = ServingClient.connect(data_dir, wait=30.0)

    read = client.read()
    assert read.answers(QUERIES[1])
    read.close()
    read.close()  # idempotent: no second unpin is attempted
    assert client.unpin(read.version) is False  # already released

    # The daemon stops while a read is open: close() inside __exit__ hits
    # a dead socket, and the body's own exception must still surface.
    with pytest.raises(ValueError, match="the body's own error"):
        with client.read():
            daemon.stop()
            raise ValueError("the body's own error")
    client.close()
