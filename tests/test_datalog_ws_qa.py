"""Tests for DeterministicWSQAns, the paper's Section-IV algorithm.

The decisive property (asserted throughout): its answers coincide with the
chase-based certain answers on every program where the chase terminates.
"""

import pytest

from repro.datalog import parse_program, parse_query
from repro.datalog.answering import certain_answers, certainly_holds
from repro.datalog.ws_qa import (DeterministicWSQAns, deterministic_ws_answers,
                                 deterministic_ws_holds)


class TestBooleanQueries:
    def test_extensional_fact(self, small_program):
        assert deterministic_ws_holds(small_program,
                                      parse_query("? :- UnitWard('Standard', 'W1')."))

    def test_fact_absent(self, small_program):
        assert not deterministic_ws_holds(small_program,
                                          parse_query("? :- UnitWard('Terminal', 'W9')."))

    def test_derived_via_upward_rule(self, small_program):
        assert deterministic_ws_holds(small_program,
                                      parse_query("? :- PatientUnit('Standard', 'Sep/5', P)."))

    def test_derived_via_downward_rule_with_existential(self, small_program):
        assert deterministic_ws_holds(small_program,
                                      parse_query("? :- Shifts('W2', D, 'Mark', S)."))

    def test_existential_cannot_match_constant(self, small_program):
        # The shift value is a fresh null, never equal to 'night'.
        assert not deterministic_ws_holds(small_program,
                                          parse_query("? :- Shifts('W2', D, 'Mark', 'night')."))

    def test_join_in_query(self, small_program):
        query = parse_query(
            "? :- PatientUnit(U, 'Sep/5', 'Tom Waits'), WorkingSchedules(U, D, N, T).")
        assert deterministic_ws_holds(small_program, query)


class TestOpenQueries:
    def test_upward_navigation_answers(self, small_program):
        query = parse_query("?(U, P) :- PatientUnit(U, 'Sep/5', P).")
        assert deterministic_ws_answers(small_program, query) == (("Standard", "Tom Waits"),)

    def test_downward_navigation_answers(self, small_program):
        query = parse_query("?(D) :- Shifts('W1', D, 'Mark', S).")
        assert deterministic_ws_answers(small_program, query) == (("Sep/9",),)

    def test_null_valued_answer_variables_are_not_certain(self, small_program):
        query = parse_query("?(S) :- Shifts('W1', D, 'Mark', S).")
        assert deterministic_ws_answers(small_program, query) == ()

    def test_comparisons_are_applied(self, small_program):
        query = parse_query("?(P) :- PatientWard(W, D, P), D > 'Sep/5'.")
        assert deterministic_ws_answers(small_program, query) == (("Lou Reed",),)

    def test_statistics_are_collected(self, small_program):
        solver = DeterministicWSQAns(small_program)
        solver.answers(parse_query("?(D) :- Shifts('W1', D, 'Mark', S)."))
        assert solver.statistics.resolution_steps > 0
        assert solver.statistics.rule_applications >= 1
        assert solver.statistics.proofs_found >= 1


class TestAgreementWithChase:
    QUERIES = [
        "?(U, D, P) :- PatientUnit(U, D, P).",
        "?(W, D, N) :- Shifts(W, D, N, S).",
        "?(D) :- Shifts('W2', D, 'Mark', S).",
        "? :- PatientUnit('Intensive', 'Sep/6', 'Lou Reed').",
        "? :- PatientUnit('Intensive', 'Sep/5', 'Tom Waits').",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_agrees_with_certain_answers(self, small_program, query_text):
        query = parse_query(query_text)
        if query.is_boolean():
            assert deterministic_ws_holds(small_program, query) == \
                certainly_holds(small_program, query)
        else:
            assert deterministic_ws_answers(small_program, query) == \
                certain_answers(small_program, query)

    def test_agrees_on_multi_head_form_10_rule(self):
        program = parse_program("""
            exists U : InstitutionUnit(I, U), PatientUnit(U, D, P) :- Discharge(I, D, P).
            Discharge(h1, sep9, tom).
        """)
        boolean = parse_query("? :- PatientUnit(U, sep9, tom), InstitutionUnit(h1, U).")
        assert deterministic_ws_holds(program, boolean)
        assert certainly_holds(program, boolean)
        open_query = parse_query("?(P) :- PatientUnit(U, sep9, P).")
        assert deterministic_ws_answers(program, open_query) == \
            certain_answers(program, open_query) == (("tom",),)

    def test_agrees_on_hospital_ontology(self, hospital_ontology):
        queries = [
            "?(D) :- Shifts('W1', D, 'Mark', S).",
            "?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').",
            "? :- PatientUnit('Standard', 'Sep/6', 'Tom Waits').",
        ]
        program = hospital_ontology.program()
        for text in queries:
            query = parse_query(text)
            if query.is_boolean():
                assert deterministic_ws_holds(program, query) == \
                    certainly_holds(program, query)
            else:
                assert deterministic_ws_answers(program, query) == \
                    certain_answers(program, query)


class TestDepthBound:
    def test_small_depth_misses_deep_proofs(self):
        program = parse_program("""
            B(X) :- A(X).
            C(X) :- B(X).
            D(X) :- C(X).
            A(a).
        """)
        query = parse_query("? :- D(a).")
        assert not deterministic_ws_holds(program, query, max_depth=1)
        assert deterministic_ws_holds(program, query, max_depth=5)

    def test_depth_cutoffs_counted(self):
        program = parse_program("""
            B(X) :- A(X).
            C(X) :- B(X).
            A(a).
        """)
        solver = DeterministicWSQAns(program, max_depth=1)
        solver.holds(parse_query("? :- C(a)."))
        assert solver.statistics.depth_cutoffs >= 1
