"""Paper-reproduction tests: every table, figure and worked example.

Each test class corresponds to one experiment of the benchmark harness
(``benchmarks/test_eXX_*.py``) and checks the *shape* the paper reports
(exact tuples for the tables, derivability and navigation behaviour for
the examples).
"""

import pytest

from repro.hospital import (MEASUREMENTS_QUALITY_ROWS,
                            MEASUREMENTS_ROWS, build_md_instance, build_ontology,
                            build_upward_only_ontology)
from repro.md.validation import validate_md_instance
from repro.relational.values import Null


class TestTable1And2QualityVersion:
    """E1 — Tables I/II, Examples 1 and 7, Fig. 2."""

    def test_measurements_matches_table_1(self, hospital_scenario):
        stored = set(hospital_scenario.measurements.relation("Measurements"))
        assert stored == set(MEASUREMENTS_ROWS)
        assert len(stored) == 6

    def test_quality_version_is_exactly_table_2(self, hospital_scenario):
        quality = hospital_scenario.quality_measurements()
        assert set(quality) == set(MEASUREMENTS_QUALITY_ROWS)
        assert len(quality) == 2

    def test_doctor_query_quality_answer(self, hospital_scenario):
        assert hospital_scenario.quality_answers_to_doctor_query() == (
            ("Sep/5-12:10", "Tom Waits", 38.2),)

    def test_direct_answers_over_report(self, hospital_scenario):
        comparison = hospital_scenario.compare_doctor_query()
        # Within the narrow time window the direct and quality answers agree;
        # over the whole relation the direct answers over-report (4 vs 2).
        from repro.quality.cleaning import compare_answers
        broad = compare_answers(hospital_scenario.context, hospital_scenario.measurements,
                                "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        assert len(broad.direct) == 4 and len(broad.quality) == 2
        assert comparison.precision == 1.0

    def test_quality_ratio_of_measurements(self, hospital_scenario):
        assessment = hospital_scenario.assess()
        assert assessment.relations["Measurements"].quality_ratio == pytest.approx(1 / 3)


class TestExample2And5DownwardNavigation:
    """E2 — Tables III/IV, Examples 2 and 5 (rule (8))."""

    def test_extensional_shifts_has_no_answer_for_mark(self, hospital_md):
        shifts = hospital_md.relation("Shifts")
        assert not [row for row in shifts if row[2] == "Mark"]

    def test_mark_shift_in_w1_is_sep9(self, hospital_scenario):
        assert hospital_scenario.mark_shift_answers("W1") == (("Sep/9",),)

    def test_mark_shift_in_w2_is_sep9(self, hospital_scenario):
        assert hospital_scenario.mark_shift_answers("W2") == (("Sep/9",),)

    def test_generated_shift_value_is_a_fresh_null(self, hospital_ontology):
        rows = hospital_ontology.answers_with_nulls(
            "?(S) :- Shifts('W1', D, 'Mark', S).")
        assert len(rows) == 1 and isinstance(rows[0][0], Null)

    def test_unit_drills_down_to_both_wards(self, hospital_ontology):
        chased = hospital_ontology.chase().instance.relation("Shifts")
        mark_wards = {row[0] for row in chased if row[2] == "Mark"}
        assert mark_wards == {"W1", "W2"}

    def test_ws_algorithm_agrees(self, hospital_ontology):
        assert hospital_ontology.ws_answers("?(D) :- Shifts('W1', D, 'Mark', S).") == \
            (("Sep/9",),)


class TestExample4Constraints:
    """E3 — Example 4: referential constraints, EGD (6), closure constraint."""

    def test_ontology_without_closure_is_consistent(self, hospital_ontology):
        assert hospital_ontology.is_consistent()

    def test_closure_constraint_flags_third_patient_ward_tuple(self):
        ontology = build_ontology(include_closure_constraints=True)
        result = ontology.check_consistency()
        assert not result.is_consistent
        witness = result.violations[0].witness
        assert witness["W"] == "W3" and witness["P"] == "Lou Reed"

    def test_thermometer_egd_is_satisfied_by_paper_data(self, hospital_ontology):
        # the chase applies EGD (6) without conflicts on the reconstructed data
        assert hospital_ontology.chase().egd_merges == 0

    def test_thermometer_egd_detects_injected_violation(self):
        md = build_md_instance()
        md.database.add("Thermometer", ("W2", "B2", "Cathy"))  # W1/W2 now disagree
        ontology = build_ontology(md)
        from repro.errors import EGDConflictError
        with pytest.raises(EGDConflictError):
            ontology.chase(refresh=True)

    def test_referential_constraint_flags_unknown_ward(self):
        md = build_md_instance()
        md.database.add("PatientWard", ("W99", "Sep/5", "Ghost"))
        ontology = build_ontology(md)
        assert not ontology.check_consistency().is_consistent


class TestExample6DisjunctiveDischarge:
    """E4 — Table V, Example 6 (form-(10) rule (9))."""

    def test_discharge_generates_patient_unit_with_null_unit(self, hospital_ontology):
        chased = hospital_ontology.chase().instance
        tom_units = [row for row in chased.relation("PatientUnit")
                     if row[2] == "Tom Waits" and row[1] == "Sep/9"]
        assert any(isinstance(row[0], Null) for row in tom_units)

    def test_discharge_also_populates_institution_unit_edge(self, hospital_ontology):
        chased = hospital_ontology.chase().instance
        generated = [row for row in chased.relation("InstitutionUnit")
                     if isinstance(row[1], Null)]
        assert generated  # H1/H2 linked to the unknown units

    def test_unknown_unit_is_not_a_certain_answer(self, hospital_ontology):
        # Elvis Costello only appears through DischargePatients, so his unit
        # is a chase-invented null and there is no certain unit answer —
        # while the boolean query "was he in *some* unit" does hold.
        answers = hospital_ontology.certain_answers(
            "?(U) :- PatientUnit(U, 'Oct/5', 'Elvis Costello').")
        assert answers == ()

    def test_elvis_costello_known_only_through_discharge(self, hospital_ontology):
        assert hospital_ontology.holds(
            "? :- PatientUnit(U, 'Oct/5', 'Elvis Costello').")

    def test_without_rule_9_no_discharge_propagation(self):
        ontology = build_ontology(include_rule_9=False)
        assert not ontology.holds("? :- PatientUnit(U, 'Oct/5', 'Elvis Costello').")


class TestFig1MDModel:
    """E5 — Fig. 1: the extended MD model itself."""

    def test_dimension_schemas(self, hospital_md):
        hospital = hospital_md.dimension("Hospital").schema
        time = hospital_md.dimension("Time").schema
        assert hospital.is_above("Institution", "Ward")
        assert time.is_above("Year", "Time")
        assert hospital.bottom_categories() == {"Ward"}
        assert time.bottom_categories() == {"Time"}

    def test_member_hierarchy(self, hospital_md):
        hospital = hospital_md.dimension("Hospital")
        assert hospital.roll_up("W1", "Ward", "Institution") == {"H1"}
        assert hospital.drill_down("Standard", "Unit", "Ward") == {"W1", "W2"}

    def test_categorical_relations_linked_to_expected_categories(self, hospital_md):
        patient_ward = hospital_md.relation_schema("PatientWard")
        assert patient_ward.categorical_attribute("Ward").category == "Ward"
        working = hospital_md.relation_schema("WorkingSchedules")
        assert working.categorical_attribute("Unit").category == "Unit"
        discharge = hospital_md.relation_schema("DischargePatients")
        assert discharge.categorical_attribute("Institution").category == "Institution"

    def test_model_is_valid(self, hospital_md):
        assert validate_md_instance(hospital_md).is_valid


class TestSection3Claims:
    """E6 — Section III: weak stickiness and separability of the MD ontology."""

    def test_weak_stickiness(self, hospital_ontology):
        assert hospital_ontology.is_weakly_sticky()

    def test_not_sticky(self, hospital_ontology):
        assert not hospital_ontology.analysis().class_report.is_sticky

    def test_separability_of_egd_6(self, hospital_ontology):
        assert hospital_ontology.analysis().is_separable

    def test_upward_only_fragment_detected(self):
        assert build_upward_only_ontology().is_upward_only()

    def test_full_ontology_not_upward_only(self, hospital_ontology):
        assert not hospital_ontology.is_upward_only()


class TestSection4QueryAnswering:
    """E7/E8 — Section IV: the three query-answering routes agree."""

    QUERIES = [
        "?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').",
        "?(U, D) :- PatientUnit(U, D, 'Lou Reed').",
        "?(D) :- Shifts('W2', D, 'Mark', S).",
        "?(W, D, N) :- Shifts(W, D, N, S).",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_ws_agrees_with_chase(self, hospital_ontology, query):
        assert hospital_ontology.ws_answers(query) == \
            hospital_ontology.certain_answers(query)

    def test_rewriting_agrees_on_upward_fragment(self):
        ontology = build_upward_only_ontology()
        for query in ["?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').",
                      "?(U, D, P) :- PatientUnit(U, D, P).",
                      "?(P) :- PatientUnit('Intensive', D, P)."]:
            assert ontology.rewrite_answers(query) == ontology.certain_answers(query)
