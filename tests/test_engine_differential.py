"""Differential tests: the indexed engine ≡ the naive reference oracle.

The indexed matching engine (hash-index probes, selectivity-ordered joins,
delta-driven chase rounds) must be observationally identical to the naive
row-scanning reference in ``repro.datalog.unify``.  These tests assert that
on the seed programs and on randomized programs:

* **plain Datalog** (no existentials, no nulls): the least models must be
  *exactly* equal, for both the delta chase and semi-naive evaluation;
* **existential programs** (stratified, hence terminating): the ground
  (null-free) facts and the certain answers of randomized queries must
  coincide; null counts per relation must match;
* **EGD programs**: merges and hard conflicts must behave identically;
* **generated MD workloads** (``workloads/generator.py``): chase-based
  certain answers of the workload query batch must coincide.

Every generator is seeded, so failures reproduce deterministically.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.datalog import DatalogProgram, chase, evaluate_plain_datalog, parse_query
from repro.datalog.answering import certain_answers, evaluate_query
from repro.datalog.atoms import Atom
from repro.datalog.rules import EGD, ConjunctiveQuery, TGD
from repro.datalog.terms import Variable
from repro.errors import EGDConflictError
from repro.relational.instance import DatabaseInstance
from repro.relational.values import Null
from repro.workloads import WorkloadSpec, generate_workload

CONSTANTS = [f"c{i}" for i in range(10)]
VARIABLES = [Variable(f"X{i}") for i in range(5)]


# -- randomized program generators -------------------------------------------


def _random_atom(rng: random.Random, predicate: str, arity: int,
                 variables: List[Variable]) -> Atom:
    terms = []
    for _ in range(arity):
        if rng.random() < 0.15:
            terms.append(rng.choice(CONSTANTS))
        else:
            terms.append(rng.choice(variables))
    return Atom(predicate, terms)


def _random_program(seed: int, existential: bool) -> DatalogProgram:
    """A random program over a stratified predicate hierarchy.

    Rule heads always use a predicate strictly above every body predicate,
    so the program is non-recursive and its chase terminates even with
    existential variables.
    """
    rng = random.Random(seed)
    arities = {}
    predicates = []
    for index in range(rng.randint(4, 7)):
        name = f"P{index}"
        predicates.append(name)
        arities[name] = rng.randint(1, 3)

    database = DatabaseInstance()
    edb = predicates[: rng.randint(2, 3)]
    for name in edb:
        relation = database.declare(name, [f"a{i}" for i in range(arities[name])])
        for _ in range(rng.randint(3, 10)):
            relation.add(tuple(rng.choice(CONSTANTS) for _ in range(arities[name])))

    tgds = []
    for _ in range(rng.randint(2, 6)):
        head_index = rng.randint(len(edb), len(predicates) - 1)
        head_predicate = predicates[head_index]
        body_atoms = []
        for _ in range(rng.randint(1, 3)):
            body_predicate = predicates[rng.randint(0, head_index - 1)]
            body_atoms.append(_random_atom(rng, body_predicate,
                                           arities[body_predicate], VARIABLES))
        body_variables = [v for atom in body_atoms for v in atom.variables()]
        if not body_variables:
            continue
        head_terms: List[object] = [rng.choice(body_variables)
                                    for _ in range(arities[head_predicate])]
        if existential and rng.random() < 0.5:
            head_terms[rng.randrange(len(head_terms))] = Variable("Z_exists")
        tgds.append(TGD([Atom(head_predicate, head_terms)], body_atoms))
    return DatalogProgram(tgds=tgds, database=database)


def _random_queries(rng: random.Random, program: DatalogProgram,
                    count: int = 3) -> List[ConjunctiveQuery]:
    arities = program.predicate_arities()
    predicates = sorted(arities)
    queries = []
    for _ in range(count):
        body = [_random_atom(rng, predicate, arities[predicate], VARIABLES)
                for predicate in rng.sample(predicates, k=min(2, len(predicates)))]
        variables = [v for atom in body for v in atom.variables()]
        if not variables:
            continue
        answer = rng.sample(variables, k=min(rng.randint(1, 2), len(variables)))
        queries.append(ConjunctiveQuery(answer, body))
    return queries


def _ground_facts(instance: DatabaseInstance):
    return {
        (relation.schema.name, row)
        for relation in instance
        for row in relation
        if not any(isinstance(value, Null) for value in row)
    }


def _null_profile(instance: DatabaseInstance):
    return {relation.schema.name: (len(relation), len(relation.nulls()))
            for relation in instance}


# -- plain Datalog: exact least-model equality --------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_plain_datalog_chase_identical(seed):
    """Delta chase ≡ naive chase, exactly, on 50 randomized plain programs."""
    program = _random_program(seed, existential=False)
    indexed = chase(program, engine="indexed", check_constraints=False)
    naive = chase(program, engine="naive", check_constraints=False)
    assert indexed.instance == naive.instance
    assert indexed.steps == naive.steps


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_plain_datalog_seminaive_identical(seed):
    """Semi-naive evaluation agrees across engines and with the chase."""
    program = _random_program(seed, existential=False)
    indexed = evaluate_plain_datalog(program.tgds, program.database, engine="indexed")
    naive = evaluate_plain_datalog(program.tgds, program.database, engine="naive")
    assert indexed == naive
    assert indexed == chase(program, check_constraints=False).instance


# -- existential programs: ground facts + certain answers ---------------------


@pytest.mark.parametrize("seed", range(100, 115))
def test_existential_chase_ground_equivalent(seed):
    """Ground facts, null profiles and certain answers coincide."""
    program = _random_program(seed, existential=True)
    indexed = chase(program, engine="indexed", check_constraints=False)
    naive = chase(program, engine="naive", check_constraints=False)
    assert _ground_facts(indexed.instance) == _ground_facts(naive.instance)
    assert _null_profile(indexed.instance) == _null_profile(naive.instance)
    rng = random.Random(seed)
    for query in _random_queries(rng, program):
        assert evaluate_query(query, indexed.instance, engine="indexed") == \
            evaluate_query(query, naive.instance, engine="naive")


@pytest.mark.parametrize("seed", range(200, 210))
def test_query_evaluation_identical_on_same_instance(seed):
    """Indexed and naive query evaluation agree atom for atom."""
    program = _random_program(seed, existential=True)
    result = chase(program, check_constraints=False)
    rng = random.Random(seed)
    for query in _random_queries(rng, program, count=5):
        indexed = evaluate_query(query, result.instance, allow_nulls=True,
                                 engine="indexed")
        naive = evaluate_query(query, result.instance, allow_nulls=True,
                               engine="naive")
        assert indexed == naive


# -- EGDs: merges and conflicts ----------------------------------------------


@pytest.mark.parametrize("seed", range(300, 310))
def test_egd_behaviour_identical(seed):
    """EGD merges/conflicts are engine-independent (functional dependency)."""
    program = _random_program(seed, existential=True)
    target = sorted(program.predicate_arities().items())[-1]
    name, arity = target
    if arity < 2:
        pytest.skip("needs a binary+ predicate for a functional dependency")
    x, y = Variable("FD_x"), Variable("FD_y")
    key = [Variable(f"K{i}") for i in range(arity - 1)]
    egd = EGD(x, y, [Atom(name, key + [x]), Atom(name, key + [y])])
    program.add_egd(egd)

    outcomes = {}
    for engine in ("indexed", "naive"):
        try:
            result = chase(program, engine=engine, check_constraints=False)
            outcomes[engine] = ("ok", _ground_facts(result.instance),
                                result.egd_merges > 0)
        except EGDConflictError:
            outcomes[engine] = ("conflict", None, None)
    assert outcomes["indexed"] == outcomes["naive"]


def test_egd_null_merge_uses_occurrence_index():
    """A null merged by an EGD disappears everywhere, with rewrite stats."""
    from repro.datalog import parse_program
    program = parse_program("""
        exists Z : HasType(X, Z) :- Item(X).
        Derived(X, T) :- HasType(X, T).
        T = T2 :- HasType(X, T), Declared(X, T2).
        Item(i1).
        Declared(i1, widget).
    """)
    indexed = chase(program, engine="indexed")
    naive = chase(program, engine="naive")
    assert _ground_facts(indexed.instance) == _ground_facts(naive.instance)
    assert not indexed.instance.nulls()
    assert indexed.stats.rows_rewritten >= 1


# -- generated MD workloads ---------------------------------------------------


@pytest.mark.parametrize("seed", [7, 21])
def test_workload_certain_answers_identical(seed):
    """Chase-based certain answers agree on generated MD workloads."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=20, upward_rules=True,
        downward_rules=True, seed=seed))
    program = workload.ontology.program()
    indexed = chase(program, engine="indexed", check_constraints=False)
    naive = chase(program, engine="naive", check_constraints=False)
    assert _ground_facts(indexed.instance) == _ground_facts(naive.instance)
    for query in workload.queries:
        assert certain_answers(program, query, chase_result=indexed) == \
            certain_answers(program, query, chase_result=naive)


def test_seed_program_chase_identical(small_program):
    """The seed fixture program chases identically on both engines."""
    indexed = chase(small_program, engine="indexed")
    naive = chase(small_program, engine="naive")
    assert _ground_facts(indexed.instance) == _ground_facts(naive.instance)
    assert _null_profile(indexed.instance) == _null_profile(naive.instance)
    assert indexed.steps == naive.steps
    assert len(indexed.generated_nulls()) == len(naive.generated_nulls())


def test_comparison_queries_identical(small_program):
    """Queries with built-in comparisons agree across engines."""
    result = chase(small_program, check_constraints=False)
    query = parse_query("?(U, P) :- PatientUnit(U, D, P), D >= 'Sep/5'.")
    assert evaluate_query(query, result.instance, engine="indexed") == \
        evaluate_query(query, result.instance, engine="naive")
