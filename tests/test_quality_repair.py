"""Tests for constraint-driven repair of categorical relations."""


from repro.hospital import build_md_instance, build_ontology
from repro.quality.repair import repair_md_instance


class TestRepair:
    def test_consistent_ontology_needs_no_repair(self):
        ontology = build_ontology()
        report = repair_md_instance(ontology)
        assert report.clean
        assert report.removed == []
        assert "no repairs" in str(report)

    def test_closure_constraint_removes_third_patient_ward_tuple(self):
        ontology = build_ontology(include_closure_constraints=True)
        before = len(ontology.md.relation("PatientWard"))
        report = repair_md_instance(ontology)
        assert report.clean
        assert ("W3", "Sep/6", "Lou Reed") in report.removed_from("PatientWard")
        assert len(ontology.md.relation("PatientWard")) == before - 1
        # after the repair, the ontology is consistent
        assert ontology.check_consistency().is_consistent

    def test_referential_violation_removed(self):
        md = build_md_instance()
        md.database.add("PatientWard", ("W99", "Sep/5", "Ghost"))
        ontology = build_ontology(md)
        report = repair_md_instance(ontology)
        assert report.clean
        assert ("W99", "Sep/5", "Ghost") in report.removed_from("PatientWard")
        # the legitimate tuples survive
        assert ("W1", "Sep/5", "Tom Waits") in ontology.md.relation("PatientWard")

    def test_repair_preserves_quality_pipeline(self):
        ontology = build_ontology(include_closure_constraints=True)
        repair_md_instance(ontology)
        # After cleaning, rule (7) still derives the standard-unit stays.
        answers = ontology.certain_answers(
            "?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').")
        assert answers == (("Standard",),)

    def test_report_rendering(self):
        ontology = build_ontology(include_closure_constraints=True)
        report = repair_md_instance(ontology)
        assert "PatientWard" in str(report)
        assert report.iterations >= 1
