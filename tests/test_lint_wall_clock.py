"""The lint pass's un-floored wall-clock assertion check (tools/lint.py)."""

from __future__ import annotations

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

from lint import lint_file  # noqa: E402


def _wall_clock_issues(tmp_path, source: str):
    # The check only applies under tests/ or benchmarks/ roots.
    target = tmp_path / "tests" / "test_sample.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return [issue for issue in lint_file(target) if "wall-clock" in issue]


def test_flags_bare_constant_comparison(tmp_path):
    issues = _wall_clock_issues(tmp_path, (
        "import time\n"
        "def test_x():\n"
        "    start = time.monotonic()\n"
        "    elapsed = time.monotonic() - start\n"
        "    assert elapsed < 10.0\n"))
    assert len(issues) == 1 and ":5:" in issues[0]


def test_taint_flows_through_assignments(tmp_path):
    issues = _wall_clock_issues(tmp_path, (
        "import time\n"
        "def test_x():\n"
        "    start = time.perf_counter()\n"
        "    end = time.perf_counter()\n"
        "    delta = end - start\n"
        "    doubled = delta * 2\n"
        "    assert doubled < 3\n"))
    assert len(issues) == 1


def test_floored_budget_passes(tmp_path):
    issues = _wall_clock_issues(tmp_path, (
        "import time\n"
        "def test_x():\n"
        "    budget = max(10.0, 3 * 0.8)\n"
        "    start = time.monotonic()\n"
        "    elapsed = time.monotonic() - start\n"
        "    assert elapsed < budget\n"))
    assert issues == []


def test_suppression_comment_passes(tmp_path):
    issues = _wall_clock_issues(tmp_path, (
        "import time\n"
        "def test_x():\n"
        "    elapsed = time.time() - 0\n"
        "    # wall-clock: ok — smoke bound, orders of magnitude slack\n"
        "    assert elapsed < 600\n"))
    assert issues == []


def test_non_timing_constants_pass(tmp_path):
    issues = _wall_clock_issues(tmp_path, (
        "def test_x():\n"
        "    count = 4\n"
        "    assert count < 10\n"))
    assert issues == []


def test_only_tests_and_benchmarks_are_checked(tmp_path):
    source = ("import time\n"
              "start = time.monotonic()\n"
              "elapsed = time.monotonic() - start\n"
              "assert elapsed < 1.0\n")
    target = tmp_path / "src" / "module.py"
    target.parent.mkdir(parents=True)
    target.write_text(source, encoding="utf-8")
    assert [issue for issue in lint_file(target)
            if "wall-clock" in issue] == []
