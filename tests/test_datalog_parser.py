"""Tests for the Datalog± textual syntax parser."""

import pytest

from repro.errors import ParseError
from repro.datalog.atoms import Atom
from repro.datalog.parser import (parse_atom, parse_program, parse_query, parse_rule,
                                  parse_statements)
from repro.datalog.rules import EGD, ConjunctiveQuery, NegativeConstraint, TGD
from repro.datalog.terms import Constant, Variable


class TestTerms:
    def test_uppercase_is_variable_lowercase_is_constant(self):
        atom = parse_atom("R(X, abc)")
        assert atom.terms == (Variable("X"), Constant("abc"))

    def test_quoted_strings_are_constants(self):
        atom = parse_atom("R('Tom Waits', \"W1\")")
        assert atom.terms == (Constant("Tom Waits"), Constant("W1"))

    def test_numbers(self):
        atom = parse_atom("R(3, 38.2, -1)")
        assert atom.terms == (Constant(3), Constant(38.2), Constant(-1))

    def test_underscore_starts_variable(self):
        atom = parse_atom("R(_x)")
        assert atom.terms == (Variable("_x"),)


class TestRules:
    def test_plain_tgd(self):
        rule = parse_rule("PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).")
        assert isinstance(rule, TGD)
        assert not rule.is_existential()
        assert rule.body_predicates() == {"PatientWard", "UnitWard"}

    def test_implicit_existential(self):
        rule = parse_rule("Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).")
        assert isinstance(rule, TGD)
        assert rule.existential_variables() == [Variable("Z")]

    def test_explicit_existential_prefix(self):
        rule = parse_rule(
            "exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).")
        assert rule.existential_variables() == [Variable("Z")]

    def test_wrong_existential_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("exists W : Shifts(W, D) :- WorkingSchedules(W, D).")

    def test_multi_atom_head(self):
        rule = parse_rule(
            "exists U : InstitutionUnit(I, U), PatientUnit(U, D, P) :- DischargePatients(I, D, P).")
        assert isinstance(rule, TGD)
        assert len(rule.head) == 2
        assert rule.existential_variables() == [Variable("U")]

    def test_egd(self):
        rule = parse_rule("T = T2 :- Thermometer(W, T, N), Thermometer(W2, T2, N2).")
        assert isinstance(rule, EGD)

    def test_negative_constraint(self):
        rule = parse_rule("false :- PatientUnit(U, D, P), not Unit(U).")
        assert isinstance(rule, NegativeConstraint)
        assert len(rule.negative_atoms()) == 1

    def test_negative_constraint_with_comparison(self):
        rule = parse_rule("false :- PatientWard(W, D, P), MonthDay(M, D), M > '2005-08'.")
        assert isinstance(rule, NegativeConstraint)
        assert len(rule.comparisons) == 1

    def test_arrow_variants(self):
        for arrow in (":-", "<-", "←"):
            rule = parse_rule(f"P(X) {arrow} Q(X).")
            assert isinstance(rule, TGD)

    def test_comments_are_skipped(self):
        statements = parse_statements("% a comment\nP(X) :- Q(X).  # trailing\n")
        assert len(statements) == 1

    def test_fact_parsing(self):
        statements = parse_statements("UnitWard('Standard', 'W1').")
        assert statements == [Atom("UnitWard", ["Standard", "W1"])]

    def test_fact_with_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("UnitWard(X, 'W1').")

    def test_parse_rule_rejects_facts(self):
        with pytest.raises(ParseError):
            parse_rule("UnitWard('Standard', 'W1').")

    def test_unterminated_statement(self):
        with pytest.raises(ParseError):
            parse_statements("P(X) :- Q(X)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("P(X) :- @Q(X).")


class TestQueries:
    def test_open_query(self):
        query = parse_query("?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        assert isinstance(query, ConjunctiveQuery)
        assert [v.name for v in query.answer_variables] == ["T", "P", "V"]
        assert len(query.comparisons) == 1

    def test_boolean_query(self):
        query = parse_query("? :- Shifts('W1', D, 'Mark', S).")
        assert query.is_boolean()

    def test_ans_syntax(self):
        query = parse_query("ans(X) :- R(X, Y).")
        assert query.answer_variables == (Variable("X"),)

    def test_range_comparisons(self):
        query = parse_query("?(T) :- M(T, P), T >= 'Sep/5-11:45', T <= 'Sep/5-12:15'.")
        assert len(query.comparisons) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("?(X) :- R(X). S(Y).")

    def test_query_requires_marker(self):
        with pytest.raises(ParseError):
            parse_query("R(X) :- S(X).")


class TestProgram:
    def test_parse_program_loads_rules_and_facts(self):
        program = parse_program("""
            PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
            T = T2 :- Th(W, T), Th(W, T2).
            false :- PatientUnit(U, D, P), not Unit(U).
            UnitWard('Standard', 'W1').
            PatientWard('W1', 'Sep/5', 'Tom Waits').
        """)
        assert len(program.tgds) == 1
        assert len(program.egds) == 1
        assert len(program.constraints) == 1
        assert program.database.total_tuples() == 2

    def test_round_trip_through_str(self):
        rule = parse_rule("P(X, Z) :- Q(X, Y), R(Y, Z).")
        reparsed = parse_rule(str(rule) + ".")
        assert reparsed == rule
