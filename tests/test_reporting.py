"""Tests for the text/Markdown report renderers."""


from repro.md.validation import ValidationReport
from repro.quality.cleaning import compare_answers
from repro.reporting import (render_analysis, render_assessment, render_comparison,
                             render_key_values, render_relation, render_table,
                             render_validation)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "bbbb"), [(1, 2), ("xxx", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "xxx" in lines[3]

    def test_markdown_mode(self):
        text = render_table(("a", "b"), [(1, 2)], markdown=True)
        assert text.splitlines()[0].startswith("| a")
        assert set(text.splitlines()[1]) <= {"|", "-"}

    def test_empty_rows(self):
        text = render_table(("a",), [])
        assert "a" in text


class TestRenderers:
    def test_render_relation(self, hospital_scenario):
        text = render_relation(hospital_scenario.measurements.relation("Measurements"))
        assert "Tom Waits" in text and "Time" in text

    def test_render_relation_limit(self, hospital_scenario):
        text = render_relation(hospital_scenario.measurements.relation("Measurements"),
                               limit=2)
        assert text.count("Tom Waits") <= 2

    def test_render_analysis(self, hospital_ontology):
        text = render_analysis(hospital_ontology.analysis())
        assert "weakly_sticky" in text
        assert "rule (7)" in text

    def test_render_analysis_markdown(self, hospital_ontology):
        text = render_analysis(hospital_ontology.analysis(), markdown=True)
        assert "| property" in text

    def test_render_validation_valid(self, hospital_md):
        from repro.md.validation import validate_md_instance
        assert "passed" in render_validation(validate_md_instance(hospital_md))

    def test_render_validation_with_issues(self):
        report = ValidationReport()
        report.add("non_strict", "Ward:W1", "rolls up twice", dimension="Hospital")
        text = render_validation(report)
        assert "non_strict" in text and "Hospital" in text

    def test_render_assessment(self, hospital_scenario):
        text = render_assessment(hospital_scenario.assess())
        assert "Measurements" in text and "TOTAL" in text
        markdown = render_assessment(hospital_scenario.assess(), markdown=True)
        assert markdown.startswith("| relation")

    def test_render_comparison(self, hospital_scenario):
        comparison = compare_answers(
            hospital_scenario.context, hospital_scenario.measurements,
            "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits'.")
        text = render_comparison(comparison)
        assert "precision" in text
        assert text.count("yes") == 2 and text.count("no") >= 2

    def test_render_key_values(self):
        text = render_key_values({"facts": 10, "rules": 3})
        assert "facts" in text and "10" in text
