"""Differential tests: incremental session updates ≡ from-scratch chases.

A :class:`~repro.engine.session.MaterializedProgram` that absorbs a
sequence of ``add_facts``/``retract_facts`` updates must end up
observationally identical to chasing the updated EDB from scratch:

* identical **ground facts** (the ground facts of any restricted-chase
  result are exactly the entailed ground atoms, so they are order- and
  strategy-independent);
* identical **certain answers** on randomized conjunctive queries;
* identical **EGD behaviour** (merges and hard conflicts).

The programs, update sequences and queries are all seeded, the sequences
interleave inserts and retractions (including re-inserting previously
retracted facts), and everything runs on both engines — the naive engine
exercises the full-recomputation continuation, the indexed engine the
delta/provenance machinery.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.datalog import DatalogProgram, chase
from repro.datalog.answering import certain_answers
from repro.datalog.atoms import Atom
from repro.datalog.rules import EGD, ConjunctiveQuery, TGD
from repro.datalog.terms import Variable
from repro.engine.session import MaterializedProgram
from repro.errors import EGDConflictError
from repro.relational.instance import DatabaseInstance
from repro.relational.values import Null
from repro.workloads import (WorkloadSpec, generate_update_stream,
                             generate_workload)

CONSTANTS = [f"c{i}" for i in range(8)]
VARIABLES = [Variable(f"X{i}") for i in range(5)]

ENGINES = ("indexed", "naive")


# -- randomized programs and update sequences ---------------------------------


def _random_atom(rng: random.Random, predicate: str, arity: int) -> Atom:
    terms = []
    for _ in range(arity):
        if rng.random() < 0.15:
            terms.append(rng.choice(CONSTANTS))
        else:
            terms.append(rng.choice(VARIABLES))
    return Atom(predicate, terms)


def _random_program(seed: int, existential: bool) -> DatalogProgram:
    """A random stratified program (same family as the engine differential)."""
    rng = random.Random(seed)
    arities = {}
    predicates = []
    for index in range(rng.randint(4, 7)):
        name = f"P{index}"
        predicates.append(name)
        arities[name] = rng.randint(1, 3)

    database = DatabaseInstance()
    edb = predicates[: rng.randint(2, 3)]
    for name in edb:
        relation = database.declare(name, [f"a{i}" for i in range(arities[name])])
        for _ in range(rng.randint(3, 10)):
            relation.add(tuple(rng.choice(CONSTANTS) for _ in range(arities[name])))

    tgds = []
    for _ in range(rng.randint(2, 6)):
        head_index = rng.randint(len(edb), len(predicates) - 1)
        head_predicate = predicates[head_index]
        body_atoms = []
        for _ in range(rng.randint(1, 3)):
            body_predicate = predicates[rng.randint(0, head_index - 1)]
            body_atoms.append(
                _random_atom(rng, body_predicate, arities[body_predicate]))
        body_variables = [v for atom in body_atoms for v in atom.variables()]
        if not body_variables:
            continue
        head_terms: List[object] = [rng.choice(body_variables)
                                    for _ in range(arities[head_predicate])]
        if existential and rng.random() < 0.5:
            head_terms[rng.randrange(len(head_terms))] = Variable("Z_exists")
        tgds.append(TGD([Atom(head_predicate, head_terms)], body_atoms))
    return DatalogProgram(tgds=tgds, database=database)


def _random_updates(rng: random.Random, program: DatalogProgram,
                    steps: int) -> List[Tuple[str, List[Tuple[str, Tuple]]]]:
    """A seeded sequence of ("add"/"retract", facts) update batches.

    Inserts invent new EDB rows; retractions draw from the simulated
    current extension, so later steps can retract facts added earlier and
    re-insert facts retracted earlier.
    """
    edb_relations = [(relation.schema.name, relation.schema.arity)
                     for relation in program.database if len(relation)]
    current = {name: {tuple(row) for row in program.database.relation(name)}
               for name, _ in edb_relations}
    retired: List[Tuple[str, Tuple]] = []
    sequence = []
    for _ in range(steps):
        name, arity = rng.choice(edb_relations)
        if rng.random() < 0.5:
            facts = []
            for _ in range(rng.randint(1, 3)):
                if retired and rng.random() < 0.3:
                    predicate, row = retired.pop()
                else:
                    predicate = name
                    row = tuple(rng.choice(CONSTANTS) for _ in range(arity))
                facts.append((predicate, row))
                current.setdefault(predicate, set()).add(row)
            sequence.append(("add", facts))
        else:
            pool = sorted(current[name], key=str)
            if not pool:
                continue
            victims = [pool[rng.randrange(len(pool))]
                       for _ in range(rng.randint(1, 2))]
            facts = [(name, row) for row in set(victims)]
            for predicate, row in facts:
                current[predicate].discard(row)
                retired.append((predicate, row))
            sequence.append(("retract", facts))
    return sequence


def _random_queries(rng: random.Random, program: DatalogProgram,
                    count: int = 3) -> List[ConjunctiveQuery]:
    arities = program.predicate_arities()
    predicates = sorted(arities)
    queries = []
    for _ in range(count):
        body = [_random_atom(rng, predicate, arities[predicate])
                for predicate in rng.sample(predicates, k=min(2, len(predicates)))]
        variables = [v for atom in body for v in atom.variables()]
        if not variables:
            continue
        answer = rng.sample(variables, k=min(rng.randint(1, 2), len(variables)))
        queries.append(ConjunctiveQuery(answer, body))
    return queries


def _ground_facts(instance: DatabaseInstance):
    return {
        (relation.schema.name, row)
        for relation in instance
        for row in relation
        if not any(isinstance(value, Null) for value in row)
    }


def _apply_step(materialized: MaterializedProgram, action: str, facts) -> None:
    if action == "add":
        materialized.add_facts(facts)
    else:
        materialized.retract_facts(facts)


def _assert_equivalent(materialized: MaterializedProgram, seed: int) -> None:
    """The session state must match a from-scratch chase of its own EDB."""
    reference = chase(materialized.edb_program(), check_constraints=False)
    assert _ground_facts(reference.instance) == _ground_facts(materialized.instance)
    rng = random.Random(seed)
    for query in _random_queries(rng, materialized.edb_program()):
        assert materialized.certain_answers(query) == \
            certain_answers(materialized.edb_program(), query,
                            chase_result=reference)


# -- plain programs: exact equivalence under update sequences -----------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(20))
def test_plain_update_sequences_match_scratch_chase(seed, engine):
    """Randomized add/retract sequences on plain programs, both engines."""
    program = _random_program(seed, existential=False)
    materialized = MaterializedProgram(program, engine=engine)
    rng = random.Random(1000 + seed)
    for action, facts in _random_updates(rng, program, steps=6):
        _apply_step(materialized, action, facts)
        # Plain programs admit exact instance equality, not just ground facts.
        reference = chase(materialized.edb_program(), check_constraints=False)
        assert reference.instance == materialized.instance
    _assert_equivalent(materialized, seed)


# -- existential programs: ground facts + certain answers ---------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(100, 112))
def test_existential_update_sequences_match_scratch_chase(seed, engine):
    """Nulls in the deletion cone: provenance-driven retraction stays sound."""
    program = _random_program(seed, existential=True)
    materialized = MaterializedProgram(program, engine=engine)
    rng = random.Random(2000 + seed)
    for action, facts in _random_updates(rng, program, steps=5):
        _apply_step(materialized, action, facts)
        _assert_equivalent(materialized, seed)


# -- EGD programs: merges, conflicts and the full-rechase fallback ------------


@pytest.mark.parametrize("seed", range(300, 308))
def test_egd_update_sequences_match_scratch_chase(seed):
    """With a functional dependency, updates agree with scratch chases —
    via the full-rechase fallback once merges make provenance ambiguous."""
    program = _random_program(seed, existential=True)
    target = sorted(program.predicate_arities().items())[-1]
    name, arity = target
    if arity < 2:
        pytest.skip("needs a binary+ predicate for a functional dependency")
    x, y = Variable("FD_x"), Variable("FD_y")
    key = [Variable(f"K{i}") for i in range(arity - 1)]
    program.add_egd(EGD(x, y, [Atom(name, key + [x]), Atom(name, key + [y])]))

    try:
        materialized = MaterializedProgram(program)
    except EGDConflictError:
        with pytest.raises(EGDConflictError):
            chase(program, check_constraints=False)
        return
    rng = random.Random(3000 + seed)
    for action, facts in _random_updates(rng, program, steps=4):
        try:
            _apply_step(materialized, action, facts)
        except EGDConflictError:
            # The updated EDB must be inconsistent from scratch as well.
            with pytest.raises(EGDConflictError):
                chase(materialized.edb_program(), check_constraints=False)
            return
        reference = chase(materialized.edb_program(), check_constraints=False)
        assert _ground_facts(reference.instance) == \
            _ground_facts(materialized.instance)


def test_retraction_after_merge_falls_back_to_full_rechase():
    """EGD merges make provenance ambiguous: the next retraction re-chases."""
    from repro.datalog import parse_program
    program = parse_program("""
        exists Z : HasType(X, Z) :- Item(X).
        T = T2 :- HasType(X, T), Declared(X, T2).
        Item(i1).
        Declared(i1, widget).
    """)
    materialized = MaterializedProgram(program)
    assert materialized.result.egd_merges >= 1
    update = materialized.retract_facts([("Item", ("i1",))])
    assert update.strategy == "full"
    assert materialized.stats.full_rechases == 1
    reference = chase(materialized.edb_program(), check_constraints=False)
    assert _ground_facts(reference.instance) == _ground_facts(materialized.instance)


# -- generated MD workloads ---------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", [7, 21])
def test_workload_update_stream_matches_scratch_chase(seed, engine):
    """Base-relation update streams on generated MD workloads, both engines."""
    workload = generate_workload(WorkloadSpec(
        dimensions=2, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=20, upward_rules=True,
        downward_rules=True, seed=seed))
    program = workload.ontology.program()
    materialized = MaterializedProgram(program, engine=engine)
    for step in generate_update_stream(workload, steps=4, adds_per_step=2,
                                       retracts_per_step=1, seed=seed):
        materialized.add_facts(step.adds)
        materialized.retract_facts(step.retracts)
    reference = chase(materialized.edb_program(), check_constraints=False)
    assert _ground_facts(reference.instance) == _ground_facts(materialized.instance)
    for query in workload.queries:
        assert materialized.certain_answers(query) == \
            certain_answers(materialized.edb_program(), query,
                            chase_result=reference)


# -- quality sessions ---------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 21])
def test_quality_session_updates_match_scratch_assessment(seed):
    """QualitySession after updates ≡ a fresh context chase of the same data."""
    from repro.quality import assess_database
    workload = generate_workload(WorkloadSpec(
        dimensions=1, depth=3, fanout=2, top_members=2, base_relations=1,
        tuples_per_relation=15, assessment_tuples=25, upward_rules=True,
        seed=seed))
    session = workload.context.session(workload.assessment_instance)
    for step in generate_update_stream(workload, steps=4, adds_per_step=2,
                                       retracts_per_step=2, seed=seed,
                                       target="assessment"):
        for predicate, row in step.adds:
            session.add_facts(predicate, [row])
        for predicate, row in step.retracts:
            session.retract_facts(predicate, [row])

    fresh_versions = workload.context.quality_versions_for(session.instance)
    session_versions = session.quality_versions()
    assert set(fresh_versions) == set(session_versions)
    for relation in fresh_versions:
        assert set(fresh_versions[relation]) == set(session_versions[relation])
    assert str(assess_database(session.instance, fresh_versions)) == \
        str(session.assess())
