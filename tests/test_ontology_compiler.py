"""Tests for the MD-instance → Datalog± compiler."""

import pytest

from repro.hospital import build_md_instance
from repro.ontology.compiler import OntologyCompiler
from repro.ontology.predicates import PredicateNaming


@pytest.fixture(scope="module")
def compiled():
    return OntologyCompiler().compile(build_md_instance())


class TestVocabularyConstruction:
    def test_category_predicates(self, compiled):
        names = set(compiled.vocabulary.category_predicates)
        assert {"Ward", "Unit", "Institution", "Day", "Month", "Year"} <= names

    def test_parent_child_predicates(self, compiled):
        names = set(compiled.vocabulary.parent_child_predicates)
        assert {"UnitWard", "InstitutionUnit", "DayTime", "MonthDay", "YearMonth"} <= names

    def test_categorical_predicates(self, compiled):
        names = set(compiled.vocabulary.categorical_predicates)
        assert {"PatientWard", "PatientUnit", "WorkingSchedules", "Shifts"} <= names


class TestExtensionalData:
    def test_category_facts(self, compiled):
        database = compiled.program.database
        assert ("Standard",) in database.relation("Unit")
        assert ("W1",) in database.relation("Ward")
        assert ("Sep/5",) in database.relation("Day")

    def test_parent_child_facts_have_parent_first(self, compiled):
        database = compiled.program.database
        assert ("Standard", "W1") in database.relation("UnitWard")
        assert ("H1", "Standard") in database.relation("InstitutionUnit")
        assert ("Sep/5", "Sep/5-12:10") in database.relation("DayTime")
        assert ("2005-09", "Sep/5") in database.relation("MonthDay")

    def test_categorical_relation_tuples_loaded(self, compiled):
        database = compiled.program.database
        assert ("W1", "Sep/5", "Tom Waits") in database.relation("PatientWard")
        assert len(database.relation("PatientUnit")) == 0  # intensional, empty

    def test_fact_count_positive(self, compiled):
        assert compiled.fact_count() > 40


class TestReferentialConstraints:
    def test_one_constraint_per_categorical_attribute(self, compiled):
        md = build_md_instance()
        expected = sum(len(schema.categorical) for schema in md.relations())
        assert len(compiled.program.constraints) == expected

    def test_constraints_can_be_disabled(self):
        compiler = OntologyCompiler(generate_referential_constraints=False)
        compiled = compiler.compile(build_md_instance())
        assert compiled.program.constraints == []


class TestCompilerOptions:
    def test_qualified_naming(self):
        compiler = OntologyCompiler(naming=PredicateNaming(qualified=True))
        compiled = compiler.compile(build_md_instance())
        assert "Hospital_Unit" in compiled.vocabulary.category_predicates
        assert "Hospital_UnitWard" in compiled.vocabulary.parent_child_predicates

    def test_transitive_rollups(self):
        compiler = OntologyCompiler(include_transitive_rollups=True)
        compiled = compiler.compile(build_md_instance())
        assert "InstitutionWard" in compiled.vocabulary.parent_child_predicates
        database = compiled.program.database
        assert ("H1", "W1") in database.relation("InstitutionWard")

    def test_without_transitive_rollups_absent(self, compiled):
        assert "InstitutionWard" not in compiled.vocabulary.parent_child_predicates
