"""Tests for the chase procedure (restricted and oblivious, TGDs + EGDs + NCs)."""

import pytest

from repro.errors import ChaseNonTerminationError, EGDConflictError, InconsistencyError
from repro.datalog import parse_program
from repro.datalog.chase import OBLIVIOUS, RESTRICTED, ChaseEngine, chase
from repro.relational.values import Null


class TestRestrictedChase:
    def test_upward_navigation_generates_patient_unit(self, small_program):
        result = chase(small_program)
        patient_unit = result.instance.relation("PatientUnit")
        assert ("Standard", "Sep/5", "Tom Waits") in patient_unit
        assert ("Intensive", "Sep/6", "Lou Reed") in patient_unit

    def test_downward_navigation_generates_shifts_with_nulls(self, small_program):
        result = chase(small_program)
        shifts = result.instance.relation("Shifts")
        rows = {row[:3] for row in shifts}
        assert ("W1", "Sep/9", "Mark") in rows
        assert ("W2", "Sep/9", "Mark") in rows
        assert all(isinstance(row[3], Null) for row in shifts)

    def test_restricted_chase_does_not_refire_satisfied_heads(self, small_program):
        first = chase(small_program)
        again = chase(small_program)
        assert first.instance == again.instance

    def test_termination_flag_and_counts(self, small_program):
        result = chase(small_program)
        assert result.terminated
        assert result.steps >= 3
        assert result.rounds >= 1
        assert result.mode == RESTRICTED

    def test_input_program_is_not_mutated(self, small_program):
        before = small_program.database.total_tuples()
        chase(small_program)
        assert small_program.database.total_tuples() == before

    def test_budget_exhaustion_raises(self):
        # A program with a genuinely infinite oblivious chase (new null each time).
        program = parse_program("""
            exists Y : Edge(X, Y) :- Edge(W, X).
            Edge(a, b).
        """)
        with pytest.raises(ChaseNonTerminationError):
            chase(program, mode=OBLIVIOUS, max_steps=50)

    def test_restricted_chase_terminates_where_oblivious_does_not(self):
        program = parse_program("""
            exists Y : Edge(X, Y) :- Edge(W, X).
            Edge(a, b).
        """)
        # The restricted chase keeps creating new nulls here too (the head is
        # never satisfied for the *new* null), so it must also hit the budget.
        with pytest.raises(ChaseNonTerminationError):
            chase(program, max_steps=50)

    def test_generated_nulls_reported(self, small_program):
        result = chase(small_program)
        assert len(result.generated_nulls()) == 2


class TestObliviousChase:
    def test_oblivious_chase_fires_every_trigger_once(self, small_program):
        restricted = chase(small_program, mode=RESTRICTED)
        oblivious = chase(small_program, mode=OBLIVIOUS)
        # The oblivious chase fires at least as many triggers.
        assert oblivious.steps >= restricted.steps
        # And the certain (null-free) facts coincide.
        for relation in restricted.instance:
            name = relation.schema.name
            restricted_ground = {r for r in relation if not any(isinstance(v, Null) for v in r)}
            oblivious_ground = {r for r in oblivious.instance.relation(name)
                                if not any(isinstance(v, Null) for v in r)}
            assert restricted_ground == oblivious_ground

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ChaseEngine(mode="bogus")


class TestEGDs:
    def test_egd_merges_null_with_constant(self):
        program = parse_program("""
            exists Z : HasType(X, Z) :- Item(X).
            T = T2 :- HasType(X, T), Declared(X, T2).
            Item(i1).
            Declared(i1, widget).
        """)
        result = chase(program)
        assert ("i1", "widget") in result.instance.relation("HasType")
        assert not result.instance.relation("HasType").nulls()
        assert result.egd_merges >= 1

    def test_egd_conflict_on_distinct_constants(self):
        program = parse_program("""
            T = T2 :- Declared(X, T), Declared(X, T2).
            Declared(i1, widget).
            Declared(i1, gadget).
        """)
        with pytest.raises(EGDConflictError):
            chase(program)

    def test_egd_merges_two_nulls(self):
        program = parse_program("""
            exists Z : P(X, Z) :- Item(X).
            exists W : Q(X, W) :- Item(X).
            A = B :- P(X, A), Q(X, B).
            Item(i1).
        """)
        result = chase(program)
        p_null = next(iter(result.instance.relation("P")))[1]
        q_null = next(iter(result.instance.relation("Q")))[1]
        assert p_null == q_null

    def test_consistent_egd_is_silent(self):
        program = parse_program("""
            T = T2 :- Declared(X, T), Declared(X, T2).
            Declared(i1, widget).
            Declared(i2, gadget).
        """)
        result = chase(program)
        assert result.egd_merges == 0


class TestNegativeConstraints:
    def test_violation_is_collected(self):
        program = parse_program("""
            false :- Ward(W), Closed(W).
            Ward(w3).
            Closed(w3).
        """)
        result = chase(program)
        assert not result.is_consistent
        assert len(result.violations) == 1
        assert "Closed" in str(result.violations[0]) or "Ward" in str(result.violations[0])

    def test_fail_fast_raises(self):
        program = parse_program("""
            false :- Ward(W), Closed(W).
            Ward(w3).
            Closed(w3).
        """)
        with pytest.raises(InconsistencyError):
            chase(program, fail_fast=True)

    def test_satisfied_constraint_reports_consistent(self):
        program = parse_program("""
            false :- Ward(W), Closed(W).
            Ward(w1).
            Closed(w3).
        """)
        assert chase(program).is_consistent

    def test_constraint_checking_can_be_disabled(self):
        program = parse_program("""
            false :- Ward(W), Closed(W).
            Ward(w3).
            Closed(w3).
        """)
        result = chase(program, check_constraints=False)
        assert result.is_consistent  # nothing was checked

    def test_constraint_with_negated_atom(self):
        program = parse_program("""
            false :- PatientUnit(U, D, P), not Unit(U).
            Unit('Standard').
            PatientUnit('Standard', d1, p1).
            PatientUnit('Bogus', d1, p2).
        """)
        result = chase(program)
        assert not result.is_consistent
        assert result.violations[0].witness["U"] == "Bogus"

    def test_constraint_with_comparison(self):
        program = parse_program("""
            false :- Stay(W, D), MonthDay(M, D), M > '2005-08'.
            Stay(w3, 'Sep/6').
            MonthDay('2005-09', 'Sep/6').
        """)
        assert not chase(program).is_consistent
