"""Tests for CSV import/export of relations and instances."""

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import (read_instance_csv, read_relation_csv,
                                    write_instance_csv, write_relation_csv)
from repro.relational.instance import DatabaseInstance, Relation
from repro.relational.schema import RelationSchema
from repro.relational.values import Null


@pytest.fixture()
def relation():
    rel = Relation(RelationSchema("People", ["name", "city"]))
    rel.add_all([("ann", "ottawa"), ("bob", "toronto")])
    return rel


class TestRelationRoundTrip:
    def test_round_trip_preserves_rows(self, relation, tmp_path):
        path = tmp_path / "people.csv"
        write_relation_csv(relation, path)
        loaded = read_relation_csv(path)
        assert set(loaded) == set(relation)
        assert loaded.schema.attributes == relation.schema.attributes

    def test_relation_name_defaults_to_file_stem(self, relation, tmp_path):
        path = tmp_path / "staff.csv"
        write_relation_csv(relation, path)
        assert read_relation_csv(path).schema.name == "staff"

    def test_explicit_name_overrides_stem(self, relation, tmp_path):
        path = tmp_path / "staff.csv"
        write_relation_csv(relation, path)
        assert read_relation_csv(path, name="Employees").schema.name == "Employees"

    def test_nulls_round_trip(self, tmp_path):
        rel = Relation(RelationSchema("R", ["a", "b"]))
        rel.add(("x", Null("n3")))
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        loaded = read_relation_csv(path)
        assert ("x", Null("n3")) in loaded

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_relation_csv(path)

    def test_values_are_read_as_strings(self, tmp_path):
        rel = Relation(RelationSchema("R", ["a"]))
        rel.add((42,))
        path = tmp_path / "r.csv"
        write_relation_csv(rel, path)
        loaded = read_relation_csv(path)
        assert ("42",) in loaded


class TestInstanceRoundTrip:
    def test_instance_round_trip(self, relation, tmp_path):
        instance = DatabaseInstance()
        target = instance.declare("People", ["name", "city"])
        target.add_all(relation)
        instance.declare("Empty", ["x"])
        write_instance_csv(instance, tmp_path)
        loaded = read_instance_csv(tmp_path)
        assert set(loaded.relation("People")) == set(relation)
        assert loaded.has_relation("Empty")

    def test_selective_load(self, relation, tmp_path):
        instance = DatabaseInstance()
        instance.declare("People", ["name", "city"]).add_all(relation)
        instance.declare("Other", ["x"]).add(("v",))
        write_instance_csv(instance, tmp_path)
        loaded = read_instance_csv(tmp_path, relation_names=["People"])
        assert loaded.has_relation("People")
        assert not loaded.has_relation("Other")
