"""Authentication matrix for the serving tier.

Both daemons gate every operation behind the shared-secret HMAC
handshake when started with a token (``--auth-token-file``): the client
fetches a per-connection nonce (``auth_challenge``) and answers with
``HMAC-SHA256(token, nonce)`` (``auth``), verified in constant time.
This suite drives the refusal matrix — **missing token, wrong token,
replayed nonce** — against every operation class (reads, writes, pins,
stats, checkpoint, quality) on the primary *and* the replica, checks the
``auth_failures`` counter, and proves the happy path (and the open
tokenless mode) still work.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.datalog import parse_program
from repro.errors import AuthenticationError, ServingError
from repro.serving import ServingClient, compute_mac, load_token
from repro.serving.daemon import (ConnectionState, ProgramBackend,
                                  ServingDaemon)
from repro.serving.replication import ReplicaDaemon

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

TOKEN = b"hunter2-but-long-enough-to-mean-it"

PROGRAM_TEXT = """
    Derived(X, Y) :- Base(X, Y).
    Base(a, b). Base(c, d).
"""

#: every operation class the gate must cover (fields omitted on purpose:
#: the auth check runs before dispatch ever looks at them)
GATED_OPS = ("answers", "holds", "add_facts", "retract_facts", "pin",
             "unpin", "stats", "checkpoint", "recovery", "quality_answers",
             "quality_version", "assess")

#: the replica refuses writes anyway; its gate must still fire first
REPLICA_GATED_OPS = ("answers", "holds", "add_facts", "pin", "unpin",
                     "stats", "recovery", "quality_answers", "assess")


# -- helpers ------------------------------------------------------------------


def _daemon(tmp_path: Path, token=TOKEN) -> ServingDaemon:
    daemon = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT)),
                           tmp_path / "data", sync=False, auth_token=token)
    daemon.recover()
    return daemon


def _connection(daemon) -> ConnectionState:
    return ConnectionState(daemon.backend.versions)


def _refused(daemon, op: str, connection: ConnectionState) -> bool:
    response = daemon.handle({"op": op, "id": 1}, connection)
    return (not response["ok"] and
            response["error_type"] == "AuthenticationError")


def _handshake(daemon, connection: ConnectionState, token=TOKEN) -> dict:
    challenge = daemon.handle({"op": "auth_challenge", "id": 1}, connection)
    assert challenge["ok"] and challenge["result"]["required"]
    nonce = challenge["result"]["nonce"]
    return daemon.handle({"op": "auth", "id": 2,
                          "mac": compute_mac(token, nonce)}, connection)


# -- the refusal matrix, primary ----------------------------------------------


def test_primary_refuses_every_op_without_credentials(tmp_path):
    daemon = _daemon(tmp_path)
    try:
        connection = _connection(daemon)
        for op in GATED_OPS:
            assert _refused(daemon, op, connection), \
                f"op {op!r} was served without authentication"
        # Liveness stays reachable, and advertises the requirement.
        ping = daemon.handle({"op": "ping", "id": 1}, connection)
        assert ping["ok"] and ping["result"]["auth_required"]
        assert daemon.serving_stats.auth_failures == len(GATED_OPS)
    finally:
        daemon.stop()


def test_primary_refuses_wrong_token_then_replayed_nonce(tmp_path):
    daemon = _daemon(tmp_path)
    try:
        # Wrong token: the handshake itself fails, and the connection
        # stays locked out.
        wrong = _connection(daemon)
        response = _handshake(daemon, wrong, token=b"not-the-token")
        assert not response["ok"]
        assert response["error_type"] == "AuthenticationError"
        assert _refused(daemon, "answers", wrong)

        # Replayed nonce, across connections: a MAC captured from one
        # handshake never verifies against another's nonce.
        victim = _connection(daemon)
        challenge = daemon.handle({"op": "auth_challenge", "id": 1}, victim)
        captured_mac = compute_mac(TOKEN, challenge["result"]["nonce"])
        attacker = _connection(daemon)
        daemon.handle({"op": "auth_challenge", "id": 1}, attacker)
        replay = daemon.handle({"op": "auth", "id": 2,
                                "mac": captured_mac}, attacker)
        assert not replay["ok"]
        assert replay["error_type"] == "AuthenticationError"
        assert _refused(daemon, "stats", attacker)

        # Replayed nonce, same connection: one failed attempt consumes
        # the nonce, so even the *correct* MAC is dead afterwards.
        burned = _connection(daemon)
        challenge = daemon.handle({"op": "auth_challenge", "id": 1}, burned)
        nonce = challenge["result"]["nonce"]
        first = daemon.handle({"op": "auth", "id": 2, "mac": "wrong"},
                              burned)
        assert not first["ok"]
        second = daemon.handle({"op": "auth", "id": 3,
                                "mac": compute_mac(TOKEN, nonce)}, burned)
        assert not second["ok"], "a consumed nonce verified again"
        assert daemon.serving_stats.auth_failures >= 5
    finally:
        daemon.stop()


def test_primary_handshake_unlocks_every_op(tmp_path):
    daemon = _daemon(tmp_path)
    try:
        connection = _connection(daemon)
        response = _handshake(daemon, connection)
        assert response["ok"] and response["result"]["authenticated"]
        answer = daemon.handle({"op": "answers", "id": 3,
                                "query": "?(X, Y) :- Derived(X, Y)."},
                               connection)
        assert answer["ok"] and answer["result"]["rows"]
        write = daemon.handle({"op": "add_facts", "id": 4,
                               "facts": [["Base", ["authed", "b"]]]},
                              connection)
        assert write["ok"]
        stats = daemon.handle({"op": "stats", "id": 5}, connection)
        assert stats["ok"]
        assert stats["result"]["serving"]["admission"]["auth_required"]
        assert daemon.serving_stats.auth_failures == 0
    finally:
        daemon.stop()


# -- the refusal matrix, replica ----------------------------------------------


@pytest.fixture
def shipped_primary(tmp_path):
    """A primary data directory with a snapshot to seed a replica from."""
    primary_dir = tmp_path / "primary"
    seed = ServingDaemon(ProgramBackend(parse_program(PROGRAM_TEXT)),
                         primary_dir, sync=False)
    seed.recover()
    seed.apply_write("add", [("Base", ("shipped", "b"))])
    seed.checkpoint()
    seed.stop()
    return primary_dir


def test_replica_refuses_and_unlocks_like_the_primary(tmp_path,
                                                      shipped_primary):
    replica = ReplicaDaemon(ProgramBackend(None), shipped_primary,
                            tmp_path / "replica", auth_token=TOKEN)
    replica.recover()
    try:
        connection = ConnectionState(replica.backend.versions)
        for op in REPLICA_GATED_OPS:
            assert _refused(replica, op, connection), \
                f"replica op {op!r} was served without authentication"
        assert replica.serving_stats.auth_failures == \
            len(REPLICA_GATED_OPS)
        ping = replica.handle({"op": "ping", "id": 1}, connection)
        assert ping["ok"] and ping["result"]["auth_required"]

        response = _handshake(replica, connection)
        assert response["ok"] and response["result"]["authenticated"]
        answer = replica.handle({"op": "answers", "id": 3,
                                 "query": "?(X, Y) :- Derived(X, Y)."},
                                connection)
        assert answer["ok"] and answer["result"]["rows"]
        stats = replica.handle({"op": "stats", "id": 4}, connection)
        assert stats["ok"]
        serving = stats["result"]["serving"]
        assert serving["admission"]["auth_required"]
        assert serving["counters"]["auth_failures"] == \
            len(REPLICA_GATED_OPS)
        # Writes stay refused, but as the replica refusal — the gate has
        # already passed, so the error is about the role, not identity.
        write = replica.handle({"op": "add_facts", "id": 5,
                                "facts": [["Base", ["x", "b"]]]},
                               connection)
        assert not write["ok"]
        assert write["error_type"] == "ServingProtocolError"
    finally:
        replica.stop()


# -- over the wire ------------------------------------------------------------


def _spawn_daemon(data_dir: Path, program_file: Path,
                  token_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_CRASH", None)
    env.pop("REPRO_FAULT_STALL", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serving.daemon",
         "--data-dir", str(data_dir), "--program", str(program_file),
         "--port", "0", "--quiet", "--no-sync",
         "--auth-token-file", str(token_file)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def test_auth_over_the_wire(tmp_path):
    """A real daemon subprocess with --auth-token-file: the token-holding
    client works end to end, the tokenless one is refused typed, the
    wrong-token one fails its handshake."""
    program_file = tmp_path / "program.dlg"
    program_file.write_text(PROGRAM_TEXT, encoding="utf-8")
    token_file = tmp_path / "token"
    token_file.write_text(TOKEN.decode("ascii") + "\n", encoding="utf-8")
    data_dir = tmp_path / "data"
    process = _spawn_daemon(data_dir, program_file, token_file)
    authed = None
    try:
        authed = ServingClient.connect(data_dir, wait=30.0,
                                       auth_token=TOKEN)
        authed.add_facts([("Base", ("wire", "b"))])
        assert ("wire", "b") in authed.answers("?(X, Y) :- Derived(X, Y).")

        anonymous = ServingClient.connect(data_dir, wait=5.0)
        assert anonymous.ping()["auth_required"]
        with pytest.raises(AuthenticationError):
            anonymous.answers("?(X, Y) :- Derived(X, Y).")
        with pytest.raises(AuthenticationError):
            anonymous.add_facts([("Base", ("nope", "b"))])
        anonymous.close()

        with pytest.raises(AuthenticationError):
            ServingClient.connect(data_dir, wait=5.0,
                                  auth_token=b"wrong-token")

        counters = authed.stats()["serving"]["group_commit"]
        assert counters["auth_failures"] >= 3
    finally:
        if authed is not None:
            try:
                authed.shutdown()
            except Exception:  # noqa: BLE001 - already gone
                pass
            authed.close()
        if process.poll() is None:
            process.wait(timeout=30)


def test_tokenless_daemon_accepts_token_holding_client(tmp_path):
    """Open mode interop: a client configured with a token talks to a
    daemon that requires none (the handshake reports required=False)."""
    daemon = _daemon(tmp_path, token=None)
    host, port = daemon.start()
    client = None
    try:
        client = ServingClient(host, port, auth_token=b"whatever")
        assert not client.ping()["auth_required"]
        client.add_facts([("Base", ("open", "b"))])
        assert ("open", "b") in client.answers("?(X, Y) :- Derived(X, Y).")
    finally:
        if client is not None:
            client.close()
        daemon.stop()


# -- token files --------------------------------------------------------------


def test_load_token_refuses_empty_and_missing_files(tmp_path):
    empty = tmp_path / "empty"
    empty.write_text("  \n", encoding="utf-8")
    with pytest.raises(ServingError):
        load_token(empty)
    with pytest.raises(ServingError):
        load_token(tmp_path / "does-not-exist")
    padded = tmp_path / "padded"
    padded.write_text("  secret \n", encoding="utf-8")
    assert load_token(padded) == b"secret"
