"""Tests for semi-naive evaluation of plain Datalog programs."""

import pytest

from repro.errors import DatalogError
from repro.datalog import parse_program, parse_rule
from repro.datalog.chase import chase
from repro.datalog.seminaive import evaluate_plain_datalog, evaluate_program
from repro.relational.instance import DatabaseInstance


@pytest.fixture()
def graph_instance():
    db = DatabaseInstance()
    db.declare("Edge", ["src", "dst"])
    db.add_all("Edge", [("a", "b"), ("b", "c"), ("c", "d")])
    return db


class TestEvaluation:
    def test_transitive_closure(self, graph_instance):
        rules = [
            parse_rule("Path(X, Y) :- Edge(X, Y)."),
            parse_rule("Path(X, Z) :- Path(X, Y), Edge(Y, Z)."),
        ]
        result = evaluate_plain_datalog(rules, graph_instance)
        assert len(result.relation("Path")) == 6
        assert ("a", "d") in result.relation("Path")

    def test_input_not_mutated(self, graph_instance):
        rules = [parse_rule("Path(X, Y) :- Edge(X, Y).")]
        evaluate_plain_datalog(rules, graph_instance)
        assert not graph_instance.has_relation("Path")

    def test_multiple_rules_same_head(self, graph_instance):
        rules = [
            parse_rule("Reach(X) :- Edge(a, X)."),
            parse_rule("Reach(X) :- Reach(Y), Edge(Y, X)."),
        ]
        result = evaluate_plain_datalog(rules, graph_instance)
        assert set(result.relation("Reach")) == {("b",), ("c",), ("d",)}

    def test_rule_with_constants_in_head(self, graph_instance):
        rules = [parse_rule("Flag(yes, X) :- Edge(X, Y).")]
        result = evaluate_plain_datalog(rules, graph_instance)
        assert ("yes", "a") in result.relation("Flag")

    def test_existential_rules_rejected(self, graph_instance):
        rules = [parse_rule("exists Z : Out(X, Z) :- Edge(X, Y).")]
        with pytest.raises(DatalogError):
            evaluate_plain_datalog(rules, graph_instance)

    def test_empty_rule_set_returns_copy(self, graph_instance):
        result = evaluate_plain_datalog([], graph_instance)
        assert set(result.relation("Edge")) == set(graph_instance.relation("Edge"))

    def test_agrees_with_chase_on_plain_programs(self):
        program = parse_program("""
            Path(X, Y) :- Edge(X, Y).
            Path(X, Z) :- Path(X, Y), Edge(Y, Z).
            Edge(a, b). Edge(b, c). Edge(c, a).
        """)
        semi = evaluate_program(program)
        chased = chase(program).instance
        assert set(semi.relation("Path")) == set(chased.relation("Path"))
        assert len(semi.relation("Path")) == 9  # full closure of a 3-cycle

    def test_round_limit(self, graph_instance):
        rules = [
            parse_rule("Path(X, Y) :- Edge(X, Y)."),
            parse_rule("Path(X, Z) :- Path(X, Y), Edge(Y, Z)."),
        ]
        with pytest.raises(DatalogError):
            evaluate_plain_datalog(rules, graph_instance, max_rounds=1)
