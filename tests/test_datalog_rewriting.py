"""Tests for the first-order (UCQ) query rewriting of Section IV."""

import pytest

from repro.errors import RewritingError
from repro.datalog import parse_program, parse_query, parse_rule
from repro.datalog.answering import certain_answers
from repro.datalog.rewriting import QueryRewriter, rewrite_and_answer


@pytest.fixture()
def upward_program():
    """Upward navigation only: rule (7) style roll-up over two levels."""
    return parse_program("""
        PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W).
        PatientInstitution(I, D, P) :- PatientUnit(U, D, P), InstitutionUnit(I, U).
        UnitWard(standard, w1). UnitWard(standard, w2). UnitWard(intensive, w3).
        InstitutionUnit(h1, standard). InstitutionUnit(h1, intensive).
        PatientWard(w1, sep5, tom).
        PatientWard(w3, sep6, lou).
    """)


class TestRewriting:
    def test_rewriting_produces_a_ucq(self, upward_program):
        rewriter = QueryRewriter(upward_program.tgds)
        rewriting = rewriter.rewrite(parse_query("?(U, P) :- PatientUnit(U, sep5, P)."))
        assert len(rewriting) >= 2  # the original plus at least one unfolding
        predicates = {atom.predicate for query in rewriting.queries for atom in query.body}
        assert "PatientWard" in predicates

    def test_rewritten_answers_match_chase(self, upward_program):
        queries = [
            "?(U, P) :- PatientUnit(U, sep5, P).",
            "?(I, P) :- PatientInstitution(I, D, P).",
            "?(P) :- PatientUnit(intensive, D, P).",
        ]
        for text in queries:
            query = parse_query(text)
            assert rewrite_and_answer(upward_program, query) == \
                certain_answers(upward_program, query)

    def test_rewriting_answers_without_data_generation(self, upward_program):
        # The rewriting is evaluated over the *extensional* database: no
        # PatientUnit facts exist, yet the answers are found.
        assert not upward_program.database.has_relation("PatientUnit") or \
            not len(upward_program.database.relation("PatientUnit"))
        answers = rewrite_and_answer(upward_program,
                                     parse_query("?(U) :- PatientUnit(U, sep6, lou)."))
        assert answers == (("intensive",),)

    def test_boolean_query_rewriting(self, upward_program):
        rewriter = QueryRewriter(upward_program.tgds)
        rewriting = rewriter.rewrite(parse_query("? :- PatientInstitution(h1, sep5, tom)."))
        assert rewriting.holds(upward_program.database)

    def test_multi_level_unfolding_reaches_base_relations(self, upward_program):
        rewriter = QueryRewriter(upward_program.tgds)
        rewriting = rewriter.rewrite(parse_query("?(P) :- PatientInstitution(h1, D, P)."))
        flattened = [
            {atom.predicate for atom in query.body} for query in rewriting.queries]
        assert any(preds <= {"PatientWard", "UnitWard", "InstitutionUnit"}
                   for preds in flattened)

    def test_recursive_rules_rejected(self):
        rules = [parse_rule("P(X) :- Q(X)."), parse_rule("Q(X) :- P(X).")]
        with pytest.raises(RewritingError):
            QueryRewriter(rules)

    def test_existential_applicability_condition(self):
        # Shifts' existential shift attribute cannot be unified with the
        # constant 'night', so the unfolding never claims such an answer.
        program = parse_program("""
            exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).
            UnitWard(standard, w1).
            WorkingSchedules(standard, sep9, mark, nonc).
        """)
        rewriter = QueryRewriter(program.tgds)
        night = rewriter.rewrite(parse_query("?(D) :- Shifts(w1, D, mark, night)."))
        assert night.evaluate(program.database) == ()
        unconstrained = rewriter.rewrite(parse_query("?(D) :- Shifts(w1, D, mark, S)."))
        assert unconstrained.evaluate(program.database) == (("sep9",),)
        assert unconstrained.evaluate(program.database) == \
            certain_answers(program, parse_query("?(D) :- Shifts(w1, D, mark, S)."))

    def test_shared_existential_variable_blocks_unfolding(self):
        # S occurs in two atoms of the query: unifying it with the rule's
        # existential is unsound and must be skipped.
        program = parse_program("""
            exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W).
            UnitWard(standard, w1).
            WorkingSchedules(standard, sep9, mark, nonc).
            NightShift(night).
        """)
        rewriter = QueryRewriter(program.tgds)
        query = parse_query("?(D) :- Shifts(w1, D, mark, S), NightShift(S).")
        assert rewriter.rewrite(query).evaluate(program.database) == \
            certain_answers(program, query) == ()

    def test_rewriting_size_cap(self, upward_program):
        rewriter = QueryRewriter(upward_program.tgds, max_queries=1)
        with pytest.raises(RewritingError):
            rewriter.rewrite(parse_query("?(I, P) :- PatientInstitution(I, D, P)."))

    def test_upward_only_hospital_fragment_is_rewritable(self):
        from repro.hospital import build_upward_only_ontology
        ontology = build_upward_only_ontology()
        answers = ontology.rewrite_answers("?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').")
        assert answers == ontology.certain_answers(
            "?(U) :- PatientUnit(U, 'Sep/5', 'Tom Waits').")
