"""Tests for MD-ontology analysis (weak stickiness, separability, navigation)."""


from repro.hospital import build_ontology, build_upward_only_ontology
from repro.ontology.analysis import analyze, is_downward_only, is_upward_only


class TestHospitalOntologyClaims:
    """The analytical claims of Section III on the running example."""

    def test_full_ontology_is_weakly_sticky(self, hospital_ontology):
        analysis = hospital_ontology.analysis()
        assert analysis.is_weakly_sticky

    def test_full_ontology_is_not_sticky(self, hospital_ontology):
        assert not hospital_ontology.analysis().class_report.is_sticky

    def test_thermometer_egd_is_separable(self, hospital_ontology):
        assert hospital_ontology.analysis().is_separable

    def test_rule_directions(self, hospital_ontology):
        directions = hospital_ontology.analysis().rule_directions
        assert directions["rule (7)"] == "upward"
        assert directions["rule (8)"] == "downward"
        assert directions["rule (9)"] == "downward"

    def test_mixed_ontology_not_upward_only(self, hospital_ontology):
        analysis = hospital_ontology.analysis()
        assert not analysis.upward_only
        assert not analysis.summary()["fo_rewritable"]

    def test_upward_fragment_is_fo_rewritable(self):
        ontology = build_upward_only_ontology()
        analysis = ontology.analysis()
        assert analysis.upward_only
        assert analysis.non_recursive
        assert analysis.summary()["fo_rewritable"]
        assert analysis.class_report.is_weakly_sticky

    def test_notes_mention_rewriting_for_upward_fragment(self):
        ontology = build_upward_only_ontology()
        notes = " ".join(ontology.analysis().notes)
        assert "rewriting" in notes


class TestDirectionHelpers:
    def test_upward_only_and_downward_only(self):
        upward = build_ontology(include_rule_8=False, include_rule_9=False,
                                include_thermometer_egd=False)
        downward = build_ontology(include_rule_7=False, include_rule_9=False,
                                  include_thermometer_egd=False)
        assert is_upward_only(upward.rules)
        assert not is_downward_only(upward.rules)
        assert is_downward_only(downward.rules)
        assert not is_upward_only(downward.rules)

    def test_analysis_with_form_10_rule_keeps_weak_stickiness(self):
        ontology = build_ontology(include_rule_9=True)
        assert ontology.analysis().is_weakly_sticky

    def test_categorical_positions_finite_rank_without_rule_9(self):
        ontology = build_ontology(include_rule_9=False)
        assert ontology.analysis().categorical_positions_finite_rank

    def test_analyze_summary_keys(self, hospital_ontology):
        summary = analyze(hospital_ontology.vocabulary, hospital_ontology.rules,
                          hospital_ontology.constraints).summary()
        assert {"weakly_sticky", "separable_egds", "upward_only", "fo_rewritable"} <= set(summary)
