"""The matching layer: indexed and naive atom/body matchers.

Both matchers implement the same three operations over a
:class:`~repro.relational.instance.DatabaseInstance`:

* ``match_atom(atom, instance, substitution)`` — every extension of the
  substitution matching one atom;
* ``find_homomorphisms(atoms, instance, substitution, comparisons)`` — every
  homomorphism from a conjunction into the instance (safe negation and
  built-in comparisons applied last, as in :mod:`repro.datalog.unify`);
* ``has_homomorphism(atoms, instance, substitution)`` — existence check.

The :class:`NaiveMatcher` delegates to the row-by-row reference
implementation in :mod:`repro.datalog.unify` and exists as the oracle that
the indexed engine is differentially tested against.

The :class:`IndexedMatcher` is the production path:

* **index probes** — an atom with bound positions (constants, nulls, or
  variables already bound by the substitution) is matched by probing the
  relation's hash index over exactly those positions, so only rows that
  agree on the bound values are touched; a fully bound atom becomes an O(1)
  membership test;
* **selectivity ordering** — the positive body atoms are reordered greedily
  before the backtracking join: at each step the atom with the fewest
  unbound positions is chosen (ties broken by smaller relation), so highly
  constrained atoms prune the search early and empty relations short-circuit
  immediately.  The ordering is exposed as :meth:`Matcher.plan` so callers
  that evaluate the same conjunction many times (the delta chase pinning a
  rule to one pivot atom, a query session answering a cached query) can
  compute it once and replay it with ``preordered=True``.

The module also hosts the **delta-pivot join** shared by the delta-driven
chase, semi-naive Datalog evaluation and the session layer's answer
maintenance: each body atom in turn is pinned to the delta and the
remaining atoms are joined against the full instance, with the join order
hoisted out of the per-row loop (one plan per pivot, since bound-ness
depends only on the pivot atom, not on the delta row).  The compiled form
is :class:`DeltaJoinPlan` — a reusable object the session layer caches per
query so repeated updates replay the same pivot plans — and
:func:`iter_delta_joins` is the one-shot wrapper the chase and semi-naive
evaluator call per (rule, round).

Matchers optionally record their work in an
:class:`~repro.engine.stats.EngineStats` object.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple, Union)

from ..datalog.atoms import Atom, Comparison
from ..datalog.terms import Variable, term_value
from ..datalog.unify import (Substitution, apply_to_term, match_atom_against_row)
from ..datalog import unify as _naive
from ..relational.instance import DatabaseInstance
from .stats import EngineStats

INDEXED = "indexed"
NAIVE = "naive"
COLUMNAR = "columnar"

_ENGINES = (INDEXED, NAIVE, COLUMNAR)
_default_engine = INDEXED


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (one of ``_ENGINES``)."""
    global _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    _default_engine = engine


def get_default_engine() -> str:
    """The current process-wide default engine."""
    return _default_engine


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an ``engine=`` argument: ``None`` means the default."""
    if engine is None:
        return _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    return engine


class Matcher:
    """Common interface of the matching engines."""

    name: str = "abstract"

    def __init__(self, stats: Optional[EngineStats] = None):
        self.stats = stats if stats is not None else EngineStats(engine=self.name)

    # -- interface -----------------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        raise NotImplementedError

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        raise NotImplementedError

    def plan(self, atoms: Sequence[Atom], instance: DatabaseInstance,
             bound: Iterable[Variable] = ()) -> List[Atom]:
        """A join order for ``atoms`` given already-``bound`` variables.

        The returned list can be replayed through
        ``find_homomorphisms(..., preordered=True)``; computing it once per
        (rule, pivot) pair or per cached query amortizes the ordering work.
        The naive matcher preserves the given order (its reference semantics
        evaluate atoms as written).
        """
        return list(atoms)

    def has_homomorphism(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                         substitution: Optional[Substitution] = None) -> bool:
        """``True`` iff at least one homomorphism exists."""
        for _ in self.find_homomorphisms(atoms, instance, substitution):
            return True
        return False


class NaiveMatcher(Matcher):
    """Row-by-row reference matcher (wraps :mod:`repro.datalog.unify`)."""

    name = NAIVE

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Row-by-row scan, billing only the rows actually iterated.

        Same semantics as :func:`repro.datalog.unify.match_atom`; the scan
        is restated here so early-exiting consumers (``has_homomorphism``,
        boolean queries) are charged for the prefix they touched, not the
        whole relation.
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        for row in instance.relation(atom.predicate):  # per-tuple: ok — the naive oracle is row-at-a-time by definition
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, substitution)
            if matched is not None:
                yield matched

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        """Delegates to the canonical :func:`repro.datalog.unify.find_homomorphisms`,
        injecting the counting :meth:`match_atom` so the negation/comparison
        semantics are not duplicated here.  ``preordered`` is accepted for
        interface compatibility; the naive matcher never reorders anyway."""
        yield from _naive.find_homomorphisms(atoms, instance,
                                             substitution=substitution,
                                             comparisons=comparisons,
                                             match=self.match_atom)


class IndexedMatcher(Matcher):
    """Index-probing matcher with selectivity-ordered backtracking joins."""

    name = INDEXED

    # -- single-atom matching -------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Yield every extension of ``substitution`` matching ``atom``.

        The positions of ``atom`` that are ground under the substitution are
        used as an index key; only rows agreeing on those values are
        scanned.  Repeated variables within the atom are handled by the
        per-row matcher (the first occurrence binds, later ones filter).
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        relation = instance.relation(atom.predicate)
        if not relation:
            self.stats.empty_lookups += 1
            return
        current = dict(substitution or {})
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for position, term in enumerate(atom.terms):
            term = apply_to_term(current, term)
            if not isinstance(term, Variable):
                bound_positions.append(position)
                bound_values.append(term_value(term))
        if len(bound_positions) == atom.arity:
            # Fully bound: O(1) membership test.
            self.stats.index_probes += 1
            if tuple(bound_values) in relation:
                yield current
            return
        if bound_positions:
            self.stats.index_probes += 1
            candidates: Sequence[Tuple[Any, ...]] = relation.probe(
                tuple(bound_positions), tuple(bound_values))
        else:
            candidates = relation.rows()
        for row in candidates:  # per-tuple: ok — single-atom probe, candidates already index-narrowed
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, current)
            if matched is not None:
                yield matched

    # -- conjunction matching -------------------------------------------------

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        """Yield every homomorphism from ``atoms`` into ``instance``.

        Same contract as :func:`repro.datalog.unify.find_homomorphisms`:
        positive atoms joined with backtracking, negated atoms checked after
        all positive atoms are matched (cautious over labeled nulls),
        comparisons applied last.  The positive atoms are joined in
        selectivity order instead of the order given — unless ``preordered``
        is set, in which case ``atoms`` is taken to be a :meth:`plan` and
        replayed as given.  The join/negation semantics themselves are
        delegated to the canonical implementation (with this matcher's
        index-probing :meth:`match_atom` injected), so they live only in
        :mod:`repro.datalog.unify`.
        """
        initial = dict(substitution or {})
        if comparisons:
            # Equality comparisons bind variables to ground terms; seeing
            # them bound lets the planner order (and the probes key) on them.
            initial = _naive.comparison_bindings(comparisons, initial)
        ordered = list(atoms) if preordered else self.plan(atoms, instance,
                                                           bound=initial)
        yield from _naive.find_homomorphisms(ordered, instance,
                                             substitution=initial,
                                             comparisons=comparisons,
                                             match=self.match_atom)

    def plan(self, atoms: Sequence[Atom], instance: DatabaseInstance,
             bound: Iterable[Variable] = ()) -> List[Atom]:
        """Greedy join order: most-bound atom first, smaller relation on ties.

        Negated atoms always go last (they are checks, not generators);
        ``bound`` names variables that will already be bound when the plan
        is replayed (e.g. by a delta-pivot seed or an outer substitution).
        """
        positive = [atom for atom in atoms if not atom.negated]
        negative = [atom for atom in atoms if atom.negated]
        if len(positive) <= 1:
            return positive + negative
        remaining = positive
        bound_vars: Set[Variable] = set(bound)
        ordered: List[Atom] = []

        def cost(atom: Atom) -> Tuple[int, int]:
            unbound = {term for term in atom.terms
                       if isinstance(term, Variable) and term not in bound_vars}
            size = (len(instance.relation(atom.predicate))
                    if instance.has_relation(atom.predicate) else 0)
            return (len(unbound), size)

        while remaining:
            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best)
            bound_vars.update(term for term in best.terms
                              if isinstance(term, Variable))
        return ordered + negative


#: An instance-level delta: either a :class:`DatabaseInstance` holding the
#: changed rows (the chase's round deltas) or a flat iterable of
#: ``(predicate, row)`` facts (the session layer's update deltas).
DeltaLike = Union[DatabaseInstance, Iterable[Tuple[str, Tuple[Any, ...]]]]


class DeltaJoinPlan:
    """A compiled delta-pivot join for one conjunction of positive atoms.

    Compiling hoists everything that does not depend on the delta rows out
    of the per-update loop: for each body atom (the *pivot*), the join
    order of the remaining atoms is computed once — bound-ness depends only
    on which atom is pinned, not on the pinned row — and cached on the
    plan.  Per-pivot plans are compiled lazily on first use, so a pivot
    whose predicate never appears in a delta costs nothing (the chase's
    common case).

    :meth:`homomorphisms` then enumerates, for a given instance and delta,
    every homomorphism from the body into the instance that uses at least
    one delta fact.  Delta rows not present in the instance (e.g. rewritten
    away by a later EGD merge, or bogus facts) are skipped.  Optional
    ``comparisons`` are applied with the same semantics as
    :func:`repro.datalog.unify.find_homomorphisms` — equality comparisons
    seed index probes, all comparisons filter the final bindings.

    The plan is valid for the lifetime of the conjunction: the cached join
    orders are a heuristic (selectivity at compile time), never a
    correctness requirement, so a plan compiled against one instance can be
    replayed against old or new versions of it.  The session layer caches
    one plan per maintained query; the chase compiles one per (rule, round)
    via :func:`iter_delta_joins`.
    """

    __slots__ = ("matcher", "body", "variables", "comparisons", "_rest",
                 "_plans")

    def __init__(self, matcher: Matcher, body: Sequence[Atom],
                 variables: Optional[Sequence[Variable]] = None,
                 comparisons: Sequence[Comparison] = ()):
        self.matcher = matcher
        self.body: Tuple[Atom, ...] = tuple(body)
        if variables is None:
            seen: List[Variable] = []
            for atom in self.body:
                for term in atom.terms:
                    if isinstance(term, Variable) and term not in seen:
                        seen.append(term)
            variables = seen
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        self._rest: List[List[Atom]] = [
            [atom for position, atom in enumerate(self.body) if position != pivot]
            for pivot in range(len(self.body))]
        #: pivot index -> hoisted join order of the remaining atoms
        self._plans: Dict[int, List[Atom]] = {}

    def _plan_for(self, pivot: int, instance: DatabaseInstance) -> List[Atom]:
        plan = self._plans.get(pivot)
        if plan is None:
            plan = self.matcher.plan(
                self._rest[pivot], instance,
                bound=(term for term in self.body[pivot].terms
                       if isinstance(term, Variable)))
            self._plans[pivot] = plan
        return plan

    @staticmethod
    def _delta_rows(delta: DeltaLike) -> Dict[str, List[Tuple[Any, ...]]]:
        """Normalize a delta into ``predicate -> rows`` (non-empty only)."""
        if isinstance(delta, DatabaseInstance):
            return {relation.schema.name: relation.rows()
                    for relation in delta if len(relation)}
        grouped: Dict[str, List[Tuple[Any, ...]]] = {}
        for predicate, row in delta:  # per-tuple: ok — delta rows are O(update), not O(data)
            grouped.setdefault(predicate, []).append(tuple(row))
        return grouped

    def homomorphisms(self, instance: DatabaseInstance, delta: DeltaLike,
                      dedupe: bool = True) -> Iterator[Substitution]:
        """Homomorphisms from the body into ``instance`` using ≥ 1 delta fact.

        With ``dedupe`` (the default) homomorphisms reachable through
        several pivots are yielded once, keyed by the bindings of the
        plan's ``variables`` — with ``variables`` covering every body
        variable, each distinct valuation is yielded exactly once, which is
        what counting-based answer maintenance requires.  Consumers whose
        downstream effect is idempotent (semi-naive evaluation inserting
        head facts into a set) may disable it.
        """
        matcher = self.matcher
        batch = getattr(matcher, "delta_substitutions", None)
        if batch is not None:
            # The columnar matcher joins all delta rows of a pivot at once
            # (set-at-a-time) instead of running the per-row loop below.
            yield from batch(self, instance, delta, dedupe=dedupe)
            return
        grouped = self._delta_rows(delta)
        if not grouped:
            return
        seen: Set[frozenset] = set()
        for pivot, pivot_atom in enumerate(self.body):
            rows = grouped.get(pivot_atom.predicate)
            if not rows or not instance.has_relation(pivot_atom.predicate):
                continue
            live_relation = instance.relation(pivot_atom.predicate)
            rest = self._rest[pivot]
            plan = self._plan_for(pivot, instance) if rest else []
            for row in rows:  # per-tuple: ok — tuple-at-a-time engines pivot row by row
                if row not in live_relation:
                    continue
                matcher.stats.rows_scanned += 1
                seed = match_atom_against_row(pivot_atom, row)
                if seed is None:
                    continue
                candidates = matcher.find_homomorphisms(
                    plan, instance, substitution=seed,
                    comparisons=self.comparisons, preordered=True) \
                    if rest or self.comparisons else [seed]
                for homomorphism in candidates:
                    if dedupe:
                        key = frozenset(
                            (variable.name,
                             term_value(apply_to_term(homomorphism, variable)))
                            for variable in self.variables)
                        if key in seen:
                            continue
                        seen.add(key)
                    yield homomorphism

    def projected_counts(self, instance: DatabaseInstance, delta: DeltaLike,
                         project: Optional[Sequence[Variable]] = None
                         ) -> Dict[Tuple[Any, ...], int]:
        """Deduplicated delta homomorphisms, counted per projected row.

        The counting form of :meth:`homomorphisms`: each distinct valuation
        of the plan's ``variables`` contributes 1 to the count of its
        projection onto ``project`` (default: the plan's variables).  This
        is exactly the bulk ±support the session layer's counting IVM
        applies per answer row; the columnar matcher computes it without
        materializing substitutions, other engines fall back to the
        homomorphism loop.
        """
        projection = tuple(project) if project is not None else self.variables
        batch = getattr(self.matcher, "batch_delta_counts", None)
        if batch is not None:
            return batch(self, instance, delta, projection)
        counts: Dict[Tuple[Any, ...], int] = {}
        for homomorphism in self.homomorphisms(instance, delta, dedupe=True):
            row = tuple(term_value(apply_to_term(homomorphism, variable))
                        for variable in projection)
            counts[row] = counts.get(row, 0) + 1
        return counts


def iter_delta_joins(matcher: Matcher, body: Sequence[Atom],
                     variables: Sequence[Variable], instance: DatabaseInstance,
                     delta: Optional[DatabaseInstance],
                     dedupe: bool = True) -> Iterator[Substitution]:
    """Homomorphisms from ``body`` into ``instance`` using ≥ 1 delta fact.

    One-shot wrapper over :class:`DeltaJoinPlan` for the delta-driven chase
    and semi-naive Datalog evaluation.  When ``delta`` is ``None`` (a first
    round) every homomorphism is enumerated; otherwise a plan is compiled
    for this call (per-pivot orders are still hoisted out of the row loop)
    and replayed over the delta.  Callers that evaluate the same
    conjunction across many deltas — the session layer maintaining cached
    answers — hold a :class:`DeltaJoinPlan` directly instead.
    """
    if delta is None:
        yield from matcher.find_homomorphisms(body, instance)
        return
    plan = DeltaJoinPlan(matcher, body, variables=variables)
    yield from plan.homomorphisms(instance, delta, dedupe=dedupe)


def matcher_for(engine: Optional[str] = None,
                stats: Optional[EngineStats] = None) -> Matcher:
    """Build a matcher for ``engine`` (``None`` = process default)."""
    resolved = resolve_engine(engine)
    if stats is not None:
        stats.engine = resolved
    if resolved == NAIVE:
        return NaiveMatcher(stats)
    if resolved == COLUMNAR:
        from .columnar import ColumnarMatcher  # lazy: avoids an import cycle
        return ColumnarMatcher(stats)
    return IndexedMatcher(stats)
