"""The matching layer: indexed and naive atom/body matchers.

Both matchers implement the same three operations over a
:class:`~repro.relational.instance.DatabaseInstance`:

* ``match_atom(atom, instance, substitution)`` — every extension of the
  substitution matching one atom;
* ``find_homomorphisms(atoms, instance, substitution, comparisons)`` — every
  homomorphism from a conjunction into the instance (safe negation and
  built-in comparisons applied last, as in :mod:`repro.datalog.unify`);
* ``has_homomorphism(atoms, instance, substitution)`` — existence check.

The :class:`NaiveMatcher` delegates to the row-by-row reference
implementation in :mod:`repro.datalog.unify` and exists as the oracle that
the indexed engine is differentially tested against.

The :class:`IndexedMatcher` is the production path:

* **index probes** — an atom with bound positions (constants, nulls, or
  variables already bound by the substitution) is matched by probing the
  relation's hash index over exactly those positions, so only rows that
  agree on the bound values are touched; a fully bound atom becomes an O(1)
  membership test;
* **selectivity ordering** — the positive body atoms are reordered greedily
  before the backtracking join: at each step the atom with the fewest
  unbound positions is chosen (ties broken by smaller relation), so highly
  constrained atoms prune the search early and empty relations short-circuit
  immediately.  The ordering is exposed as :meth:`Matcher.plan` so callers
  that evaluate the same conjunction many times (the delta chase pinning a
  rule to one pivot atom, a query session answering a cached query) can
  compute it once and replay it with ``preordered=True``.

The module also hosts :func:`iter_delta_joins`, the **delta-pivot join**
shared by the delta-driven chase and semi-naive Datalog evaluation: each
body atom in turn is pinned to the delta relation and the remaining atoms
are joined against the full instance, with the join order hoisted out of
the per-row loop (one plan per pivot, since bound-ness depends only on the
pivot atom, not on the delta row).

Matchers optionally record their work in an
:class:`~repro.engine.stats.EngineStats` object.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom, Comparison
from ..datalog.terms import Variable, term_value
from ..datalog.unify import (Substitution, apply_to_term, match_atom_against_row)
from ..datalog import unify as _naive
from ..relational.instance import DatabaseInstance
from .stats import EngineStats

INDEXED = "indexed"
NAIVE = "naive"

_ENGINES = (INDEXED, NAIVE)
_default_engine = INDEXED


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (``"indexed"`` or ``"naive"``)."""
    global _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    _default_engine = engine


def get_default_engine() -> str:
    """The current process-wide default engine."""
    return _default_engine


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an ``engine=`` argument: ``None`` means the default."""
    if engine is None:
        return _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    return engine


class Matcher:
    """Common interface of the matching engines."""

    name: str = "abstract"

    def __init__(self, stats: Optional[EngineStats] = None):
        self.stats = stats if stats is not None else EngineStats(engine=self.name)

    # -- interface -----------------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        raise NotImplementedError

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        raise NotImplementedError

    def plan(self, atoms: Sequence[Atom], instance: DatabaseInstance,
             bound: Iterable[Variable] = ()) -> List[Atom]:
        """A join order for ``atoms`` given already-``bound`` variables.

        The returned list can be replayed through
        ``find_homomorphisms(..., preordered=True)``; computing it once per
        (rule, pivot) pair or per cached query amortizes the ordering work.
        The naive matcher preserves the given order (its reference semantics
        evaluate atoms as written).
        """
        return list(atoms)

    def has_homomorphism(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                         substitution: Optional[Substitution] = None) -> bool:
        """``True`` iff at least one homomorphism exists."""
        for _ in self.find_homomorphisms(atoms, instance, substitution):
            return True
        return False


class NaiveMatcher(Matcher):
    """Row-by-row reference matcher (wraps :mod:`repro.datalog.unify`)."""

    name = NAIVE

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Row-by-row scan, billing only the rows actually iterated.

        Same semantics as :func:`repro.datalog.unify.match_atom`; the scan
        is restated here so early-exiting consumers (``has_homomorphism``,
        boolean queries) are charged for the prefix they touched, not the
        whole relation.
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        for row in instance.relation(atom.predicate):
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, substitution)
            if matched is not None:
                yield matched

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        """Delegates to the canonical :func:`repro.datalog.unify.find_homomorphisms`,
        injecting the counting :meth:`match_atom` so the negation/comparison
        semantics are not duplicated here.  ``preordered`` is accepted for
        interface compatibility; the naive matcher never reorders anyway."""
        yield from _naive.find_homomorphisms(atoms, instance,
                                             substitution=substitution,
                                             comparisons=comparisons,
                                             match=self.match_atom)


class IndexedMatcher(Matcher):
    """Index-probing matcher with selectivity-ordered backtracking joins."""

    name = INDEXED

    # -- single-atom matching -------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Yield every extension of ``substitution`` matching ``atom``.

        The positions of ``atom`` that are ground under the substitution are
        used as an index key; only rows agreeing on those values are
        scanned.  Repeated variables within the atom are handled by the
        per-row matcher (the first occurrence binds, later ones filter).
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        relation = instance.relation(atom.predicate)
        if not relation:
            self.stats.empty_lookups += 1
            return
        current = dict(substitution or {})
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for position, term in enumerate(atom.terms):
            term = apply_to_term(current, term)
            if not isinstance(term, Variable):
                bound_positions.append(position)
                bound_values.append(term_value(term))
        if len(bound_positions) == atom.arity:
            # Fully bound: O(1) membership test.
            self.stats.index_probes += 1
            if tuple(bound_values) in relation:
                yield current
            return
        if bound_positions:
            self.stats.index_probes += 1
            candidates: Sequence[Tuple[Any, ...]] = relation.probe(
                tuple(bound_positions), tuple(bound_values))
        else:
            candidates = relation.rows()
        for row in candidates:
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, current)
            if matched is not None:
                yield matched

    # -- conjunction matching -------------------------------------------------

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        """Yield every homomorphism from ``atoms`` into ``instance``.

        Same contract as :func:`repro.datalog.unify.find_homomorphisms`:
        positive atoms joined with backtracking, negated atoms checked after
        all positive atoms are matched (cautious over labeled nulls),
        comparisons applied last.  The positive atoms are joined in
        selectivity order instead of the order given — unless ``preordered``
        is set, in which case ``atoms`` is taken to be a :meth:`plan` and
        replayed as given.  The join/negation semantics themselves are
        delegated to the canonical implementation (with this matcher's
        index-probing :meth:`match_atom` injected), so they live only in
        :mod:`repro.datalog.unify`.
        """
        initial = dict(substitution or {})
        if comparisons:
            # Equality comparisons bind variables to ground terms; seeing
            # them bound lets the planner order (and the probes key) on them.
            initial = _naive.comparison_bindings(comparisons, initial)
        ordered = list(atoms) if preordered else self.plan(atoms, instance,
                                                           bound=initial)
        yield from _naive.find_homomorphisms(ordered, instance,
                                             substitution=initial,
                                             comparisons=comparisons,
                                             match=self.match_atom)

    def plan(self, atoms: Sequence[Atom], instance: DatabaseInstance,
             bound: Iterable[Variable] = ()) -> List[Atom]:
        """Greedy join order: most-bound atom first, smaller relation on ties.

        Negated atoms always go last (they are checks, not generators);
        ``bound`` names variables that will already be bound when the plan
        is replayed (e.g. by a delta-pivot seed or an outer substitution).
        """
        positive = [atom for atom in atoms if not atom.negated]
        negative = [atom for atom in atoms if atom.negated]
        if len(positive) <= 1:
            return positive + negative
        remaining = positive
        bound_vars: Set[Variable] = set(bound)
        ordered: List[Atom] = []

        def cost(atom: Atom) -> Tuple[int, int]:
            unbound = {term for term in atom.terms
                       if isinstance(term, Variable) and term not in bound_vars}
            size = (len(instance.relation(atom.predicate))
                    if instance.has_relation(atom.predicate) else 0)
            return (len(unbound), size)

        while remaining:
            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best)
            bound_vars.update(term for term in best.terms
                              if isinstance(term, Variable))
        return ordered + negative


def iter_delta_joins(matcher: Matcher, body: Sequence[Atom],
                     variables: Sequence[Variable], instance: DatabaseInstance,
                     delta: Optional[DatabaseInstance],
                     dedupe: bool = True) -> Iterator[Substitution]:
    """Homomorphisms from ``body`` into ``instance`` using ≥ 1 delta fact.

    The delta-pivot join shared by the delta-driven chase and semi-naive
    Datalog evaluation.  When ``delta`` is ``None`` (a first round) every
    homomorphism is enumerated.  Otherwise each body atom in turn is pinned
    to its delta relation and the remaining atoms are joined against the
    full instance; delta rows no longer present in the live relation (e.g.
    rewritten away by a later EGD merge) are skipped.  The join order of the
    remaining atoms is computed **once per pivot** — bound-ness depends only
    on which atom is pinned, not on the pinned row — instead of once per
    delta row.

    With ``dedupe`` (the default) homomorphisms reachable through several
    pivots are yielded once, keyed by the bindings of ``variables``;
    consumers whose downstream effect is idempotent (semi-naive evaluation
    inserting head facts into a set) may disable it.
    """
    if delta is None:
        yield from matcher.find_homomorphisms(body, instance)
        return
    seen: Set[frozenset] = set()
    for pivot, pivot_atom in enumerate(body):
        if not delta.has_relation(pivot_atom.predicate):
            continue
        delta_relation = delta.relation(pivot_atom.predicate)
        if not delta_relation:
            continue
        live_relation = instance.relation(pivot_atom.predicate)
        rest = [atom for position, atom in enumerate(body) if position != pivot]
        plan = matcher.plan(
            rest, instance,
            bound=(term for term in pivot_atom.terms
                   if isinstance(term, Variable))) if rest else []
        for row in delta_relation.rows():
            if row not in live_relation:
                continue
            matcher.stats.rows_scanned += 1
            seed = match_atom_against_row(pivot_atom, row)
            if seed is None:
                continue
            candidates = matcher.find_homomorphisms(
                plan, instance, substitution=seed, preordered=True) \
                if rest else [seed]
            for homomorphism in candidates:
                if dedupe:
                    key = frozenset(
                        (variable.name,
                         term_value(apply_to_term(homomorphism, variable)))
                        for variable in variables)
                    if key in seen:
                        continue
                    seen.add(key)
                yield homomorphism


def matcher_for(engine: Optional[str] = None,
                stats: Optional[EngineStats] = None) -> Matcher:
    """Build a matcher for ``engine`` (``None`` = process default)."""
    resolved = resolve_engine(engine)
    if stats is not None:
        stats.engine = resolved
    if resolved == NAIVE:
        return NaiveMatcher(stats)
    return IndexedMatcher(stats)
