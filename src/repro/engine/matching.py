"""The matching layer: indexed and naive atom/body matchers.

Both matchers implement the same three operations over a
:class:`~repro.relational.instance.DatabaseInstance`:

* ``match_atom(atom, instance, substitution)`` — every extension of the
  substitution matching one atom;
* ``find_homomorphisms(atoms, instance, substitution, comparisons)`` — every
  homomorphism from a conjunction into the instance (safe negation and
  built-in comparisons applied last, as in :mod:`repro.datalog.unify`);
* ``has_homomorphism(atoms, instance, substitution)`` — existence check.

The :class:`NaiveMatcher` delegates to the row-by-row reference
implementation in :mod:`repro.datalog.unify` and exists as the oracle that
the indexed engine is differentially tested against.

The :class:`IndexedMatcher` is the production path:

* **index probes** — an atom with bound positions (constants, nulls, or
  variables already bound by the substitution) is matched by probing the
  relation's hash index over exactly those positions, so only rows that
  agree on the bound values are touched; a fully bound atom becomes an O(1)
  membership test;
* **selectivity ordering** — the positive body atoms are reordered greedily
  before the backtracking join: at each step the atom with the fewest
  unbound positions is chosen (ties broken by smaller relation), so highly
  constrained atoms prune the search early and empty relations short-circuit
  immediately.

Matchers optionally record their work in an
:class:`~repro.engine.stats.EngineStats` object.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom, Comparison
from ..datalog.terms import Variable, term_value
from ..datalog.unify import (Substitution, apply_to_term, match_atom_against_row)
from ..datalog import unify as _naive
from ..relational.instance import DatabaseInstance
from .stats import EngineStats

INDEXED = "indexed"
NAIVE = "naive"

_ENGINES = (INDEXED, NAIVE)
_default_engine = INDEXED


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine (``"indexed"`` or ``"naive"``)."""
    global _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    _default_engine = engine


def get_default_engine() -> str:
    """The current process-wide default engine."""
    return _default_engine


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an ``engine=`` argument: ``None`` means the default."""
    if engine is None:
        return _default_engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {_ENGINES}")
    return engine


class Matcher:
    """Common interface of the matching engines."""

    name: str = "abstract"

    def __init__(self, stats: Optional[EngineStats] = None):
        self.stats = stats if stats is not None else EngineStats(engine=self.name)

    # -- interface -----------------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        raise NotImplementedError

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = ()
                           ) -> Iterator[Substitution]:
        raise NotImplementedError

    def has_homomorphism(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                         substitution: Optional[Substitution] = None) -> bool:
        """``True`` iff at least one homomorphism exists."""
        for _ in self.find_homomorphisms(atoms, instance, substitution):
            return True
        return False


class NaiveMatcher(Matcher):
    """Row-by-row reference matcher (wraps :mod:`repro.datalog.unify`)."""

    name = NAIVE

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Row-by-row scan, billing only the rows actually iterated.

        Same semantics as :func:`repro.datalog.unify.match_atom`; the scan
        is restated here so early-exiting consumers (``has_homomorphism``,
        boolean queries) are charged for the prefix they touched, not the
        whole relation.
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        for row in instance.relation(atom.predicate):
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, substitution)
            if matched is not None:
                yield matched

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = ()
                           ) -> Iterator[Substitution]:
        """Delegates to the canonical :func:`repro.datalog.unify.find_homomorphisms`,
        injecting the counting :meth:`match_atom` so the negation/comparison
        semantics are not duplicated here."""
        yield from _naive.find_homomorphisms(atoms, instance,
                                             substitution=substitution,
                                             comparisons=comparisons,
                                             match=self.match_atom)


class IndexedMatcher(Matcher):
    """Index-probing matcher with selectivity-ordered backtracking joins."""

    name = INDEXED

    # -- single-atom matching -------------------------------------------------

    def match_atom(self, atom: Atom, instance: DatabaseInstance,
                   substitution: Optional[Substitution] = None
                   ) -> Iterator[Substitution]:
        """Yield every extension of ``substitution`` matching ``atom``.

        The positions of ``atom`` that are ground under the substitution are
        used as an index key; only rows agreeing on those values are
        scanned.  Repeated variables within the atom are handled by the
        per-row matcher (the first occurrence binds, later ones filter).
        """
        if not instance.has_relation(atom.predicate):
            self.stats.empty_lookups += 1
            return
        relation = instance.relation(atom.predicate)
        if not relation:
            self.stats.empty_lookups += 1
            return
        current = dict(substitution or {})
        bound_positions: List[int] = []
        bound_values: List[Any] = []
        for position, term in enumerate(atom.terms):
            term = apply_to_term(current, term)
            if not isinstance(term, Variable):
                bound_positions.append(position)
                bound_values.append(term_value(term))
        if len(bound_positions) == atom.arity:
            # Fully bound: O(1) membership test.
            self.stats.index_probes += 1
            if tuple(bound_values) in relation:
                yield current
            return
        if bound_positions:
            self.stats.index_probes += 1
            candidates: Sequence[Tuple[Any, ...]] = relation.probe(
                tuple(bound_positions), tuple(bound_values))
        else:
            candidates = relation.rows()
        for row in candidates:
            self.stats.rows_scanned += 1
            matched = match_atom_against_row(atom, row, current)
            if matched is not None:
                yield matched

    # -- conjunction matching -------------------------------------------------

    def find_homomorphisms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = ()
                           ) -> Iterator[Substitution]:
        """Yield every homomorphism from ``atoms`` into ``instance``.

        Same contract as :func:`repro.datalog.unify.find_homomorphisms`:
        positive atoms joined with backtracking, negated atoms checked after
        all positive atoms are matched (cautious over labeled nulls),
        comparisons applied last.  The positive atoms are joined in
        selectivity order instead of the order given; the join/negation
        semantics themselves are delegated to the canonical implementation
        (with this matcher's index-probing :meth:`match_atom` injected), so
        they live only in :mod:`repro.datalog.unify`.
        """
        initial = dict(substitution or {})
        positive = [atom for atom in atoms if not atom.negated]
        negative = [atom for atom in atoms if atom.negated]
        ordered = self._order_atoms(positive, instance, initial)
        yield from _naive.find_homomorphisms(ordered + negative, instance,
                                             substitution=initial,
                                             comparisons=comparisons,
                                             match=self.match_atom)

    def _order_atoms(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                     substitution: Substitution) -> List[Atom]:
        """Greedy join order: most-bound atom first, smaller relation on ties."""
        if len(atoms) <= 1:
            return list(atoms)
        remaining = list(atoms)
        bound: Set[Variable] = set(substitution)
        ordered: List[Atom] = []

        def cost(atom: Atom) -> Tuple[int, int]:
            unbound = {term for term in atom.terms
                       if isinstance(term, Variable) and term not in bound}
            size = (len(instance.relation(atom.predicate))
                    if instance.has_relation(atom.predicate) else 0)
            return (len(unbound), size)

        while remaining:
            best = min(remaining, key=cost)
            remaining.remove(best)
            ordered.append(best)
            bound.update(term for term in best.terms if isinstance(term, Variable))
        return ordered


def matcher_for(engine: Optional[str] = None,
                stats: Optional[EngineStats] = None) -> Matcher:
    """Build a matcher for ``engine`` (``None`` = process default)."""
    resolved = resolve_engine(engine)
    if stats is not None:
        stats.engine = resolved
    if resolved == NAIVE:
        return NaiveMatcher(stats)
    return IndexedMatcher(stats)
