"""The shared evaluation engine: indexed storage access + matching.

Every evaluator of the reproduction — the chase, certain-answer QA, the
semi-naive least-model computation, the deterministic weakly-sticky solver
and the quality pipeline — bottoms out in matching rule/query atoms against
a :class:`~repro.relational.instance.DatabaseInstance`.  This package is the
single fast matching engine under all of them:

* :mod:`repro.engine.stats` — :class:`EngineStats`, the instrumentation
  object threaded through evaluations (rows scanned, index probes, triggers
  fired, rounds, ...);
* :mod:`repro.engine.matching` — the :class:`IndexedMatcher` (hash-index
  probes + selectivity-ordered joins) and the :class:`NaiveMatcher`
  (row-by-row reference oracle wrapping :mod:`repro.datalog.unify`);
* :mod:`repro.engine.columnar` — the :class:`ColumnarMatcher`, evaluating
  conjunctions set-at-a-time over interned-int column stores with cached
  specialized join functions (vectorized with numpy when available, plain
  lists otherwise).

Engine selection: evaluators take an ``engine=`` argument (``"indexed"``,
``"naive"`` or ``"columnar"``); when omitted they use the process-wide
default, settable with :func:`set_default_engine` — handy to flip an entire
pipeline onto the naive reference when debugging, or onto the columnar path
for batch-heavy workloads.  See ``docs/ARCHITECTURE.md``.
"""

from .matching import (COLUMNAR, INDEXED, NAIVE, DeltaJoinPlan,
                       IndexedMatcher, Matcher, NaiveMatcher,
                       get_default_engine, iter_delta_joins, matcher_for,
                       resolve_engine, set_default_engine)
from .stats import EngineStats
from .versioning import InstanceVersion, ReadTransaction, VersionStore

#: Session/snapshot names served lazily (PEP 562): those modules import the
#: datalog evaluators, which import this package — a top-level import here
#: would be circular.
_SESSION_EXPORTS = ("MaterializedProgram", "QuerySession", "UpdateResult",
                    "BatchAnswers", "MaintainedAnswers")
_SNAPSHOT_EXPORTS = ("save_program", "load_program", "load_extras",
                     "read_document")
#: served lazily too: the columnar module is only imported when used
_COLUMNAR_EXPORTS = ("ColumnarMatcher", "BindingTable")

__all__ = [
    "EngineStats",
    "Matcher", "IndexedMatcher", "NaiveMatcher",
    "INDEXED", "NAIVE", "COLUMNAR",
    *_COLUMNAR_EXPORTS,
    "matcher_for", "resolve_engine", "get_default_engine", "set_default_engine",
    "iter_delta_joins", "DeltaJoinPlan",
    "VersionStore", "InstanceVersion", "ReadTransaction",
    *_SESSION_EXPORTS,
    *_SNAPSHOT_EXPORTS,
]


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from . import session
        return getattr(session, name)
    if name in _SNAPSHOT_EXPORTS:
        from . import snapshot
        return getattr(snapshot, name)
    if name in _COLUMNAR_EXPORTS:
        from . import columnar
        return getattr(columnar, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
