"""Batched trigger application: joined bindings → bulk head instantiation.

The columnar engine batches the *joins* of the chase, but the pre-PR
trigger loop still walked the joined bindings one homomorphism at a time:
decode a substitution dict, run a head-satisfaction check, invent nulls
one ``fresh()`` call at a time, insert head facts one ``Relation.add``
each.  For derivation-heavy programs that per-trigger Python work — not
the joins — dominates the chase profile.

This module applies a (rule, pivot)'s triggers **set-at-a-time**, straight
off the :class:`~repro.engine.columnar.BindingTable`:

* group the distinct joined bindings by the rule's *frontier* (the
  universal variables that occur in the head) with the same mixed-radix
  packed-key kernel the answer counts use;
* for existential rules, filter already-satisfied groups with one group
  index probe per group (instead of one ``has_homomorphism`` join per
  trigger), then invent all labeled nulls in bulk — one
  :meth:`~repro.relational.values.NullFactory.fresh_many` reservation and
  one locked :meth:`~repro.relational.values.ValueCatalog.register_many`
  append per batch;
* gather each head atom's columns as code arrays and insert through
  :meth:`~repro.relational.instance.Relation.add_many`, whose novelty mask
  directly yields the next round's delta — no re-probing.

Batching a chase round is a *parallel* application of that round's
triggers, which is a valid chase strategy; the shapes where it is also
**exactly** the sequential restricted chase are the ones routed here:

* non-existential rules (with at most one head atom per relation): a
  frontier group fires iff at least one of its head rows is novel, which
  is precisely when the sequential chase would have found the head
  unsatisfied;
* single-atom existential heads: distinct frontier groups can never
  witness each other's freshly-invented heads (they differ at a universal
  head position), so the pre-batch satisfaction filter equals the
  sequential check.

Anything else — multi-atom existential heads, a relation fed by two head
atoms of one rule — returns ``None`` and falls back to the per-trigger
loop.  EGDs get the same treatment on the detection side:
:meth:`TriggerBatcher.egd_candidates` compares the two sides' code columns
over the whole joined table and decodes only the rows that actually
differ, leaving the (rare) merges to the per-merge logic.

Everything here runs on both kernels: vectorized when
:mod:`repro.relational.columns` has numpy, plain lists otherwise.
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datalog.terms import Variable, term_value, to_term
from ..datalog.unify import apply_to_atom
from ..relational import columns as _cols
from ..relational.instance import DatabaseInstance
from ..relational.values import NullFactory, value_catalog
from .columnar import BindingTable, _decode_array, _take_rows, _unique_rows
from .matching import DeltaJoinPlan, DeltaLike

__all__ = ["BatchOutcome", "TriggerBatcher", "seminaive_head_batches"]

Fact = Tuple[str, Tuple[Any, ...]]

#: head-term descriptor kinds: a universal (frontier) variable, a baked
#: constant code, an existential variable slot
_UNIVERSAL, _CONSTANT, _EXISTENTIAL = 0, 1, 2


class BatchOutcome:
    """What one batched rule application did."""

    __slots__ = ("fired", "novel")

    def __init__(self, fired: int, novel: List[Fact]):
        #: triggers fired (frontier groups that produced something)
        self.fired = fired
        #: the head facts that were actually new, as ``(predicate, row)``
        self.novel = novel


class _RuleContext:
    """Per-rule compilation for the batch path (built once per chase run).

    Holds the frontier (head-occurring universal variables, first-occurrence
    order), the per-head-atom term descriptors (constant codes baked — the
    catalog is append-only), and, for existential rules, the satisfaction
    probe layout over the single head atom.
    """

    __slots__ = ("eligible", "frontier", "existentials", "head_atoms",
                 "sat_predicate", "sat_positions", "sat_sources",
                 "sat_dup_pairs")

    def __init__(self, tgd):
        catalog = value_catalog()
        self.existentials: List[Variable] = list(tgd.existential_variables())
        exist_index = {v: k for k, v in enumerate(self.existentials)}
        frontier: List[Variable] = []
        head_atoms: List[Tuple[str, Tuple[Tuple[int, int], ...]]] = []
        for atom in tgd.head:
            descriptors: List[Tuple[int, int]] = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    if term in exist_index:
                        descriptors.append((_EXISTENTIAL, exist_index[term]))
                    else:
                        if term not in frontier:
                            frontier.append(term)
                        descriptors.append((_UNIVERSAL,
                                            frontier.index(term)))
                else:
                    descriptors.append(
                        (_CONSTANT, catalog.code(term_value(term))))
            head_atoms.append((atom.predicate, tuple(descriptors)))
        self.frontier = tuple(frontier)
        self.head_atoms = head_atoms
        predicates = [predicate for predicate, _ in head_atoms]
        if self.existentials:
            # Exact only for single-atom heads: distinct frontier groups
            # then cannot witness each other's freshly-invented heads.
            self.eligible = len(head_atoms) == 1
        else:
            # Atom-major bulk inserts match the sequential novelty
            # attribution only when each relation is fed by one head atom.
            self.eligible = len(set(predicates)) == len(predicates)
        self.sat_predicate: Optional[str] = None
        if self.eligible and self.existentials:
            predicate, descriptors = head_atoms[0]
            self.sat_predicate = predicate
            positions: List[int] = []
            sources: List[Tuple[int, int]] = []
            dup_pairs: List[Tuple[int, int]] = []
            first_at: Dict[int, int] = {}
            for position, (kind, payload) in enumerate(descriptors):
                if kind == _EXISTENTIAL:
                    if payload in first_at:
                        # a repeated existential: any witness row must agree
                        # at both positions
                        dup_pairs.append((position, first_at[payload]))
                    else:
                        first_at[payload] = position
                else:
                    positions.append(position)
                    sources.append((kind, payload))
            self.sat_positions = tuple(positions)
            self.sat_sources = tuple(sources)
            self.sat_dup_pairs = tuple(dup_pairs)


def _as_list(column) -> List[int]:
    return column.tolist() if hasattr(column, "tolist") else column


class TriggerBatcher:
    """Applies one chase run's TGD/EGD triggers batch-natively.

    One instance per run (per-rule contexts are compiled lazily and memoized
    by rule index); the chase falls back to its per-trigger loop whenever a
    method returns ``None``.
    """

    def __init__(self, matcher, nulls: NullFactory):
        self.matcher = matcher
        self.nulls = nulls
        self._contexts: Dict[int, _RuleContext] = {}

    # -- TGDs ----------------------------------------------------------------

    def apply(self, index: int, tgd, instance: DatabaseInstance,
              delta: Optional[DeltaLike],
              provenance: Optional[dict] = None) -> Optional[BatchOutcome]:
        """Fire every applicable trigger of ``tgd`` in one vectorized pass.

        Returns ``None`` when the rule shape is outside the exact batch
        semantics (see module docstring) — the caller falls back — and a
        :class:`BatchOutcome` otherwise.
        """
        context = self._contexts.get(index)
        if context is None:
            context = self._contexts[index] = _RuleContext(tgd)
        if not context.eligible:
            return None
        matcher = self.matcher
        if delta is None:
            table = matcher.binding_table(tgd.body, instance)
            if table is None:
                return None
        else:
            plan = DeltaJoinPlan(matcher, tgd.body,
                                 variables=tgd.body_variables())
            table = matcher.delta_binding_table(plan, instance, delta)
        if not table.length:
            return BatchOutcome(0, [])
        if any(variable not in table.columns for variable in context.frontier):
            return None
        want_reps = provenance is not None
        columns, reps = self._frontier_groups(context, table, want_reps)
        count = len(columns[0]) if columns else 1
        if context.existentials:
            return self._apply_existential(context, tgd, instance, table,
                                           columns, reps, count, provenance)
        return self._apply_plain(context, tgd, instance, table,
                                 columns, reps, count, provenance)

    def _frontier_groups(self, context: _RuleContext, table: BindingTable,
                         want_reps: bool):
        """Distinct frontier valuations of ``table``.

        Returns ``(columns, reps)``: one code column per frontier variable
        (all of the same group count) and, when requested, the table index
        of one representative row per group (the provenance witness).  An
        empty frontier means a single group represented by any row.
        """
        if not context.frontier:
            return [], ([0] if want_reps else None)
        np = _cols._np
        if np is not None:
            matrix = np.stack(
                [np.asarray(table.columns[variable], dtype=np.int64)
                 for variable in context.frontier], axis=1)
            uniq, first = _unique_rows(np, matrix, return_index=True)
            # First-occurrence order (np.unique sorts): keeps batch inserts
            # in the same order the per-trigger loop — and the fallback
            # kernel — would produce, so row order stays deterministic.
            order = np.argsort(first, kind="stable")
            uniq = uniq[order]
            reps = [int(i) for i in first[order].tolist()] if want_reps \
                else None
            return [uniq[:, j] for j in range(len(context.frontier))], reps
        seen: Dict[Tuple[int, ...], int] = {}
        for i, key in enumerate(table.code_rows(context.frontier)):
            if key not in seen:
                seen[key] = i
        keys = list(seen)
        reps = list(seen.values()) if want_reps else None
        columns = [[key[j] for key in keys]
                   for j in range(len(context.frontier))]
        return columns, reps

    def _apply_existential(self, context: _RuleContext, tgd,
                           instance: DatabaseInstance, table: BindingTable,
                           columns, reps, count: int,
                           provenance: Optional[dict]) -> BatchOutcome:
        keep = self._unsatisfied_groups(context, instance, columns, count)
        fired = len(keep)
        if not fired:
            return BatchOutcome(0, [])
        if fired != count:
            columns = _gather_columns(columns, keep)
            if reps is not None:
                reps = [reps[g] for g in keep]
        stats = self.matcher.stats
        width = len(context.existentials)
        fresh = self.nulls.fresh_many(fired * width)
        null_codes = value_catalog().register_many(fresh)
        stats.nulls_bulk_allocated += len(fresh)
        predicate, descriptors = context.head_atoms[0]
        rows, code_rows = _head_rows(descriptors, columns, null_codes,
                                     width, fired)
        mask = instance.relation(predicate).add_many(rows, code_rows)
        novel = [(predicate, row)
                 for row, is_new in zip(rows, mask) if is_new]
        stats.triggers_batched += fired
        if provenance is not None and novel:
            self._record_provenance(
                tgd, table, reps,
                [[(predicate, rows[g])] if mask[g] else []
                 for g in range(fired)], provenance)
        return BatchOutcome(fired, novel)

    def _apply_plain(self, context: _RuleContext, tgd,
                     instance: DatabaseInstance, table: BindingTable,
                     columns, reps, count: int,
                     provenance: Optional[dict]) -> BatchOutcome:
        # No pre-filter: a group whose head already holds simply inserts
        # nothing novel, exactly like the sequential satisfaction check.
        stats = self.matcher.stats
        fired_mask = [False] * count
        novel: List[Fact] = []
        group_facts: Optional[List[List[Fact]]] = \
            [[] for _ in range(count)] if provenance is not None else None
        for predicate, descriptors in context.head_atoms:
            rows, code_rows = _head_rows(descriptors, columns, None, 0, count)
            mask = instance.relation(predicate).add_many(rows, code_rows)
            for g, is_new in enumerate(mask):
                if is_new:
                    fired_mask[g] = True
                    novel.append((predicate, rows[g]))
                    if group_facts is not None:
                        group_facts[g].append((predicate, rows[g]))
        fired = sum(fired_mask)
        stats.triggers_batched += fired
        if provenance is not None and fired:
            fired_groups = [g for g in range(count) if fired_mask[g]]
            self._record_provenance(
                tgd, table, [reps[g] for g in fired_groups],
                [group_facts[g] for g in fired_groups], provenance)
        return BatchOutcome(fired, novel)

    def _unsatisfied_groups(self, context: _RuleContext,
                            instance: DatabaseInstance, columns,
                            count: int) -> List[int]:
        """The frontier groups whose head is not already witnessed."""
        predicate = context.sat_predicate
        if not instance.has_relation(predicate):
            return list(range(count))
        relation = instance.relation(predicate)
        if not relation:
            return list(range(count))
        store = relation.column_store()
        stats = self.matcher.stats
        dup_pairs = context.sat_dup_pairs
        if not context.sat_positions:
            # Nothing bound in the head: any stored row (agreeing on
            # repeated existentials) witnesses every group.
            stats.rows_scanned += len(store) if dup_pairs else 0
            witnessed = any(
                all(store.column(p)[slot] == store.column(q)[slot]
                    for p, q in dup_pairs)
                for slot in range(len(store))) if dup_pairs else True
            return [] if witnessed else list(range(count))
        groups = store.group_index(context.sat_positions)
        stats.index_probes += count
        sources = []
        for kind, payload in context.sat_sources:
            if kind == _UNIVERSAL:
                sources.append(_as_list(columns[payload]))
            else:
                sources.append(repeat(payload, count))
        if len(sources) == 1:
            keys: Any = sources[0]
            if not isinstance(keys, list):
                keys = list(keys)
        else:
            keys = zip(*sources)
        if not dup_pairs:
            return [g for g, key in enumerate(keys) if key not in groups]
        out = []
        pair_columns = [(store.column(p), store.column(q))
                        for p, q in dup_pairs]
        for g, key in enumerate(keys):
            bucket = groups.get(key)
            if bucket is None:
                out.append(g)
                continue
            for slot in _as_list(bucket):
                if all(left[slot] == right[slot]
                       for left, right in pair_columns):
                    break
            else:
                out.append(g)
        return out

    def _record_provenance(self, tgd, table: BindingTable,
                           reps: Sequence[int],
                           facts_per_group: Sequence[Sequence[Fact]],
                           provenance: dict) -> None:
        """Record one body witness per group for its novel facts.

        ``reps`` indexes one representative table row per group; the
        decoded substitution grounds the body exactly as the per-trigger
        path would (any trigger of the group is a valid witness).  Rows are
        decoded directly — ``reps`` need not be monotone, so the
        ``_take_rows`` same-length shortcut would misalign groups.
        """
        values = value_catalog().values()
        variables = list(table.columns)
        lists = [_as_list(table.columns[variable]) for variable in variables]
        witnesses = (
            {variable: to_term(values[lists[j][int(rep)]])
             for j, variable in enumerate(variables)}
            for rep in reps)
        for g, homomorphism in enumerate(witnesses):
            body_facts = tuple(
                (grounded.predicate, grounded.to_fact_row())
                for grounded in (apply_to_atom(homomorphism, atom)
                                 for atom in tgd.body))
            for fact in facts_per_group[g]:
                provenance.setdefault(fact, body_facts)

    # -- EGDs ----------------------------------------------------------------

    def egd_candidates(self, egd, instance: DatabaseInstance,
                       delta: Optional[DeltaLike]
                       ) -> Optional[List[dict]]:
        """The trigger substitutions of ``egd`` whose two sides differ.

        Vectorized pre-filter for the EGD loop: compares the left/right
        code columns over the whole joined table (codes biject with
        value-equality classes, nulls included) and decodes only the rows
        that could cause a merge or a conflict.  Returns ``None`` when the
        batch path cannot seed — the caller falls back to the generic
        delta join.
        """
        matcher = self.matcher
        if delta is None:
            table = matcher.binding_table(egd.body, instance)
            if table is None:
                return None
        else:
            plan = DeltaJoinPlan(matcher, egd.body,
                                 variables=egd.body_variables())
            table = matcher.delta_binding_table(plan, instance, delta)
        if not table.length:
            return []
        left = _side_codes(table, egd.left, -1)
        right = _side_codes(table, egd.right, -2)
        if left is None or right is None:
            return None
        np = _cols._np
        if np is not None and not (isinstance(left, int)
                                   and isinstance(right, int)):
            lhs = left if isinstance(left, int) \
                else np.asarray(left, dtype=np.int64)
            rhs = right if isinstance(right, int) \
                else np.asarray(right, dtype=np.int64)
            keep = np.nonzero(lhs != rhs)[0].tolist()
        else:
            n = table.length
            lhs = [left] * n if isinstance(left, int) else _as_list(left)
            rhs = [right] * n if isinstance(right, int) else _as_list(right)
            keep = [i for i in range(n) if lhs[i] != rhs[i]]
        if not keep:
            return []
        return list(_take_rows(table, keep).substitutions())


def _gather_columns(columns, keep: Sequence[int]):
    np = _cols._np
    if np is not None and columns and hasattr(columns[0], "shape"):
        index = np.asarray(keep, dtype=np.int64)
        return [column[index] for column in columns]
    return [[column[g] for g in keep] for column in columns]


def _head_rows(descriptors, columns, null_codes: Optional[List[int]],
               null_width: int, count: int):
    """Instantiate one head atom over ``count`` groups.

    Gathers the frontier columns, broadcasts baked constants, and slices
    the bulk-allocated null codes (group-major layout: group ``g``'s
    ``k``-th existential sits at ``null_codes[g * null_width + k]``).
    Returns ``(rows, code_rows)`` ready for ``Relation.add_many``.
    """
    np = _cols._np
    if np is not None:
        parts = []
        nulls_matrix = None
        for kind, payload in descriptors:
            if kind == _UNIVERSAL:
                parts.append(np.asarray(columns[payload], dtype=np.int64))
            elif kind == _CONSTANT:
                parts.append(np.full(count, payload, dtype=np.int64))
            else:
                if nulls_matrix is None:
                    nulls_matrix = np.asarray(null_codes, dtype=np.int64) \
                        .reshape(count, null_width)
                parts.append(nulls_matrix[:, payload])
        if not parts:
            return [()] * count, [()] * count
        matrix = np.stack(parts, axis=1)
        decode = _decode_array()
        value_columns = [decode[matrix[:, j]].tolist()
                         for j in range(len(parts))]
        rows = list(zip(*value_columns))
        code_rows = [tuple(codes) for codes in matrix.tolist()]
        return rows, code_rows
    values = value_catalog().values()
    sources: List[Any] = []
    for kind, payload in descriptors:
        if kind == _UNIVERSAL:
            sources.append(columns[payload])
        elif kind == _CONSTANT:
            sources.append(repeat(payload, count))
        else:
            sources.append([null_codes[g * null_width + payload]
                            for g in range(count)])
    if not sources:
        return [()] * count, [()] * count
    code_rows = list(zip(*sources))
    rows = [tuple(values[code] for code in codes) for codes in code_rows]
    return rows, code_rows


def _side_codes(table: BindingTable, term, sentinel: int):
    """One EGD side as a code column, a constant code, or a sentinel.

    Distinct sentinels per side keep two *unregistered* constants from
    comparing equal (they may be distinct values — a genuine conflict the
    decision logic must see).
    """
    if isinstance(term, Variable):
        return table.columns.get(term)
    code = value_catalog().try_code(term_value(term))
    return code if code is not None else sentinel


# -- seminaive fixpoint -------------------------------------------------------

def seminaive_head_batches(matcher, rule, instance: DatabaseInstance,
                           delta: Optional[DeltaLike],
                           context_cache: Dict[int, _RuleContext],
                           index: int
                           ) -> Optional[List[Tuple[str, list, list]]]:
    """One plain rule's head rows, batch-instantiated for the seminaive loop.

    Plain Datalog needs no frontier grouping or satisfaction filter — every
    joined binding projects a head row and ``add_many``'s novelty mask does
    the dedupe — so this just routes the joined table through
    :func:`_head_rows`.  Returns ``[(predicate, rows, code_rows), ...]``
    per head atom, or ``None`` to fall back.
    """
    context = context_cache.get(index)
    if context is None:
        context = context_cache[index] = _RuleContext(rule)
    predicates = [predicate for predicate, _ in context.head_atoms]
    if len(set(predicates)) != len(predicates):
        return None
    if delta is None:
        table = matcher.binding_table(rule.body, instance)
        if table is None:
            return None
    else:
        plan = DeltaJoinPlan(matcher, rule.body,
                             variables=rule.body_variables())
        table = matcher.delta_binding_table(plan, instance, delta)
    if any(variable not in table.columns for variable in context.frontier):
        return None
    if not table.length:
        return []
    columns = [table.columns[variable] for variable in context.frontier]
    out = []
    for predicate, descriptors in context.head_atoms:
        rows, code_rows = _head_rows(descriptors, columns, None, 0,
                                     table.length)
        out.append((predicate, rows, code_rows))
    return out
