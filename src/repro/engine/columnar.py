"""The columnar matcher: batch joins over interned-int columns + codegen.

This is the third matching engine (``engine="columnar"``), layered on the
same :class:`~repro.relational.instance.DatabaseInstance` as the indexed
engine but evaluating conjunctions **set-at-a-time**: bindings live in a
:class:`BindingTable` (one code column per variable, backed by the
process-wide :class:`~repro.relational.values.ValueCatalog`), and each body
atom extends the table with one *probe step* — probe the relation's cached
group index with the bound codes, gather the matching slots, filter
repeated-variable positions — instead of one Python-level backtracking call
per candidate row.  With numpy available the gathers and filters are
vectorized ``int64`` operations; without it the same kernels run over plain
lists (same semantics, exercised by the differential suite).

The probe pipeline of a conjunction is additionally **compiled**: the step
descriptors (key positions, baked constant codes, gather targets) are
derived once per (atom order, bound variables) signature and baked into a
generated straight-line join function, cached process-wide — the steady
state of the delta chase and of IVM maintenance replays one specialized
function per (rule, pivot) with zero per-call classification
(``codegen_cache_hits`` counts the replays).

Consumers reach the batch path through three surfaces:

* :meth:`ColumnarMatcher.find_homomorphisms` — the generic matcher
  interface; joins in batch, then decodes one substitution per result row
  (the chase's trigger loop needs the dicts anyway);
* :meth:`ColumnarMatcher.answer_counts` — the query-answering fast path:
  join, project onto the answer variables and count distinct valuations
  *without ever materializing substitutions*
  (:func:`repro.datalog.answering.evaluate_query_counts` dispatches here);
* :meth:`ColumnarMatcher.delta_substitutions` /
  :meth:`ColumnarMatcher.batch_delta_counts` — the delta-pivot join of
  :class:`~repro.engine.matching.DeltaJoinPlan`, seeding the table with
  *all* delta rows of a pivot at once (the chase and the session layer's
  counting IVM replay these per update).

Semantics match the reference engines, with one documented nuance
inherited from :class:`~repro.relational.values.ValueCatalog` (and from
:class:`~repro.relational.values.ValueInterner` before it): values equal
under Python ``==`` share one code, so answers decode to the canonical
(first-registered) representative — e.g. ``1`` for ``1.0``.
"""

from __future__ import annotations

from itertools import repeat
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from ..datalog.atoms import Atom, Comparison
from ..datalog.terms import Variable, term_value, to_term
from ..datalog.unify import Substitution, comparison_bindings
from ..relational import columns as _cols
from ..relational.instance import DatabaseInstance
from ..relational.values import Null, value_catalog
from .matching import COLUMNAR, DeltaJoinPlan, DeltaLike, IndexedMatcher

__all__ = ["BindingTable", "ColumnarMatcher", "codegen_cache_size"]


class BindingTable:
    """A batch of variable bindings: one code column per variable.

    ``columns`` maps each bound :class:`Variable` to a column of
    :class:`~repro.relational.values.ValueCatalog` codes — an ``int64``
    ndarray on the numpy path, a plain list on the fallback — all of
    ``length`` entries.  A unit table (``length == 1`` with no columns) is
    the seed of an unconstrained join.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[Variable, Any], length: int):
        self.columns = columns
        self.length = length

    @classmethod
    def seed(cls, substitution: Substitution) -> "BindingTable":
        """A one-row table carrying a ground substitution's bindings."""
        catalog = value_catalog()
        np = _cols._np
        columns: Dict[Variable, Any] = {}
        for variable, term in substitution.items():
            code = catalog.code(term_value(term))
            columns[variable] = np.asarray([code], dtype=np.int64) \
                if np is not None else [code]
        return cls(columns, 1)

    def empty_like(self, extra: Sequence[Variable] = ()) -> "BindingTable":
        """An empty table over this table's variables plus ``extra``."""
        np = _cols._np
        blank = np.empty(0, dtype=np.int64) if np is not None else []
        columns = {variable: blank for variable in self.columns}
        for variable in extra:
            columns[variable] = blank
        return BindingTable(columns, 0)

    def _column_lists(self, variables: Sequence[Variable]) -> List[List[int]]:
        out = []
        for variable in variables:
            column = self.columns[variable]
            out.append(column.tolist() if hasattr(column, "tolist")
                       else column)
        return out

    def substitutions(self) -> Iterator[Substitution]:
        """Decode one substitution per row (for Substitution consumers)."""
        if not self.length:
            return
        values = value_catalog().values()
        variables = list(self.columns)
        lists = self._column_lists(variables)
        for i in range(self.length):
            yield {variable: to_term(values[lists[j][i]])
                   for j, variable in enumerate(variables)}

    def code_rows(self, variables: Sequence[Variable]) -> List[Tuple[int, ...]]:
        """The rows projected onto ``variables``, as code tuples."""
        if not self.length:
            return []
        if not variables:
            return [()] * self.length
        return list(zip(*self._column_lists(variables)))

    def projected_counts(self, variables: Sequence[Variable]
                         ) -> Dict[Tuple[Any, ...], int]:
        """Decoded row → multiplicity after projecting onto ``variables``.

        Each table row is one distinct body valuation (set semantics make
        row combinations biject with valuations), so the projection counts
        are exactly the support counts of
        :func:`repro.datalog.answering.evaluate_query_counts`.
        """
        if not self.length:
            return {}
        if not variables:
            return {(): self.length}
        np = _cols._np
        counts: Dict[Tuple[Any, ...], int] = {}
        if np is not None:
            matrix = np.stack([np.asarray(self.columns[v], dtype=np.int64)
                               for v in variables], axis=1)
            unique, multiplicity = _grouped_counts(np, matrix)
            # per-tuple: ok — unique answer rows, O(result) not O(data)
            for row, count in zip(_decoded_rows(unique),
                                  multiplicity.tolist()):
                counts[row] = count
        else:
            values = value_catalog().values()
            for codes in zip(*self._column_lists(variables)):
                row = tuple(values[code] for code in codes)
                counts[row] = counts.get(row, 0) + 1
        return counts


#: cached object-dtype decode table mirroring the append-only ValueCatalog
#: (grown in place on demand; only new codes pay a Python-level assignment)
_DECODE_STATE: List[Any] = [None, 0]


def _decode_array():
    """The catalog's code → value table as an object ndarray (numpy path).

    Fancy-indexing this array decodes whole unique-row matrices in C
    instead of one ``values[code]`` lookup per cell.  The catalog is
    append-only, so the cached array is only ever extended.
    """
    np = _cols._np
    values = value_catalog().values()
    total = len(values)
    cached, known = _DECODE_STATE
    if cached is None or len(cached) < total:
        grown = np.empty(max(total * 2, 1024), dtype=object)
        if cached is not None and known:
            grown[:known] = cached[:known]
        cached = grown
    if known < total:
        for code in range(known, total):
            cached[code] = values[code]
        _DECODE_STATE[0] = cached
        _DECODE_STATE[1] = total
    return cached


def _decoded_rows(matrix) -> Iterator[Tuple[Any, ...]]:
    """Decode an (n, k) code matrix into value tuples (vectorized gather)."""
    decode = _decode_array()
    columns = [decode[matrix[:, j]].tolist()
               for j in range(matrix.shape[1])]
    return zip(*columns)


def _grouped_counts(np, matrix):
    """``(unique rows, multiplicities)`` of an int64 code-row matrix.

    ``np.unique(..., axis=0)`` sorts through a structured-void view — a
    generic-comparison sort that dominates the whole batch-count profile.
    Codes are dense (< catalog size ``K``), so multi-column rows pack
    collision-free into one mixed-radix int64 key whenever ``K**columns``
    fits; the unique then runs on a flat int64 sort and the unique keys
    decode back by divmod.  Falls back to ``axis=0`` when packing would
    overflow (catalogs nowhere near that size in practice).
    """
    n, width = matrix.shape
    if width == 1:
        uniq, counts = np.unique(matrix[:, 0], return_counts=True)
        return uniq.reshape(-1, 1), counts
    radix = len(value_catalog())
    if radix ** width < (1 << 62):
        keys = matrix[:, 0].astype(np.int64, copy=True)
        for j in range(1, width):
            keys *= radix
            keys += matrix[:, j]
        uniq_keys, counts = np.unique(keys, return_counts=True)
        rows = np.empty((uniq_keys.shape[0], width), dtype=np.int64)
        rest = uniq_keys
        for j in range(width - 1, 0, -1):
            rows[:, j] = rest % radix
            rest = rest // radix
        rows[:, 0] = rest
        return rows, counts
    return np.unique(matrix, axis=0, return_counts=True)


def _unique_rows(np, matrix, return_index: bool = False):
    """The distinct rows of an int64 code matrix (mixed-radix packed sort).

    Same packing trick as :func:`_grouped_counts` (codes are dense, so
    multi-column rows pack collision-free into one int64 key when the
    catalog size allows), but returning the distinct rows themselves.
    With ``return_index`` also returns, per distinct row, the index of one
    representative occurrence in ``matrix`` — the batched trigger path
    decodes a provenance witness from that representative.
    """
    n, width = matrix.shape
    if width == 1:
        if return_index:
            uniq, first = np.unique(matrix[:, 0], return_index=True)
            return uniq.reshape(-1, 1), first
        return np.unique(matrix[:, 0]).reshape(-1, 1)
    radix = len(value_catalog())
    if radix ** width < (1 << 62):
        keys = matrix[:, 0].astype(np.int64, copy=True)
        for j in range(1, width):
            keys *= radix
            keys += matrix[:, j]
        if return_index:
            uniq_keys, first = np.unique(keys, return_index=True)
        else:
            uniq_keys, first = np.unique(keys), None
        rows = np.empty((uniq_keys.shape[0], width), dtype=np.int64)
        rest = uniq_keys
        for j in range(width - 1, 0, -1):
            rows[:, j] = rest % radix
            rest = rest // radix
        rows[:, 0] = rest
        return (rows, first) if return_index else rows
    if return_index:
        return np.unique(matrix, axis=0, return_index=True)
    return np.unique(matrix, axis=0)


# -- probe-step compilation ---------------------------------------------------

#: A compiled probe step:
#: (predicate, key_items, new_vars, dup_checks) where
#:   key_items:  ((position, is_const, code_or_variable), ...) — the probe key
#:   new_vars:   ((variable, position), ...) — first occurrences to gather
#:   dup_checks: ((position, variable), ...) — repeated in-atom occurrences
Step = Tuple[str, tuple, tuple, tuple]


def _compile_step(atom: Atom, bound: Set[Variable]) -> Step:
    catalog = value_catalog()
    key_items: List[Tuple[int, bool, Any]] = []
    new_vars: List[Tuple[Variable, int]] = []
    dup_checks: List[Tuple[int, Variable]] = []
    local: Set[Variable] = set()
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in bound:
                key_items.append((position, False, term))
            elif term in local:
                dup_checks.append((position, term))
            else:
                local.add(term)
                new_vars.append((term, position))
        else:
            key_items.append((position, True, catalog.code(term_value(term))))
    return (atom.predicate, tuple(key_items), tuple(new_vars),
            tuple(dup_checks))


def _compile_steps(atoms: Sequence[Atom],
                   bound: Set[Variable]) -> Tuple[Step, ...]:
    bound = set(bound)
    steps = []
    for atom in atoms:
        steps.append(_compile_step(atom, bound))
        bound.update(term for term in atom.terms
                     if isinstance(term, Variable))
    return tuple(steps)


# -- probe-step kernels -------------------------------------------------------

def _step_relation(matcher, instance, predicate):
    if not instance.has_relation(predicate):
        matcher.stats.empty_lookups += 1
        return None
    relation = instance.relation(predicate)
    if not relation:
        matcher.stats.empty_lookups += 1
        return None
    return relation


def _probe_keys(table: BindingTable, key_items: tuple, length: int):
    """Per-row probe keys (an iterable), or a single key if constant."""
    if all(is_const for _, is_const, _ in key_items):
        if len(key_items) == 1:
            return key_items[0][2], None
        return tuple(item[2] for item in key_items), None
    if len(key_items) == 1:
        column = table.columns[key_items[0][2]]
        return None, (column.tolist() if hasattr(column, "tolist")
                      else column)
    sources = []
    for _, is_const, payload in key_items:
        if is_const:
            sources.append(repeat(payload, length))
        else:
            column = table.columns[payload]
            sources.append(column.tolist() if hasattr(column, "tolist")
                           else column)
    return None, zip(*sources)


def _probe_step_np(matcher, table: BindingTable, instance: DatabaseInstance,
                   step: Step) -> BindingTable:
    """One vectorized probe → gather → filter step (numpy path)."""
    np = _cols._np
    predicate, key_items, new_vars, dup_checks = step
    stats = matcher.stats
    relation = _step_relation(matcher, instance, predicate)
    if relation is None:
        return table.empty_like([variable for variable, _ in new_vars])
    store = relation.column_store()
    stats.batch_joins += 1
    n = table.length
    if key_items:
        key_positions = tuple(item[0] for item in key_items)
        groups = store.group_index(key_positions)
        const_key, keys = _probe_keys(table, key_items, n)
        if keys is None:  # every row probes the same constant key
            stats.index_probes += 1
            bucket = groups.get(const_key)
            if bucket is None:
                return table.empty_like([v for v, _ in new_vars])
            bucket = np.asarray(bucket, dtype=np.int64)
            repeat_index = np.repeat(np.arange(n), len(bucket))
            slots = np.tile(bucket, n)
        else:
            stats.index_probes += n
            counts = np.empty(n, dtype=np.int64)
            chunks = []
            for i, key in enumerate(keys):
                bucket = groups.get(key)
                if bucket is None:
                    counts[i] = 0
                else:
                    counts[i] = len(bucket)
                    chunks.append(bucket)
            if not chunks:
                return table.empty_like([v for v, _ in new_vars])
            repeat_index = np.repeat(np.arange(n), counts)
            slots = np.concatenate(chunks) if len(chunks) > 1 \
                else np.asarray(chunks[0], dtype=np.int64)
    else:  # unconstrained: cross join against the whole store
        span = np.arange(len(store), dtype=np.int64)
        repeat_index = np.repeat(np.arange(n), len(store))
        slots = np.tile(span, n)
    total = len(slots)
    stats.rows_batch_scanned += total
    if not total:
        return table.empty_like([v for v, _ in new_vars])
    store_columns = store.np_columns()
    if n == 1:
        columns = {variable: np.full(total, column[0], dtype=np.int64)
                   for variable, column in table.columns.items()}
    else:
        columns = {variable: column[repeat_index]
                   for variable, column in table.columns.items()}
    for variable, position in new_vars:
        columns[variable] = store_columns[position][slots]
    if dup_checks:
        mask = None
        for position, variable in dup_checks:
            equal = store_columns[position][slots] == columns[variable]
            mask = equal if mask is None else (mask & equal)
        if not mask.all():
            slots_kept = int(mask.sum())
            columns = {variable: column[mask]
                       for variable, column in columns.items()}
            return BindingTable(columns, slots_kept)
    return BindingTable(columns, total)


def _probe_step_py(matcher, table: BindingTable, instance: DatabaseInstance,
                   step: Step) -> BindingTable:
    """The same probe step over plain lists (no-numpy fallback)."""
    predicate, key_items, new_vars, dup_checks = step
    stats = matcher.stats
    relation = _step_relation(matcher, instance, predicate)
    if relation is None:
        return table.empty_like([variable for variable, _ in new_vars])
    store = relation.column_store()
    stats.batch_joins += 1
    n = table.length
    gather_index: List[int] = []
    slots: List[int] = []
    if key_items:
        key_positions = tuple(item[0] for item in key_items)
        groups = store.group_index(key_positions)
        const_key, keys = _probe_keys(table, key_items, n)
        if keys is None:
            stats.index_probes += 1
            bucket = groups.get(const_key)
            if bucket is not None:
                for i in range(n):
                    for slot in bucket:
                        gather_index.append(i)
                        slots.append(slot)
        else:
            stats.index_probes += n
            for i, key in enumerate(keys):
                bucket = groups.get(key)
                if bucket is not None:
                    for slot in bucket:
                        gather_index.append(i)
                        slots.append(slot)
    else:
        span = range(len(store))
        for i in range(n):
            for slot in span:
                gather_index.append(i)
                slots.append(slot)
    stats.rows_batch_scanned += len(slots)
    if not slots:
        return table.empty_like([variable for variable, _ in new_vars])
    columns: Dict[Variable, Any] = {}
    for variable, column in table.columns.items():
        columns[variable] = [column[i] for i in gather_index]
    for variable, position in new_vars:
        source = store.column(position)
        columns[variable] = [source[slot] for slot in slots]
    if dup_checks:
        keep = list(range(len(slots)))
        for position, variable in dup_checks:
            source = store.column(position)
            bound_column = columns[variable]
            keep = [i for i in keep if source[slots[i]] == bound_column[i]]
        if len(keep) != len(slots):
            columns = {variable: [column[i] for i in keep]
                       for variable, column in columns.items()}
            return BindingTable(columns, len(keep))
    return BindingTable(columns, len(slots))


def _active_kernel():
    return _probe_step_np if _cols._np is not None else _probe_step_py


# -- specialized join codegen -------------------------------------------------

#: signature -> generated straight-line join function
_CODEGEN_CACHE: Dict[tuple, Any] = {}


def codegen_cache_size() -> int:
    """How many specialized join functions are cached (for tests/reports)."""
    return len(_CODEGEN_CACHE)


def _join_signature(atoms: Sequence[Atom], bound: Set[Variable]) -> tuple:
    catalog = value_catalog()
    parts: List[Any] = [tuple(sorted(variable.name for variable in bound))]
    for atom in atoms:
        terms = tuple(
            ("v", term.name) if isinstance(term, Variable)
            else ("k", catalog.code(term_value(term)))
            for term in atom.terms)
        parts.append((atom.predicate, terms))
    return tuple(parts)


def compiled_join(atoms: Sequence[Atom], bound: Set[Variable], stats):
    """The specialized join function for (``atoms``, ``bound``), cached.

    The generated function is straight-line Python — one kernel call per
    body atom with its step descriptor baked in (probe positions, constant
    codes, gather targets), an early return on an empty intermediate —
    compiled once per structural signature and replayed by every later
    evaluation of the same shape (one per (rule, pivot) in the steady-state
    chase; ``codegen_cache_hits`` counts the replays).  Constant codes are
    safe to bake because the :class:`ValueCatalog` is append-only.
    """
    signature = _join_signature(atoms, bound)
    fn = _CODEGEN_CACHE.get(signature)
    if fn is not None:
        stats.codegen_cache_hits += 1
        return fn
    steps = _compile_steps(atoms, bound)
    lines = ["def _specialized(matcher, table, instance):",
             "    kernel = _active_kernel()"]
    for index in range(len(steps)):
        lines.append(f"    table = kernel(matcher, table, instance, "
                     f"_steps[{index}])")
        lines.append("    if not table.length:")
        lines.append("        return table")
    lines.append("    return table")
    namespace = {"_steps": steps, "_active_kernel": _active_kernel}
    exec(compile("\n".join(lines),  # noqa: S102 - generated from our own AST
                 f"<columnar-join-{len(_CODEGEN_CACHE)}>", "exec"), namespace)
    fn = namespace["_specialized"]
    _CODEGEN_CACHE[signature] = fn
    return fn


# -- the matcher --------------------------------------------------------------

class ColumnarMatcher(IndexedMatcher):
    """Batch columnar matcher (see module docstring).

    Inherits the indexed engine's single-atom probing, planning and
    existence checks (``has_homomorphism`` stays lazily early-exiting —
    batch-joining everything to answer "is there one?" would be wasted
    work); conjunction enumeration, answer counting and the delta-pivot
    joins run set-at-a-time.
    """

    name = COLUMNAR

    def __init__(self, stats=None):
        super().__init__(stats)
        #: memo of the last delta's normalized/encoded form (see
        #: :meth:`_delta_encodings`)
        self._delta_memo = None

    # -- batch join driver ---------------------------------------------------

    def _join_ordered(self, table: BindingTable, ordered: Sequence[Atom],
                      instance: DatabaseInstance,
                      comparisons: Sequence[Comparison]) -> BindingTable:
        """Extend ``table`` through ``ordered`` atoms, negation, comparisons."""
        positive = [atom for atom in ordered if not atom.negated]
        negative = [atom for atom in ordered if atom.negated]
        if positive and table.length:
            fn = compiled_join(positive, set(table.columns), self.stats)
            table = fn(self, table, instance)
        for atom in negative:
            if not table.length:
                break
            table = self._negation_filter(table, atom, instance)
        if comparisons and table.length:
            table = _comparison_filter(table, comparisons)
        return table

    def _join(self, atoms: Sequence[Atom], instance: DatabaseInstance,
              initial: Substitution,
              comparisons: Sequence[Comparison]) -> BindingTable:
        return self._join_ordered(BindingTable.seed(initial), atoms, instance,
                                  comparisons)

    def _negation_filter(self, table: BindingTable, atom: Atom,
                         instance: DatabaseInstance) -> BindingTable:
        """Reference negation semantics, applied to the whole table.

        Safe negation (an unbound variable under negation kills every
        binding), cautious over labeled nulls (a grounding containing a
        null is never *certainly* absent), then an anti-membership check.
        """
        catalog = value_catalog()
        sources: List[Tuple[bool, Any]] = []  # (is_column, payload)
        for term in atom.positive().terms:
            if isinstance(term, Variable):
                column = table.columns.get(term)
                if column is None:  # unsafe negation: no certain match at all
                    return table.empty_like()
                sources.append((True, column.tolist()
                                if hasattr(column, "tolist") else column))
            else:
                value = term_value(term)
                if isinstance(value, Null):  # cautious: reject everything
                    return table.empty_like()
                sources.append((False, value))
        values = catalog.values()
        null_flags = catalog.null_flags()
        relation = instance.relation(atom.predicate) \
            if instance.has_relation(atom.predicate) else None
        keep = []
        for i in range(table.length):
            grounded = []
            certain = True
            for is_column, payload in sources:
                if is_column:
                    code = payload[i]
                    if null_flags[code]:
                        certain = False  # cautious null: reject this binding
                        break
                    grounded.append(values[code])
                else:
                    grounded.append(payload)
            if not certain:
                continue
            if relation is not None and tuple(grounded) in relation:
                continue
            keep.append(i)
        return _take_rows(table, keep)


    # -- matcher interface ---------------------------------------------------

    def find_homomorphisms(self, atoms: Sequence[Atom],
                           instance: DatabaseInstance,
                           substitution: Optional[Substitution] = None,
                           comparisons: Sequence[Comparison] = (),
                           preordered: bool = False) -> Iterator[Substitution]:
        """Batch-join the conjunction, then decode one dict per result row."""
        initial = dict(substitution or {})
        if comparisons:
            initial = comparison_bindings(comparisons, initial)
        if any(isinstance(term, Variable) for term in initial.values()):
            # Variable-to-variable seeds (unification residue) fall back to
            # the tuple-at-a-time path; codes only encode ground bindings.
            yield from IndexedMatcher.find_homomorphisms(
                self, atoms, instance, substitution=substitution,
                comparisons=comparisons, preordered=preordered)
            return
        ordered = list(atoms) if preordered else \
            self.plan(atoms, instance, bound=initial)
        table = self._join(ordered, instance, initial, comparisons)
        yield from table.substitutions()

    def has_homomorphism(self, atoms: Sequence[Atom],
                         instance: DatabaseInstance,
                         substitution: Optional[Substitution] = None) -> bool:
        """Existence check via the *indexed* path — it exits on first match,
        where a batch join would enumerate everything just to throw it away
        (the chase's ``_head_satisfied`` calls this in its inner loop)."""
        for _ in IndexedMatcher.find_homomorphisms(self, atoms, instance,
                                                   substitution=substitution):
            return True
        return False

    # -- batch answering -----------------------------------------------------

    def answer_counts(self, atoms: Sequence[Atom], instance: DatabaseInstance,
                      answer_variables: Sequence[Variable],
                      comparisons: Sequence[Comparison] = (),
                      preordered: bool = False,
                      substitution: Optional[Substitution] = None
                      ) -> Optional[Dict[Tuple[Any, ...], int]]:
        """Support counts of a query in one batch (no substitution dicts).

        Returns ``None`` when the seed cannot be encoded (variable-valued
        substitution), signalling the caller to take the generic path.
        """
        initial = dict(substitution or {})
        if comparisons:
            initial = comparison_bindings(comparisons, initial)
        if any(isinstance(term, Variable) for term in initial.values()):
            return None
        ordered = list(atoms) if preordered else \
            self.plan(atoms, instance, bound=initial)
        table = self._join(ordered, instance, initial, comparisons)
        return table.projected_counts(tuple(answer_variables))

    # -- batch trigger surface (engine.triggers consumes these) --------------

    def binding_table(self, atoms: Sequence[Atom],
                      instance: DatabaseInstance,
                      substitution: Optional[Substitution] = None,
                      comparisons: Sequence[Comparison] = ()
                      ) -> Optional[BindingTable]:
        """The joined binding table of a conjunction, kept columnar.

        The table form of :meth:`find_homomorphisms`: rows biject with the
        distinct homomorphisms (set semantics), so the batched trigger path
        can group and project them without ever decoding a substitution.
        Returns ``None`` when the seed cannot be encoded (variable-valued
        substitution) — the caller falls back to the tuple-at-a-time path.
        """
        initial = dict(substitution or {})
        if comparisons:
            initial = comparison_bindings(comparisons, initial)
        if any(isinstance(term, Variable) for term in initial.values()):
            return None
        ordered = self.plan(atoms, instance, bound=initial)
        return self._join(ordered, instance, initial, comparisons)

    def delta_binding_table(self, plan: DeltaJoinPlan,
                            instance: DatabaseInstance,
                            delta: DeltaLike) -> BindingTable:
        """All distinct delta-join valuations as one table over the plan's
        variables.

        The table form of :meth:`delta_substitutions`: each pivot's joined
        table already holds distinct valuations (deduped delta rows ×
        distinct join extensions), so a single-pivot delta returns its
        table as-is; multiple pivots are concatenated and deduplicated on
        the code rows (codes biject with value-equality classes).
        """
        variables = list(plan.variables)
        tables = [table
                  for table in self._delta_tables(plan, instance, delta)
                  if table.length]
        np = _cols._np
        if not tables or not variables:
            # No variables: the one possible valuation is the empty one,
            # present iff any pivot joined at all.
            length = 1 if tables else 0
            blank = np.empty(length, dtype=np.int64) if np is not None else []
            return BindingTable({variable: blank for variable in variables},
                                length)
        if len(tables) == 1:
            return tables[0]
        if np is not None:
            stacked = np.concatenate(
                [np.stack([np.asarray(table.columns[variable],
                                      dtype=np.int64)
                           for variable in variables], axis=1)
                 for table in tables])
            matrix, first = _unique_rows(np, stacked, return_index=True)
            # First-occurrence order (np.unique sorts): keeps downstream
            # batch inserts deterministic and kernel-independent.
            matrix = matrix[np.argsort(first, kind="stable")]
            columns = {variable: matrix[:, j]
                       for j, variable in enumerate(variables)}
            return BindingTable(columns, int(matrix.shape[0]))
        seen: Dict[Tuple[int, ...], None] = {}
        for table in tables:
            for key in table.code_rows(variables):
                if key not in seen:
                    seen[key] = None
        rows = list(seen)
        columns = {variable: [key[j] for key in rows]
                   for j, variable in enumerate(variables)}
        return BindingTable(columns, len(rows))

    # -- batch delta-pivot joins (DeltaJoinPlan dispatches here) -------------

    def _delta_encodings(self, instance: DatabaseInstance, delta: DeltaLike):
        """``(grouped, encoded)`` view of ``delta`` against ``instance``.

        Session maintenance and the delta chase replay the *same* delta
        through one plan per maintained query, so normalizing the delta and
        encoding its live rows is memoized across plans (one-entry memo on
        the matcher).  The memo is only trusted while the delta is the same
        list object with the same length and every touched relation is the
        same object with an unchanged mutation counter — any instance
        update or delta rebuild falls back to a fresh encode.
        """
        memo = self._delta_memo
        if (memo is not None and memo[0] is delta and memo[1] is instance
                and isinstance(delta, (list, tuple))
                and memo[2] == len(delta)):
            grouped, stamps, encoded = memo[3], memo[4], memo[5]
            for predicate, relation, mutations in stamps:
                if relation is None:
                    if instance.has_relation(predicate):
                        break
                elif (not instance.has_relation(predicate)
                      or instance.relation(predicate) is not relation
                      or relation._mutations != mutations):
                    break
            else:
                return grouped, encoded
        grouped = DeltaJoinPlan._delta_rows(delta)
        encoded: Dict[str, Any] = {}
        if isinstance(delta, (list, tuple)):
            stamps = []
            for predicate in grouped:
                if instance.has_relation(predicate):
                    relation = instance.relation(predicate)
                    stamps.append((predicate, relation, relation._mutations))
                else:
                    stamps.append((predicate, None, None))
            self._delta_memo = (delta, instance, len(delta), grouped,
                                tuple(stamps), encoded)
        return grouped, encoded

    def _delta_tables(self, plan: DeltaJoinPlan, instance: DatabaseInstance,
                      delta: DeltaLike) -> Iterator[BindingTable]:
        """One joined table per pivot whose predicate appears in the delta."""
        grouped, encoded = self._delta_encodings(instance, delta)
        if not grouped:
            return
        for pivot, pivot_atom in enumerate(plan.body):
            if pivot_atom.negated:
                continue
            predicate = pivot_atom.predicate
            rows = grouped.get(predicate)
            if not rows or not instance.has_relation(predicate):
                continue
            if predicate not in encoded:
                encoded[predicate] = self._encode_delta(
                    rows, instance.relation(predicate))
            if encoded[predicate] is None:
                continue
            seed = self._pivot_seed(pivot_atom, encoded[predicate])
            if not seed.length:
                continue
            rest = plan._rest[pivot]
            ordered = plan._plan_for(pivot, instance) if rest else []
            yield self._join_ordered(seed, ordered, instance,
                                     plan.comparisons)

    def _encode_delta(self, rows: Sequence[Tuple[Any, ...]], live):
        """The live delta rows of one predicate as code rows, encoded once.

        Several pivots (within a body and across a session's plans) share a
        predicate; encoding per predicate instead of per pivot keeps the
        per-pivot seeding purely columnar.  Returns an ``(n, arity)`` int64
        matrix on the numpy path, a list of code tuples on the fallback,
        ``None`` when no delta row is live.
        """
        code = value_catalog().code
        # per-tuple: ok — delta rows are O(update), not O(data).  Repeated
        # delta rows are one fact: dedupe here so one pivot's joined table
        # holds each valuation once (batch_delta_counts relies on this).
        kept = list(dict.fromkeys(row for row in rows if row in live))
        self.stats.rows_scanned += len(kept)
        if not kept:
            return None
        np = _cols._np
        if np is not None:
            return np.asarray([[code(value) for value in row]
                               for row in kept], dtype=np.int64)
        return [tuple(code(value) for value in row) for row in kept]

    def _pivot_seed(self, pivot_atom: Atom, encoded) -> BindingTable:
        """Bind the pivot atom's variables over one predicate's encoded delta."""
        catalog = value_catalog()
        np = _cols._np
        var_items: List[Tuple[Variable, int]] = []
        const_checks: List[Tuple[int, int]] = []
        dup_checks: List[Tuple[int, int]] = []
        seen: Dict[Variable, int] = {}
        empty = None
        for position, term in enumerate(pivot_atom.terms):
            if isinstance(term, Variable):
                if term in seen:
                    dup_checks.append((position, seen[term]))
                else:
                    seen[term] = position
                    var_items.append((term, position))
            else:
                code = catalog.try_code(term_value(term))
                if code is None:
                    empty = True  # constant never stored: no live row matches
                const_checks.append((position, code))
        arity = len(encoded[0]) if np is None else encoded.shape[1]
        if empty or arity != pivot_atom.arity:
            blank = np.empty(0, dtype=np.int64) if np is not None else []
            return BindingTable(
                {variable: blank for variable, _ in var_items}, 0)
        if np is not None:
            matrix = encoded
            mask = None
            for position, code in const_checks:
                hit = matrix[:, position] == code
                mask = hit if mask is None else mask & hit
            for position, first in dup_checks:
                hit = matrix[:, position] == matrix[:, first]
                mask = hit if mask is None else mask & hit
            if mask is not None and not mask.all():
                matrix = matrix[mask]
            columns = {variable: matrix[:, position]
                       for variable, position in var_items}
            return BindingTable(columns, int(matrix.shape[0]))
        keep = [row for row in encoded
                if all(row[position] == code
                       for position, code in const_checks)
                and all(row[position] == row[first]
                        for position, first in dup_checks)]
        columns = {variable: [row[position] for row in keep]
                   for variable, position in var_items}
        return BindingTable(columns, len(keep))

    def delta_substitutions(self, plan: DeltaJoinPlan,
                            instance: DatabaseInstance, delta: DeltaLike,
                            dedupe: bool = True) -> Iterator[Substitution]:
        """Batch form of :meth:`DeltaJoinPlan.homomorphisms`.

        Joins *all* delta rows of each pivot in one pass; with ``dedupe``
        valuations reachable through several pivots are yielded once, keyed
        by their code tuple over the plan's variables (codes are bijective
        with value-equality classes, so this matches the reference's
        value-based key).
        """
        variables = plan.variables
        seen: Set[Tuple[int, ...]] = set()
        for table in self._delta_tables(plan, instance, delta):
            if not dedupe:
                yield from table.substitutions()
                continue
            keys = table.code_rows(variables)
            take = []
            for i, key in enumerate(keys):
                if key not in seen:
                    seen.add(key)
                    take.append(i)
            if take:
                yield from _take_rows(table, take).substitutions()

    def batch_delta_counts(self, plan: DeltaJoinPlan,
                           instance: DatabaseInstance, delta: DeltaLike,
                           project: Sequence[Variable]
                           ) -> Dict[Tuple[Any, ...], int]:
        """Batch form of :meth:`DeltaJoinPlan.projected_counts`.

        Distinct valuations (over the plan's variables, deduplicated across
        pivots) are counted per projection onto ``project`` without ever
        decoding a substitution — the session layer's counting IVM applies
        the result as a bulk ±count per answer row.
        """
        variables = plan.variables
        index = {variable: j for j, variable in enumerate(variables)}
        projection = [index[variable] for variable in project]
        counts: Dict[Tuple[Any, ...], int] = {}
        np = _cols._np
        if np is not None and variables:
            tables = [table
                      for table in self._delta_tables(plan, instance, delta)
                      if table.length]
            if not tables:
                return counts
            if len(tables) == 1:
                # One pivot: its rows already are the distinct valuations
                # (deduped delta rows × distinct join extensions), so group
                # directly on the projection columns.
                table = tables[0]
                if not projection:
                    counts[()] = table.length
                    return counts
                matrix = np.stack(
                    [np.asarray(table.columns[variable], dtype=np.int64)
                     for variable in project], axis=1)
                rows, multiplicity = _grouped_counts(np, matrix)
            else:
                stacked = np.concatenate(
                    [np.stack([np.asarray(table.columns[variable],
                                          dtype=np.int64)
                               for variable in variables], axis=1)
                     for table in tables])
                # dedupe valuations reachable through several pivots
                distinct, _ = _grouped_counts(np, stacked)
                if not projection:
                    counts[()] = int(distinct.shape[0])
                    return counts
                rows, multiplicity = _grouped_counts(
                    np, distinct[:, projection])
            # per-tuple: ok — unique answer rows, O(result) not O(data)
            for row, count in zip(_decoded_rows(rows),
                                  multiplicity.tolist()):
                counts[row] = count
            return counts
        values = value_catalog().values()
        seen: Set[Tuple[int, ...]] = set()
        for table in self._delta_tables(plan, instance, delta):
            for key in table.code_rows(variables):
                if key in seen:
                    continue
                seen.add(key)
                row = tuple(values[key[j]] for j in projection)
                counts[row] = counts.get(row, 0) + 1
        return counts


# -- shared helpers -----------------------------------------------------------

def _take_rows(table: BindingTable, keep: Sequence[int]) -> BindingTable:
    """The sub-table holding exactly the rows at indexes ``keep``."""
    if len(keep) == table.length:
        return table
    if not keep:
        return table.empty_like()
    np = _cols._np
    if np is not None:
        index = np.asarray(keep, dtype=np.int64)
        columns = {variable: np.asarray(column, dtype=np.int64)[index]
                   for variable, column in table.columns.items()}
    else:
        columns = {variable: [column[i] for i in keep]
                   for variable, column in table.columns.items()}
    return BindingTable(columns, len(keep))


def _comparison_filter(table: BindingTable,
                       comparisons: Sequence[Comparison]) -> BindingTable:
    """Apply the final comparison filter.

    ``=``/``==``/``!=`` act directly on the code columns: catalog codes
    biject with Python-equality classes (nulls included — label equality is
    ``Null.__eq__``), so code (in)equality *is* the reference semantics, and
    on the numpy path the whole comparison is one vectorized mask.  Ordering
    operators must decode — their ``TypeError`` → string-order fallback
    depends on the actual values — but they gate only the few rows that
    survive the joins and the equality masks.  A comparison over a variable
    the table never bound fails every row, matching the reference's "both
    sides must be ground" rule.
    """
    catalog = value_catalog()
    equalities: List[Tuple[bool, Any, Any]] = []
    ordering: List[Comparison] = []
    for comparison in comparisons:
        sides = []
        for term in (comparison.left, comparison.right):
            if isinstance(term, Variable):
                column = table.columns.get(term)
                if column is None:
                    return table.empty_like()
                sides.append((True, column))
            else:
                sides.append((False, term_value(term)))
        if comparison.op not in ("=", "==", "!="):
            ordering.append(comparison)
            continue
        want_equal = comparison.op != "!="
        if not sides[0][0] and not sides[1][0]:
            # two constants: one static decision for the whole table
            if not comparison.evaluate(sides[0][1], sides[1][1]):
                return table.empty_like()
            continue
        codes = []
        missing = False
        for is_column, payload in sides:
            if is_column:
                codes.append(payload)
            else:
                code = catalog.try_code(payload)
                missing = missing or code is None
                codes.append(code)
        if missing:
            # a never-interned constant equals no stored value
            if want_equal:
                return table.empty_like()
            continue
        equalities.append((want_equal, codes[0], codes[1]))
    np = _cols._np
    if equalities and table.length:
        if np is not None:
            mask = None
            for want_equal, left, right in equalities:
                lhs = left if isinstance(left, int) \
                    else np.asarray(left, dtype=np.int64)
                rhs = right if isinstance(right, int) \
                    else np.asarray(right, dtype=np.int64)
                hit = (lhs == rhs) if want_equal else (lhs != rhs)
                mask = hit if mask is None else (mask & hit)
            if not mask.all():
                columns = {variable: np.asarray(column, dtype=np.int64)[mask]
                           for variable, column in table.columns.items()}
                table = BindingTable(columns, int(mask.sum()))
        else:
            keep = []
            for i in range(table.length):
                for want_equal, left, right in equalities:
                    left_code = left if isinstance(left, int) else left[i]
                    right_code = right if isinstance(right, int) else right[i]
                    if (left_code == right_code) != want_equal:
                        break
                else:
                    keep.append(i)
            table = _take_rows(table, keep)
    if not ordering or not table.length:
        return table
    values = catalog.values()
    sides = []
    for comparison in ordering:
        resolved = []
        for term in (comparison.left, comparison.right):
            if isinstance(term, Variable):
                column = table.columns[term]  # bound: checked above
                resolved.append(column.tolist()
                                if hasattr(column, "tolist") else column)
            else:
                resolved.append(term_value(term))
        sides.append((comparison, resolved[0], resolved[1]))
    keep = []
    for i in range(table.length):
        for comparison, left, right in sides:
            left_value = values[left[i]] if isinstance(left, list) else left
            right_value = values[right[i]] if isinstance(right, list) \
                else right
            if not comparison.evaluate(left_value, right_value):
                break
        else:
            keep.append(i)
    return _take_rows(table, keep)
