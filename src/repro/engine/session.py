"""Materialization sessions: chase once, answer many, update in deltas.

The paper's workload is session-shaped: one MD ontology (or assembled
quality context) is chased once, then many certain-answer queries run
against the same materialization while the underlying extensional database
receives small updates.  This module keeps that materialization alive
between calls instead of re-running the chase per call:

* :class:`MaterializedProgram` owns a chased
  :class:`~repro.relational.instance.DatabaseInstance` and supports
  **incremental EDB updates**: :meth:`~MaterializedProgram.add_facts`
  re-enters the delta-driven chase seeded only with the inserted facts;
  :meth:`~MaterializedProgram.retract_facts` deletes the retracted facts
  plus the cone of derived facts recorded against them in the chase's
  provenance, re-fires only the rules whose heads lost facts, and falls
  back to a full re-chase when provenance is ambiguous (EGD merges have
  rewritten rows, or provenance was not recorded).
* :class:`QuerySession` answers conjunctive queries over a materialized
  program, caching parsed queries and selectivity-ordered join plans keyed
  by (program version, query); :meth:`~QuerySession.answer_many` batches a
  whole workload and reports the
  :class:`~repro.engine.stats.EngineStats` delta of the batch.
* Cached answers are **maintained, not recomputed**: each answered query
  keeps a :class:`MaintainedAnswers` entry — counting-based incremental
  view maintenance state mapping every answer row to the number of body
  valuations deriving it — and every update propagates its exact fact
  delta through a compiled
  :class:`~repro.engine.matching.DeltaJoinPlan`, inserting and decrementing
  answers in place.  Only updates whose delta is unknowable (EGD merges,
  full re-chases) fall back to dropping the entry, mirroring the
  materialization's own full-rechase fallback.

Every update and batch returns its own stats delta; the session objects
accumulate lifetime totals, including cache hits/misses and the
incremental-vs-full decision counters.  See ``docs/ARCHITECTURE.md`` for
the session lifecycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..datalog.answering import (AnswerCounts, evaluate_query_counts,
                                 rows_from_counts)
from ..datalog.atoms import Atom
from ..datalog.chase import ChaseEngine, ChaseResult, Fact, RESTRICTED
from ..datalog.parser import parse_query
from ..datalog.program import DatalogProgram
from ..datalog.rules import ConjunctiveQuery
from ..datalog.unify import comparison_bindings
from ..errors import UnknownRelationError
from ..relational.instance import DatabaseInstance
from ..relational.values import Null, NullFactory
from .matching import DeltaJoinPlan, Matcher, matcher_for, resolve_engine
from .stats import EngineStats
from .versioning import InstanceVersion, ReadTransaction, VersionStore

AnswerTuple = Tuple[Any, ...]
Answers = Tuple[AnswerTuple, ...]
QueryLike = Union[ConjunctiveQuery, str]

INCREMENTAL = "incremental"
FULL = "full"
NOOP = "noop"


@dataclass
class UpdateResult:
    """Outcome of one :class:`MaterializedProgram` update."""

    #: ``"add"`` or ``"retract"``
    action: str
    #: ``"incremental"`` (delta re-chase), ``"full"`` (from-scratch re-chase)
    #: or ``"noop"`` (no EDB fact actually changed)
    strategy: str
    #: the EDB facts that were actually inserted / removed
    applied: List[Fact] = field(default_factory=list)
    #: predicates whose extension changed (EDB and derived); ``None`` means
    #: unknown — treat as "possibly all" (e.g. after EGD merges)
    changed_predicates: Optional[Set[str]] = None
    #: the exact instance-level fact delta of this update (EDB and derived):
    #: facts that became true / stopped being true.  ``None`` means the
    #: delta is unknown (EGD merges rewrote rows, or a full re-chase ran) —
    #: answer maintenance must fall back to re-answering.  A fact may appear
    #: in both lists (retracted from a deletion cone, then re-derived by the
    #: repair chase); counting maintenance nets such survivors out exactly.
    added_facts: Optional[List[Fact]] = None
    removed_facts: Optional[List[Fact]] = None
    #: TGD triggers fired by the maintenance chase
    steps: int = 0
    #: the work done by this update alone (an :class:`EngineStats` delta)
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def is_incremental(self) -> bool:
        return self.strategy == INCREMENTAL

    def touched(self, predicate: str) -> bool:
        """``True`` if ``predicate``'s extension may have changed."""
        return self.changed_predicates is None or \
            predicate in self.changed_predicates


class _ProvenanceLog(dict):
    """A provenance mapping that logs newly recorded facts.

    The chase records first derivations with ``setdefault``; logging the
    genuinely new keys lets the session learn an update's derived facts —
    and maintain its inverted dependents index — in O(delta) instead of
    snapshotting the whole mapping per update.
    """

    def __init__(self):
        super().__init__()
        self.added: List[Fact] = []

    def setdefault(self, key, default=None):
        if key not in self:
            self.added.append(key)
        return super().setdefault(key, default)

    def drain(self) -> List[Fact]:
        added, self.added = self.added, []
        return added


class MaintainedAnswers:
    """Support-counted answers of one cached query (counting-based IVM).

    ``counts`` maps every answer row — projected from the body valuations,
    labeled nulls included — to the number of distinct valuations deriving
    it.  An update's fact delta moves the counts by ±1 per affected
    valuation (:meth:`QuerySession._maintain_answers`); a row is an answer
    while its count is positive, so both certain answers (nulls dropped)
    and raw answers derive from the same entry without re-joining.

    Entries are immutable once installed: maintenance builds a *fresh*
    entry and swaps it in under the version store's lock, stamped with the
    version it belongs to — a reader pinned at ``version >= stamp`` may
    serve from the entry, because any later update touching the query's
    predicates would have replaced (or dropped) it.  The compiled
    :class:`~repro.engine.matching.DeltaJoinPlan` is carried across swaps
    so repeated updates replay the same hoisted pivot plans, and the sorted
    answer rows are carried *patched* (:meth:`_patch_rows`): only the rows
    whose support crossed zero move, so an update never pays a full
    key-building sort over a large cached answer set.
    """

    __slots__ = ("cq", "key", "predicates", "counts", "version", "plan",
                 "_rows", "last_used")

    def __init__(self, cq: ConjunctiveQuery, counts: AnswerCounts,
                 version: int, plan: Optional[DeltaJoinPlan] = None):
        self.cq = cq
        self.key = str(cq)
        self.predicates = cq.body_predicates()
        self.counts = counts
        self.version = version
        self.plan = plan
        #: recency stamp driving the session's support-count budget (LRU)
        self.last_used = 0
        #: per flavour: (sorted answer rows, their parallel sort keys)
        self._rows: Dict[bool, Tuple[Answers, Tuple[Tuple[str, ...], ...]]] = {}

    @staticmethod
    def _sort_key(row: AnswerTuple) -> Tuple[str, ...]:
        return tuple(map(str, row))

    def rows(self, allow_nulls: bool = False) -> Answers:
        """The (sorted, immutable) answer rows; memoized per flavour."""
        cached = self._rows.get(allow_nulls)
        if cached is None:
            rows = rows_from_counts(self.counts, allow_nulls)
            cached = (rows, tuple(self._sort_key(row) for row in rows))
            self._rows[allow_nulls] = cached
        return cached[0]

    def _seed_rows(self, allow_nulls: bool, rows: Answers) -> None:
        """Install a freshly computed flavour (initial build)."""
        self._rows[allow_nulls] = (rows,
                                   tuple(self._sort_key(row) for row in rows))

    def _patch_rows(self, previous: "MaintainedAnswers",
                    vanished: Set[AnswerTuple],
                    appeared: Sequence[AnswerTuple]) -> None:
        """Carry ``previous``'s sorted rows over, moved by the zero
        crossings of one maintenance pass.

        ``vanished`` rows lost their last support (dropped), ``appeared``
        rows gained their first (inserted at their sort position via the
        parallel key list).  A row in both nets out to its old position.
        Cost is one O(answers) filtered copy plus O(delta) binary
        insertions — never a full sort with per-row key building.

        ``previous`` may belong to a live session whose readers memoize
        further flavours concurrently (``rows()`` runs lock-free), so the
        flavour dict is snapshot atomically (a single C-level copy under
        the GIL) before iterating; a flavour memoized after the snapshot
        is simply recomputed on the fresh entry's first read.
        """
        from bisect import bisect_left
        for flavor, (rows, keys) in list(previous._rows.items()):
            if not vanished and not appeared:
                self._rows[flavor] = (rows, keys)
                continue
            new_rows = []
            new_keys = []
            for row, key in zip(rows, keys):
                if row not in vanished:
                    new_rows.append(row)
                    new_keys.append(key)
            for row in appeared:
                if not flavor and \
                        any(isinstance(value, Null) for value in row):
                    continue
                key = self._sort_key(row)
                at = bisect_left(new_keys, key)
                new_keys.insert(at, key)
                new_rows.insert(at, row)
            self._rows[flavor] = (tuple(new_rows), tuple(new_keys))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MaintainedAnswers({self.key!r}, {len(self.counts)} rows, "
                f"v{self.version})")


@dataclass
class BatchAnswers:
    """Answers of one :meth:`QuerySession.answer_many` batch."""

    #: one (immutable) answer tuple per query, in the order given
    answers: List[Answers]
    #: the matching work done by this batch alone
    stats: EngineStats = field(default_factory=EngineStats)

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)


class MaterializedProgram:
    """A Datalog± program kept chased across queries and EDB updates.

    Parameters
    ----------
    program:
        The program to materialize.  Its rules are shared; its database is
        copied (twice: the pristine EDB for re-chases, and the instance the
        chase materializes into).
    engine:
        Matching engine (``"indexed"``/``"naive"``/``"columnar"``;
        ``None`` = process default).
    max_steps:
        Trigger budget per chase/maintenance run.
    record_provenance:
        Record, for every derived fact, the grounded body facts of the
        trigger that first derived it.  Needed for incremental retraction;
        one-shot wrappers switch it off to keep their cost unchanged.

    The session always runs the **restricted** chase (the oblivious chase
    cannot be resumed without its fired-trigger memory) and never checks
    negative constraints — check them on :attr:`result` explicitly if
    needed.
    """

    def __init__(self, program: DatalogProgram, engine: Optional[str] = None,
                 max_steps: int = 100_000, null_prefix: str = "n",
                 record_provenance: bool = True):
        self._chaser = ChaseEngine(mode=RESTRICTED, max_steps=max_steps,
                                   check_constraints=False,
                                   null_prefix=null_prefix, engine=engine)
        self.engine = self._chaser.engine
        self.record_provenance = record_provenance
        self._tgds = list(program.tgds)
        self._egds = list(program.egds)
        self._constraints = list(program.constraints)
        self._edb = program.database.copy()
        #: bumped on every effective update; session caches key on it
        self.version = 0
        #: lifetime work counters (materialization + every update)
        self.stats = EngineStats(engine=self.engine)
        self._queries: Optional["QuerySession"] = None
        self._sessions: List["QuerySession"] = []
        #: maintained answer state restored from a snapshot, adopted by the
        #: first query session created over this program (then cleared)
        self._restored_maintained: Optional[
            List[Tuple[ConjunctiveQuery, AnswerCounts]]] = None
        #: the ``meta`` mapping of the snapshot this program was restored
        #: from (``{}`` for a freshly chased program) — the serving layer
        #: stores the checkpoint's write-ahead-log position here
        self.snapshot_meta: Dict[str, Any] = {}
        #: serializes writers (updates); readers never take this lock
        self._write_lock = threading.RLock()
        #: published instance versions readers pin (MVCC, relation-level COW)
        self.versions = VersionStore()
        self.result: ChaseResult = self._materialize()
        self.stats.merge(self.result.stats)
        self.result.stats = self.stats
        self.versions.publish(self.version, self.instance, changed=None)

    # -- state --------------------------------------------------------------

    @property
    def instance(self) -> DatabaseInstance:
        """The chased (materialized) database instance."""
        return self._program.database

    @property
    def edb(self) -> DatabaseInstance:
        """The pristine extensional database the materialization started from."""
        return self._edb

    def edb_program(self) -> DatalogProgram:
        """A program view over the *extensional* database (for top-down solvers)."""
        return DatalogProgram(tgds=self._tgds, egds=self._egds,
                              constraints=self._constraints, database=self._edb)

    def _materialize(self) -> ChaseResult:
        self._program = DatalogProgram(tgds=self._tgds, egds=self._egds,
                                       constraints=self._constraints,
                                       database=self._edb.copy())
        self._nulls = NullFactory(self._chaser.null_prefix)
        provenance = _ProvenanceLog() if self.record_provenance else None
        result = self._chaser.run(self._program, copy=False, nulls=self._nulls,
                                  provenance=provenance)
        self._provenance: Optional[_ProvenanceLog] = provenance
        self._ambiguous = result.egd_merges > 0
        #: inverted provenance: body fact -> derived facts recorded against it
        self._dependents: Dict[Fact, List[Fact]] = {}
        if provenance is not None:
            for derived in provenance.drain():
                for body_fact in provenance[derived]:
                    self._dependents.setdefault(body_fact, []).append(derived)
        return result

    # -- updates ------------------------------------------------------------

    def add_facts(self, facts: Iterable[Fact]) -> UpdateResult:
        """Insert EDB facts and restore the fixpoint incrementally.

        The delta-driven chase is re-entered seeded only with the facts that
        were actually new; rules whose bodies cannot see them are skipped.
        Returns the facts applied, the predicates whose extension changed,
        and the stats delta of the maintenance run.  Writers are serialized
        on the program's write lock; concurrent readers keep answering
        against the previously published version throughout.
        """
        with self._write_lock:
            return self._add_facts(facts)

    def _add_facts(self, facts: Iterable[Fact]) -> UpdateResult:
        applied: List[Fact] = []
        for predicate, row in facts:
            row = tuple(row)
            if not self._edb.has_relation(predicate):
                if not self.instance.has_relation(predicate):
                    # An unknown predicate is almost always a typo; refusing
                    # matches DatabaseInstance.add instead of silently
                    # declaring a relation no rule can ever see.
                    raise UnknownRelationError(
                        f"unknown relation {predicate!r}; known relations: "
                        f"{sorted(r.schema.name for r in self.instance)}")
                # An intensional predicate receiving its first extensional
                # fact: declare it in the EDB with the program's schema.
                self._edb.declare(
                    predicate,
                    list(self.instance.relation(predicate).schema.attributes))
            if self._edb.add(predicate, row):
                applied.append((predicate, row))
        if not applied:
            return UpdateResult(action="add", strategy=NOOP,
                                changed_predicates=set(),
                                stats=EngineStats(engine=self.engine))
        self.version += 1

        instance = self.instance
        seed: List[Fact] = []
        for fact in applied:
            predicate, row = fact
            if instance.add(predicate, row):
                seed.append(fact)
            elif self._provenance is not None:
                # The fact existed as a derived fact; it is extensional now
                # and must survive retraction of its former support.
                self._provenance.pop(fact, None)

        result = self._chaser.continue_chase(self._program, seed, self._nulls,
                                             self._provenance)
        # ``seed`` (not ``applied``) drives invalidation and maintenance: an
        # inserted fact that already existed as a derived fact changes the
        # EDB but not the materialized instance, so cached answers for it
        # stay valid.
        return self._finish_update("add", INCREMENTAL, applied, result,
                                   added_seed=seed, removed=[])

    def retract_facts(self, facts: Iterable[Fact]) -> UpdateResult:
        """Remove EDB facts and restore the fixpoint.

        The incremental path deletes the retracted facts plus the **cone**
        of derived facts whose recorded derivation depends on them, then
        re-evaluates only the rules whose heads mention a deleted predicate
        (the restricted chase had skipped their triggers while the heads
        were satisfied) and lets a delta-driven continuation propagate.
        When provenance is ambiguous — EGD merges rewrote rows since the
        last full chase, or provenance was not recorded — the session falls
        back to a full re-chase of the updated EDB.
        """
        with self._write_lock:
            return self._retract_facts(facts)

    def _retract_facts(self, facts: Iterable[Fact]) -> UpdateResult:
        applied: List[Fact] = []
        for predicate, row in facts:
            row = tuple(row)
            if self._edb.has_relation(predicate) and \
                    self._edb.relation(predicate).discard(row):
                applied.append((predicate, row))
        if not applied:
            return UpdateResult(action="retract", strategy=NOOP,
                                changed_predicates=set(),
                                stats=EngineStats(engine=self.engine))
        self.version += 1

        if self._provenance is None or self._ambiguous:
            return self._full_update("retract", applied)

        # The deletion cone over the maintained inverted index.  Entries may
        # point at facts whose provenance was popped by an earlier update
        # (facts that became extensional, earlier cones); filtering against
        # the live provenance keeps the traversal exact.
        cone: Set[Fact] = set()
        frontier: List[Fact] = list(applied)
        while frontier:
            fact = frontier.pop()
            for dependent in self._dependents.pop(fact, ()):
                if dependent not in cone and dependent in self._provenance:
                    cone.add(dependent)
                    frontier.append(dependent)

        instance = self.instance
        removed: List[Fact] = []
        for predicate, row in applied:
            if instance.has_relation(predicate) and \
                    instance.relation(predicate).discard(row):
                removed.append((predicate, row))
        for fact in cone:
            predicate, row = fact
            instance.relation(predicate).discard(row)
            self._provenance.pop(fact, None)
            removed.append(fact)

        result = self._chaser.repair_after_deletion(
            self._program, list(applied) + sorted(cone, key=str), self._nulls,
            self._provenance)
        update = self._finish_update("retract", INCREMENTAL, applied, result,
                                     added_seed=[], removed=removed)
        return update

    def _finish_update(self, action: str, strategy: str, applied: List[Fact],
                       result: ChaseResult, added_seed: List[Fact],
                       removed: List[Fact]) -> UpdateResult:
        """Close an incremental update: derive its exact instance delta.

        ``added_seed`` are the facts the update itself inserted into the
        instance, ``removed`` the facts it discarded (retractions plus their
        provenance cone); the facts the maintenance chase derived are
        drained from the provenance log on top.  When EGD merges ran (or no
        provenance is recorded) the delta is unreconstructable and reported
        as ``None`` — sessions then invalidate instead of maintain.
        """
        if result.egd_merges:
            self._ambiguous = True
        derived = [] if self._provenance is None else self._provenance.drain()
        for fact in derived:  # keep the inverted index in O(delta) step
            for body_fact in self._provenance[fact]:
                self._dependents.setdefault(body_fact, []).append(fact)
        changed: Optional[Set[str]]
        added_facts: Optional[List[Fact]]
        removed_facts: Optional[List[Fact]]
        if result.egd_merges or self._provenance is None:
            changed = None  # merges rewrite arbitrary rows: treat as "all"
            added_facts = None
            removed_facts = None
        else:
            added_facts = added_seed + derived
            removed_facts = removed
            changed = {predicate for predicate, _ in added_facts}
            changed |= {predicate for predicate, _ in removed_facts}
        update_stats = result.stats
        update_stats.incremental_updates += 1
        self.stats.merge(update_stats)
        self.result.steps += result.steps
        self.result.rounds += result.rounds
        self.result.egd_merges += result.egd_merges
        update = UpdateResult(action=action, strategy=strategy, applied=applied,
                              changed_predicates=changed, steps=result.steps,
                              stats=update_stats, added_facts=added_facts,
                              removed_facts=removed_facts)
        self._publish(update)
        return update

    def _full_update(self, action: str, applied: List[Fact]) -> UpdateResult:
        result = self._materialize()
        update_stats = result.stats
        update_stats.full_rechases += 1
        self.stats.merge(update_stats)
        self.result = result
        self.result.stats = self.stats
        update = UpdateResult(action=action, strategy=FULL, applied=applied,
                              changed_predicates=None, steps=result.steps,
                              stats=update_stats)
        self._publish(update)
        return update

    # -- persistence --------------------------------------------------------

    def save(self, path: Union[str, Path],
             meta: Optional[Dict[str, Any]] = None) -> Path:
        """Write a durable snapshot of this materialization to ``path``.

        The snapshot (see :mod:`repro.engine.snapshot`) captures the EDB,
        the chased instance, the labeled-null state, the provenance graph
        and the lifetime stats — everything needed to :meth:`load` a fully
        live session in another process without re-chasing.  ``meta`` is an
        optional JSON-serializable mapping stored with the snapshot and
        exposed as :attr:`snapshot_meta` after a restore; the save runs
        under the write lock, so the mapping describes a
        checkpoint-consistent cut (no update can interleave between
        computing ``meta`` and serializing the state it describes when the
        caller holds the same lock — see the serving daemon's checkpoint).
        """
        from .snapshot import save_program
        with self._write_lock:
            return save_program(self, path, meta=meta)

    @classmethod
    def load(cls, path: Union[str, Path], program: Optional[DatalogProgram] = None,
             engine: Optional[str] = None) -> "MaterializedProgram":
        """Restore a :meth:`save`-d materialization from ``path``.

        When ``program`` is supplied, its rules and extensional facts are
        verified against the snapshot (raising
        :class:`~repro.errors.SnapshotMismatchError` on a stale snapshot);
        otherwise the rules are reconstructed from the snapshot itself.
        Restoring skips the chase entirely — see benchmark E13.
        """
        from .snapshot import load_program
        return load_program(path, program=program, engine=engine)

    def _publish(self, update: UpdateResult) -> None:
        """Maintain/invalidate session caches and publish the new version.

        The expensive work — relation snapshot copies and the delta joins
        that maintain cached answers — runs *before* the store lock is
        taken (the single writer holds the program's write lock, so the
        working instance cannot move underneath).  Under the lock, every
        session atomically swaps in its maintained answers (or drops what
        could not be maintained) together with the publication of the new
        version, so a reader can never pin the new version while a cache
        still serves the old version's answers, nor store stale answers
        after the swap — the reader-side counterpart is
        ``QuerySession._answers_at``.  Deletion deltas are joined against
        the *previous published version* (where the removed facts still
        exist); insertion deltas against the post-update working instance.
        """
        if self._restored_maintained:
            # Snapshot-restored answer counts nobody has adopted yet cannot
            # be maintained through this update; keep only the entries the
            # update provably did not touch, so a session created later
            # never adopts counts that predate an unmaintained change.
            changed = update.changed_predicates
            if changed is None:
                self._restored_maintained = None
            elif changed:
                kept = [(cq, counts)
                        for cq, counts in self._restored_maintained
                        if not (cq.body_predicates() & changed)]
                self._restored_maintained = kept or None
        copies = self.versions.prepare(self.instance,
                                       update.changed_predicates)
        previous = self.versions.latest_instance()
        sessions = list(self._sessions)
        maintained = [(session,
                       session._maintain_answers(update, previous,
                                                 self.instance, self.version))
                      for session in sessions]
        with self.versions.lock:
            for session, refreshed in maintained:
                session._note_update(update, refreshed)
            self.versions.publish(self.version, self.instance,
                                  update.changed_predicates, copies=copies)

    # -- answering ----------------------------------------------------------

    def queries(self) -> "QuerySession":
        """The default query session over this materialization (lazy).

        Double-checked under the write lock: two concurrent first readers
        must not each build (and register) a session — the loser would
        stay in ``_sessions`` and be maintained on every update forever.
        """
        if self._queries is None:
            with self._write_lock:
                if self._queries is None:
                    self._queries = QuerySession(self)
        return self._queries

    def certain_answers(self, query: QueryLike) -> Answers:
        """Certain answers of ``query`` over the materialized instance."""
        return self.queries().answers(query)

    def holds(self, query: QueryLike) -> bool:
        """Boolean certain answer of ``query``."""
        return self.queries().holds(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MaterializedProgram({len(self._tgds)} TGDs, "
                f"{self.instance.total_tuples()} facts, "
                f"version={self.version}, engine={self.engine!r})")


class QuerySession:
    """Answer many queries over one materialization, caching the plumbing.

    Caches, all keyed by query text:

    * **parsed queries** — parse once per distinct query;
    * **join plans** — the selectivity order of the body atoms, replayed
      through the matcher with ``preordered=True``;
    * **maintained answers** — :class:`MaintainedAnswers` support counts,
      updated *in place* from every update's fact delta (the owning
      :class:`MaterializedProgram` drives maintenance through
      ``_maintain_answers``/``_note_update``), so a cache hit costs one
      dictionary lookup and re-answering happens only when an update was
      too ambiguous to maintain (EGD merges, full re-chases) — tracked by
      the ``answers_maintained``/``maintenance_fallbacks`` stats counters;
    * **answers** — plain version-stamped answer tuples, used when
      maintenance is disabled (``maintain_answers=False`` restores the
      predicate-invalidation behaviour, e.g. for baselines).

    Plans and plain answers stay valid across updates whose
    ``changed_predicates`` are disjoint from the query's body predicates;
    an update with unknown impact (EGD merges) drops everything.
    """

    def __init__(self, materialized: Union[MaterializedProgram, DatalogProgram],
                 engine: Optional[str] = None, maintain_answers: bool = True,
                 support_budget: Optional[int] = None):
        if isinstance(materialized, DatalogProgram):
            materialized = MaterializedProgram(materialized, engine=engine)
        self.materialized = materialized
        self.engine = resolve_engine(engine) if engine is not None \
            else materialized.engine
        #: maintain cached answers by delta (counting IVM); ``False`` falls
        #: back to predicate-level invalidation + re-answering
        self.maintain_answers = maintain_answers
        #: bound on the total maintained support-count rows held across all
        #: :class:`MaintainedAnswers` entries (``None`` = unbounded).  When
        #: exceeded, least-recently-used entries are evicted (counted in
        #: ``stats.support_evictions``); the most recently used entry is
        #: always retained, and an evicted query simply re-answers and
        #: re-seeds on its next read.
        self.support_budget = support_budget
        self._support_clock = 0
        #: lifetime matching work + cache counters of this session
        self.stats = EngineStats(engine=self.engine)
        self._matcher: Matcher = matcher_for(self.engine, self.stats)
        self._parsed: Dict[str, ConjunctiveQuery] = {}
        self._plans: Dict[str, Tuple[ConjunctiveQuery, List[Atom]]] = {}
        #: answer cache entries are (query, version-stamp, answers): an entry
        #: is valid for every reader at version >= its stamp, because the
        #: owning program would have invalidated it had a later update
        #: touched its predicates
        self._answers: Dict[Tuple[str, bool],
                            Tuple[ConjunctiveQuery, int, Answers]] = {}
        #: maintained support counts per query text (same validity rule)
        self._maintained: Dict[str, MaintainedAnswers] = {}
        self._ws_solver = None
        self._ws_version: Optional[Tuple[int, Optional[int]]] = None
        materialized._sessions.append(self)
        if self.maintain_answers:
            self._adopt_restored()

    def _adopt_restored(self) -> None:
        """Adopt maintained answers restored from a snapshot (first session).

        A snapshot persists the support counts of the saved session's
        maintained queries; the first query session created over the
        restored program installs them, stamped with the restored version,
        so answering (and maintenance) continues without a single re-join.
        """
        restored = self.materialized._restored_maintained
        if not restored:
            return
        self.materialized._restored_maintained = None
        version = self.materialized.version
        for cq, counts in restored:
            entry = MaintainedAnswers(cq, counts, version)
            self._maintained[entry.key] = entry
            self._parsed.setdefault(entry.key, cq)

    # -- caches -------------------------------------------------------------

    def query(self, query: QueryLike) -> ConjunctiveQuery:
        """Parse ``query`` (cached by source text)."""
        if isinstance(query, ConjunctiveQuery):
            return query
        cached = self._parsed.get(query)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        parsed = parse_query(query)
        self._parsed[query] = parsed
        return parsed

    def plan(self, query: QueryLike,
             instance: Optional[DatabaseInstance] = None) -> List[Atom]:
        """The join plan for ``query`` against the current materialization."""
        cq = self.query(query)
        key = str(cq)
        entry = self._plans.get(key)
        if entry is not None:
            self.stats.cache_hits += 1
            return entry[1]
        self.stats.cache_misses += 1
        if instance is None:
            instance = self.materialized.versions.latest().instance
        plan = self._matcher.plan(
            cq.body, instance,
            bound=comparison_bindings(cq.comparisons))
        self._plans[key] = (cq, plan)
        return plan

    def _maintain_answers(self, update: UpdateResult,
                          previous: DatabaseInstance,
                          working: DatabaseInstance,
                          version: int) -> List[MaintainedAnswers]:
        """Propagate ``update``'s fact delta through the maintained counts.

        Runs on the writer thread *before* the store lock is taken — the
        delta joins must not stall readers; ``_note_update`` installs the
        returned fresh entries under the lock, atomically with the
        publication of ``version``.  Counting maintenance: homomorphisms
        lost are enumerated by pivoting the removed facts against
        ``previous`` (the last published version, where they still exist),
        homomorphisms gained by pivoting the added facts against
        ``working`` (the post-update instance); each one moves its
        projected answer row's support count by ±1.  Facts retracted and
        re-derived within one update net out exactly.  An update whose
        delta is unknown (EGD merges, no provenance) cannot be maintained:
        the entry is left for ``_note_update`` to drop, and the fallback is
        counted in ``stats.maintenance_fallbacks``.
        """
        if not self.maintain_answers or not self._maintained:
            return []
        changed = update.changed_predicates
        if changed is not None and not changed:
            return []
        ambiguous = changed is None or update.added_facts is None or \
            update.removed_facts is None
        refreshed: List[MaintainedAnswers] = []
        for entry in list(self._maintained.values()):
            if changed is not None and not (entry.predicates & changed):
                continue  # untouched: the published entry stays valid
            if ambiguous:
                self.stats.maintenance_fallbacks += 1
                continue
            cq = entry.cq
            plan = entry.plan
            if plan is None:
                plan = DeltaJoinPlan(self._matcher, cq.body,
                                     variables=cq.body_variables(),
                                     comparisons=cq.comparisons)
            counts = dict(entry.counts)
            #: rows whose support crossed zero this pass (drives the sorted
            #: row patching — rows that merely changed support don't move)
            vanished: Set[AnswerTuple] = set()
            appeared: Dict[AnswerTuple, None] = {}
            consistent = True
            # Bulk ± per answer row: projected_counts deduplicates the delta
            # homomorphisms and pre-aggregates them per projection (the
            # columnar engine computes this without materializing a single
            # substitution; other engines loop internally).
            for row, lost in plan.projected_counts(
                    previous, update.removed_facts,
                    cq.answer_variables).items():
                support = counts.get(row, 0) - lost
                if support < 0:
                    consistent = False  # counts out of sync: never serve them
                    break
                if support:
                    counts[row] = support
                else:
                    del counts[row]
                    vanished.add(row)
            if not consistent:
                self.stats.maintenance_fallbacks += 1
                continue
            for row, gained in plan.projected_counts(
                    working, update.added_facts,
                    cq.answer_variables).items():
                support = counts.get(row, 0)
                if support == 0:
                    appeared[row] = None
                counts[row] = support + gained
            fresh = MaintainedAnswers(cq, counts, version, plan)
            fresh.last_used = entry.last_used  # maintenance is not a *use*
            fresh._patch_rows(entry, vanished, list(appeared))
            fresh.rows()  # warm the certain flavour outside the lock
            refreshed.append(fresh)
            self.stats.answers_maintained += 1
        return refreshed

    def _note_update(self, update: UpdateResult,
                     refreshed: Sequence[MaintainedAnswers] = ()) -> None:
        """Swap in maintained answers; invalidate what could not be kept.

        Called under the version store's lock, atomically with the
        publication of the new version.  Every cache entry the update may
        have touched is dropped, then the entries ``_maintain_answers``
        refreshed are installed in their place.  Updates whose delta is
        empty (``changed_predicates == set()``, e.g. inserting a fact that
        already existed as a derived fact) touch nothing and invalidate
        nothing — cached answers keep hitting.
        """
        if update.changed_predicates is not None and \
                not update.changed_predicates:
            return

        def touched(cq: ConjunctiveQuery) -> bool:
            return update.changed_predicates is None or any(
                atom.predicate in update.changed_predicates for atom in cq.body)

        # The sweeps iterate atomic snapshots (single C-level list() calls):
        # the plan cache is populated by readers without the store lock, so
        # a Python-level loop over the live dict could observe a concurrent
        # insert mid-iteration.
        for key in [key for key, (cq, _) in list(self._plans.items())
                    if touched(cq)]:
            self._plans.pop(key, None)
        for key in [key for key, (cq, _, _) in list(self._answers.items())
                    if touched(cq)]:
            self._answers.pop(key, None)
        for key in [key for key, entry in list(self._maintained.items())
                    if touched(entry.cq)]:
            self._maintained.pop(key, None)
        for entry in refreshed:
            self._maintained[entry.key] = entry
        self._evict_support()

    def _touch_entry(self, entry: MaintainedAnswers) -> None:
        """Stamp ``entry`` as just-used (drives LRU support eviction)."""
        self._support_clock += 1
        entry.last_used = self._support_clock

    def _evict_support(self) -> None:
        """Enforce ``support_budget`` over the maintained support counts.

        Evicts least-recently-used :class:`MaintainedAnswers` entries until
        the total number of support-count rows fits the budget (the most
        recently used entry is always kept, so a single oversized answer
        set cannot thrash).  Runs under the version store's lock, same as
        every other mutation of ``_maintained``.  Evicted queries lose only
        cached state: their next read re-answers and re-seeds.
        """
        budget = self.support_budget
        if budget is None or len(self._maintained) <= 1:
            return
        total = sum(len(entry.counts) for entry in self._maintained.values())
        while total > budget and len(self._maintained) > 1:
            victim = min(self._maintained.values(),
                         key=lambda entry: entry.last_used)
            self._maintained.pop(victim.key, None)
            total -= len(victim.counts)
            self.stats.support_evictions += 1

    # -- answering ----------------------------------------------------------

    def read(self, version: Optional[int] = None) -> ReadTransaction:
        """Open a read transaction pinning one published version.

        Every ``answers``/``holds`` call on the transaction observes exactly
        the pinned version, regardless of concurrent updates; the pin also
        shields the version from garbage collection until the transaction
        closes.  ``version=None`` pins the latest published version.
        """
        return ReadTransaction(self.materialized.versions, session=self,
                               version=version)

    def answers(self, query: QueryLike,
                allow_nulls: bool = False) -> Answers:
        """Answers of ``query`` over the latest published version.

        ``allow_nulls=False`` (the default) is the certain-answer
        semantics: tuples containing labeled nulls are dropped.  The result
        is an **immutable tuple**, shared across cache hits — a hit costs
        one dictionary lookup, never a copy of the answer set.  Each call
        is its own (single-read) transaction; hold an explicit
        :meth:`read` transaction to keep several reads on one version.
        """
        with self.read() as transaction:
            return transaction.answers(query, allow_nulls=allow_nulls)

    def _answers_at(self, pinned: InstanceVersion, query: QueryLike,
                    allow_nulls: bool = False) -> Answers:
        cq = self.query(query)
        key = str(cq)
        entry = self._maintained.get(key)
        if entry is not None and entry.version <= pinned.version:
            self.stats.cache_hits += 1
            self._touch_entry(entry)
            return entry.rows(allow_nulls)
        cache_key = (key, allow_nulls)
        cached = self._answers.get(cache_key)
        if cached is not None and cached[1] <= pinned.version:
            self.stats.cache_hits += 1
            return cached[2]
        self.stats.cache_misses += 1
        instance = pinned.instance
        ordered = self.plan(cq, instance)
        counts = evaluate_query_counts(cq, instance, matcher=self._matcher,
                                       plan=ordered)
        result = rows_from_counts(counts, allow_nulls)
        # Store only when this read still sees the latest version; the
        # check-and-store runs under the store lock, which the writer holds
        # across answer maintenance + publication, so a reader of an old
        # version can never re-introduce answers a newer update replaced.
        store = self.materialized.versions
        with store.lock:
            if store.latest().version == pinned.version:
                if self.maintain_answers:
                    existing = self._maintained.get(key)
                    if existing is None or existing.version <= pinned.version:
                        fresh = MaintainedAnswers(cq, counts, pinned.version)
                        fresh._seed_rows(allow_nulls, result)
                        self._touch_entry(fresh)
                        self._maintained[key] = fresh
                        self._evict_support()
                else:
                    previous = self._answers.get(cache_key)
                    if previous is None or previous[1] <= pinned.version:
                        self._answers[cache_key] = (cq, pinned.version, result)
        return result

    def holds(self, query: QueryLike) -> bool:
        """``True`` iff the (boolean) query body matches the materialization."""
        with self.read() as transaction:
            return transaction.holds(query)

    def _holds_at(self, pinned: InstanceVersion, query: QueryLike) -> bool:
        """Boolean reads ride the counted maintenance path.

        ``holds`` is true iff the query body has at least one homomorphism,
        i.e. iff the maintained support counts are non-empty (nulls
        included) — so a boolean read is served from the same
        :class:`MaintainedAnswers` entry as ``answers``, and updates move
        it by delta instead of re-running the join.  Only when maintenance
        is disabled does the session fall back to the first-match
        early-exit scan (cheaper for one-shot probes, but re-done on every
        call).
        """
        cq = self.query(query)
        entry = self._maintained.get(str(cq))
        if entry is not None and entry.version <= pinned.version:
            self.stats.cache_hits += 1
            self._touch_entry(entry)
            return bool(entry.counts)
        if self.maintain_answers:
            return bool(self._answers_at(pinned, cq, allow_nulls=True))
        instance = pinned.instance
        ordered = self.plan(cq, instance)
        for _ in self._matcher.find_homomorphisms(
                ordered, instance,
                comparisons=cq.comparisons, preordered=True):
            return True
        return False

    def answer_many(self, queries: Sequence[QueryLike],
                    allow_nulls: bool = False) -> BatchAnswers:
        """Answer a whole batch; the result carries the batch's stats delta."""
        before = self.stats.snapshot()
        answers = [self.answers(query, allow_nulls=allow_nulls)
                   for query in queries]
        return BatchAnswers(answers=answers, stats=self.stats.delta(before))

    def ws_answers(self, query: QueryLike,
                   max_depth: Optional[int] = None) -> Answers:
        """Answers via the deterministic weakly-sticky solver (Section IV).

        The solver (with its rules-by-head index) is cached and rebuilt only
        when the EDB version changes.
        """
        from ..datalog.ws_qa import DeterministicWSQAns
        key = (self.materialized.version, max_depth)
        if self._ws_solver is None or self._ws_version != key:
            self.stats.cache_misses += 1
            self._ws_solver = DeterministicWSQAns(
                self.materialized.edb_program(), max_depth=max_depth,
                engine=self.engine)
            self._ws_version = key
        else:
            self.stats.cache_hits += 1
        return self._ws_solver.answers(self.query(query))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuerySession({self.materialized!r}, "
                f"{len(self._parsed)} parsed, {len(self._plans)} plans)")
