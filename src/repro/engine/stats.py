"""Instrumentation counters for the evaluation engine.

An :class:`EngineStats` object is threaded through the matching layer and
the evaluators built on it.  The counters answer the questions one asks when
profiling a chase or a query batch: how many stored rows were actually
scanned, how many lookups were answered by an index probe instead, how many
triggers fired, how many rounds the fixpoint took and how much work the
delta discipline avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass
class EngineStats:
    """Counters describing one evaluation (chase run, query batch, ...)."""

    #: which engine produced these numbers ("indexed" or "naive")
    engine: str = "indexed"
    #: stored rows iterated during atom matching (full or candidate scans)
    rows_scanned: int = 0
    #: hash-index lookups (pattern probes and full-row membership tests)
    index_probes: int = 0
    #: atom-match calls answered without touching the relation (empty/missing)
    empty_lookups: int = 0
    #: TGD triggers applied (facts derived) by the chase / fixpoint
    triggers_fired: int = 0
    #: EGD value merges applied
    egd_merges: int = 0
    #: fixpoint rounds executed
    rounds: int = 0
    #: rule evaluations skipped because the rule body was disjoint from the delta
    rules_skipped_by_delta: int = 0
    #: rows rewritten by EGD merges (touched via the null-occurrence index)
    rows_rewritten: int = 0

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate ``other``'s counters into this object (in place)."""
        self.rows_scanned += other.rows_scanned
        self.index_probes += other.index_probes
        self.empty_lookups += other.empty_lookups
        self.triggers_fired += other.triggers_fired
        self.egd_merges += other.egd_merges
        self.rounds += other.rounds
        self.rules_skipped_by_delta += other.rules_skipped_by_delta
        self.rows_rewritten += other.rows_rewritten
        return self

    def as_dict(self) -> Dict[str, Any]:
        """The counters as a plain mapping (for reports and JSON artifacts)."""
        return {
            "engine": self.engine,
            "rows_scanned": self.rows_scanned,
            "index_probes": self.index_probes,
            "empty_lookups": self.empty_lookups,
            "triggers_fired": self.triggers_fired,
            "egd_merges": self.egd_merges,
            "rounds": self.rounds,
            "rules_skipped_by_delta": self.rules_skipped_by_delta,
            "rows_rewritten": self.rows_rewritten,
        }

    def __str__(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.as_dict().items()
                          if key != "engine")
        return f"EngineStats[{self.engine}]({parts})"
