"""Instrumentation counters for the evaluation engine.

An :class:`EngineStats` object is threaded through the matching layer and
the evaluators built on it.  The counters answer the questions one asks when
profiling a chase, a query batch or a materialization session: how many
stored rows were actually scanned, how many lookups were answered by an
index probe instead, how many triggers fired, how much work the delta
discipline avoided, how often session caches hit, and how often an update
could be served incrementally instead of re-chasing from scratch.

Counters are declared exactly once — as dataclass fields.  ``merge`` and
``as_dict`` are derived from :func:`dataclasses.fields`, so adding a counter
is a one-line change.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Tuple


@dataclass
class EngineStats:
    """Counters describing one evaluation (chase run, query batch, update, ...)."""

    #: which engine produced these numbers ("indexed" or "naive")
    engine: str = "indexed"
    #: stored rows iterated during atom matching (full or candidate scans)
    rows_scanned: int = 0
    #: hash-index lookups (pattern probes and full-row membership tests)
    index_probes: int = 0
    #: atom-match calls answered without touching the relation (empty/missing)
    empty_lookups: int = 0
    #: TGD triggers applied (facts derived) by the chase / fixpoint
    triggers_fired: int = 0
    #: EGD value merges applied
    egd_merges: int = 0
    #: fixpoint rounds executed
    rounds: int = 0
    #: rule evaluations skipped because the rule body was disjoint from the delta
    rules_skipped_by_delta: int = 0
    #: rows rewritten by EGD merges (touched via the null-occurrence index)
    rows_rewritten: int = 0
    #: session-cache lookups answered from the cache (parsed queries, join
    #: plans, quality rewritings, cached assessments)
    cache_hits: int = 0
    #: session-cache lookups that had to compute and store a fresh entry
    cache_misses: int = 0
    #: EDB updates served by the incremental delta path of a session
    incremental_updates: int = 0
    #: EDB updates that fell back to a full from-scratch re-chase
    full_rechases: int = 0
    #: cached answer sets updated in place from an update's fact delta
    #: (counting-based incremental view maintenance) instead of re-answered
    answers_maintained: int = 0
    #: cached answer sets dropped because an update was too ambiguous to
    #: maintain (EGD merges, full re-chases, missing fact deltas) — the next
    #: read re-answers from scratch
    maintenance_fallbacks: int = 0
    #: batch probe steps executed by the columnar engine (one per body atom
    #: per set-at-a-time join, instead of one probe per candidate row)
    batch_joins: int = 0
    #: candidate rows gathered by batch probe steps (the columnar analogue
    #: of ``rows_scanned``: gathered in bulk, not iterated in Python)
    rows_batch_scanned: int = 0
    #: specialized join functions replayed from the columnar codegen cache
    codegen_cache_hits: int = 0
    #: maintained answer-count entries evicted to honor the session's
    #: support-count budget (their next read re-answers and re-seeds)
    support_evictions: int = 0
    #: TGD triggers applied through the batched (set-at-a-time) trigger
    #: path: grouped head instantiation + bulk insert, instead of one
    #: homomorphism at a time
    triggers_batched: int = 0
    #: labeled nulls invented in bulk (one factory reservation and one
    #: locked catalog append per trigger batch, not per trigger)
    nulls_bulk_allocated: int = 0
    #: group-index delta merges: an already-built column group index
    #: updated in place by a mutation instead of invalidated and rebuilt
    index_delta_merges: int = 0

    @classmethod
    def counter_names(cls) -> Tuple[str, ...]:
        """The names of the integer counters (every field except ``engine``)."""
        return tuple(f.name for f in fields(cls) if f.name != "engine")

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate ``other``'s counters into this object (in place)."""
        for name in self.counter_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def delta(self, since: "EngineStats") -> "EngineStats":
        """A new object holding this object's counters minus ``since``'s.

        Sessions use this to report the work of one update or one query
        batch out of a lifetime-accumulating stats object.
        """
        diff = EngineStats(engine=self.engine)
        for name in self.counter_names():
            setattr(diff, name, getattr(self, name) - getattr(since, name))
        return diff

    def snapshot(self) -> "EngineStats":
        """An independent copy of the current counter values."""
        return EngineStats(engine=self.engine).merge(self)

    def as_dict(self) -> Dict[str, Any]:
        """The counters as a plain mapping (for reports and JSON artifacts)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.as_dict().items()
                          if key != "engine")
        return f"EngineStats[{self.engine}]({parts})"


@dataclass
class ServingStats:
    """Counters for the serving tier's durability, protection and
    replication paths.

    Lives here (next to :class:`EngineStats`) because the serving daemon
    and the replica daemon both surface these through the same ``stats``
    protocol request that carries the engine counters.  Declared once as
    dataclass fields; ``merge``/``as_dict`` are derived, so adding a
    counter is a one-line change.
    """

    #: update records made durable through the write-ahead log
    wal_records: int = 0
    #: fsyncs issued by the append path (group commit amortizes these:
    #: ``wal_records / wal_fsyncs`` is the effective batch size)
    wal_fsyncs: int = 0
    #: commit batches drained by group-commit leaders (1..N records each)
    commit_batches: int = 0
    #: records that shared their batch's fsync with at least one other
    #: writer (the grouped fraction of ``wal_records``)
    commit_grouped_records: int = 0
    #: backend applies that folded a contiguous same-op run of a commit
    #: batch into one session update (one MVCC publish for the whole run)
    apply_batches: int = 0
    #: commit batches that fell back to record-at-a-time application to
    #: isolate a poisoned record after a batched apply failed
    degraded_retries: int = 0
    #: write requests refused with a typed ``busy`` response because the
    #: bounded group-commit queue was at capacity (back-pressure shed load)
    busy_rejections: int = 0
    #: requests refused because they exceeded an admission size limit
    #: (facts per write) before any validation or logging happened
    oversized_rejections: int = 0
    #: write requests refused because their connection already had the
    #: maximum number of in-flight writes queued
    inflight_rejections: int = 0
    #: raw protocol lines shed at the socket boundary for exceeding
    #: ``max_request_bytes`` — drained and refused without being parsed
    requests_shed: int = 0
    #: operations refused by the shared-secret auth gate: missing or wrong
    #: credentials, replayed nonces, and unauthenticated requests alike
    auth_failures: int = 0
    #: WAL records replayed by a replica past its snapshot cut
    records_replayed: int = 0
    #: times a replica re-seeded itself from the primary's newest snapshot
    #: (fell behind pruned segments, or the shipped log changed under it)
    reseeds: int = 0
    #: shipped-log poll rounds executed by a replica
    polls: int = 0

    @classmethod
    def counter_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    def merge(self, other: "ServingStats") -> "ServingStats":
        """Accumulate ``other``'s counters into this object (in place)."""
        for name in self.counter_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, Any]:
        """The counters as a plain mapping (for stats responses and JSON)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{key}={value}"
                          for key, value in self.as_dict().items())
        return f"ServingStats({parts})"
