"""Durable snapshots of materialized programs.

A snapshot is a compact, deterministic, versioned on-disk serialization of
a :class:`~repro.engine.session.MaterializedProgram`: the pristine EDB, the
chased instance (including labeled nulls), the labeled-null factory state,
the derived-fact provenance graph, the lifetime engine stats, the
program's rules, and the maintained answer support counts of its query
sessions.  Restoring a snapshot rebuilds a fully live session — further
``add_facts``/``retract_facts`` continue the delta-driven chase and
maintain the restored answers exactly as the original process would have —
without re-chasing or re-answering anything.

File format (version 1)
-----------------------
Two lines of canonical JSON (sorted keys, compact separators), so the same
state always produces the same bytes: a **header** line followed by the
**payload** line::

    {"format_version": 1, "magic": "repro-snapshot",
     "payload_checksum": "...", "program_hash": "...", "schema_hash": "..."}
    {...payload...}

* ``schema_hash`` — SHA-256 over the canonical relation schemas of the
  materialized instance;
* ``program_hash`` — SHA-256 over the canonical encoding of the program's
  TGDs, EGDs and negative constraints (order-sensitive: rule order is part
  of chase determinism);
* ``payload_checksum`` — SHA-256 over the raw payload line, so a truncated
  or bit-flipped file is rejected (cheaply, without re-serializing) before
  anything is restored.

Every failure mode raises a typed :class:`~repro.errors.SnapshotError`
subclass with an actionable message — never a raw JSON/pickle traceback,
and never a silently empty instance:

* :class:`~repro.errors.SnapshotFormatError` — not a snapshot, or a format
  version this build does not read;
* :class:`~repro.errors.SnapshotIntegrityError` — truncation/corruption
  (unparseable JSON, checksum mismatch);
* :class:`~repro.errors.SnapshotMismatchError` — the snapshot is stale:
  it was taken against different rules or a different EDB than the program
  supplied at load time.

Values are encoded as their JSON scalars (strings, ints, floats, bools,
``null``); labeled nulls as ``{"n": label}``; rule terms additionally use
``{"v": name}`` for variables.  Rows and provenance entries are sorted
canonically, so serialization is deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..datalog.atoms import Atom, Comparison
from ..datalog.chase import Fact
from ..datalog.rules import ConjunctiveQuery, EGD, NegativeConstraint, TGD
from ..datalog.terms import Variable
from ..errors import (ArityError, SnapshotError, SnapshotFormatError,
                      SnapshotIntegrityError, SnapshotMismatchError)
from ..relational.instance import DatabaseInstance
from ..relational.values import Null, intern_value, value_sort_key

MAGIC = "repro-snapshot"
FORMAT_VERSION = 1

_sys_intern = sys.intern

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Value / term / rule codecs
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode one stored value into a JSON-representable form."""
    if isinstance(value, Null):
        return {"n": value.label}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise SnapshotError(
        f"cannot serialize value {value!r} of type {type(value).__name__}; "
        "snapshots support strings, numbers, booleans, None and labeled "
        "nulls")


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        return Null(encoded["n"])
    return encoded


def encode_row(row: Iterable[Any]) -> List[Any]:
    return [encode_value(value) for value in row]


def decode_row(encoded: Iterable[Any]) -> Tuple[Any, ...]:
    # The hot loop of a restore: inlined null decoding, tuple-from-list,
    # constants interned so the restored instance shares one object per
    # distinct value (pointer-identity hashing/equality, less memory).
    # Strings — the overwhelmingly common case — go straight to
    # sys.intern; exact type checks and hoisted builtins keep the loop
    # free of Python-level call layers (this path dominates warm-restart
    # latency, see benchmarks E13/E15).
    return tuple([
        _sys_intern(value) if type(value) is str
        else Null(value["n"]) if type(value) is dict
        else intern_value(value)
        for value in encoded])


def _encode_term(term: Any) -> Any:
    if isinstance(term, Variable):
        return {"v": term.name}
    from ..datalog.terms import Constant
    if isinstance(term, Constant):
        return encode_value(term.value)
    return encode_value(term)


def _decode_term(encoded: Any) -> Any:
    if isinstance(encoded, dict) and "v" in encoded:
        return Variable(encoded["v"])
    return decode_value(encoded)


def _encode_atom(atom: Atom) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {"p": atom.predicate,
                               "t": [_encode_term(t) for t in atom.terms]}
    if atom.negated:
        encoded["neg"] = True
    return encoded


def _decode_atom(encoded: Dict[str, Any]) -> Atom:
    return Atom(encoded["p"], [_decode_term(t) for t in encoded["t"]],
                negated=encoded.get("neg", False))


def _encode_comparison(comparison: Comparison) -> Dict[str, Any]:
    return {"op": comparison.op, "l": _encode_term(comparison.left),
            "r": _encode_term(comparison.right)}


def _decode_comparison(encoded: Dict[str, Any]) -> Comparison:
    return Comparison(encoded["op"], _decode_term(encoded["l"]),
                      _decode_term(encoded["r"]))


def encode_rule(rule: Any) -> Dict[str, Any]:
    """Encode a TGD, EGD or negative constraint structurally."""
    if isinstance(rule, TGD):
        return {"kind": "tgd",
                "head": [_encode_atom(a) for a in rule.head],
                "body": [_encode_atom(a) for a in rule.body],
                "label": rule.label}
    if isinstance(rule, EGD):
        return {"kind": "egd", "left": _encode_term(rule.left),
                "right": _encode_term(rule.right),
                "body": [_encode_atom(a) for a in rule.body],
                "label": rule.label}
    if isinstance(rule, NegativeConstraint):
        return {"kind": "constraint",
                "body": [_encode_atom(a) for a in rule.body],
                "comparisons": [_encode_comparison(c)
                                for c in rule.comparisons],
                "label": rule.label}
    raise SnapshotError(f"cannot serialize rule of type {type(rule).__name__}")


def encode_query(query: ConjunctiveQuery) -> Dict[str, Any]:
    """Encode a conjunctive query structurally (no parser round-trip)."""
    return {"name": query.name,
            "answer": [variable.name for variable in query.answer_variables],
            "body": [_encode_atom(atom) for atom in query.body],
            "comparisons": [_encode_comparison(comparison)
                            for comparison in query.comparisons]}


def decode_query(encoded: Dict[str, Any]) -> ConjunctiveQuery:
    """Inverse of :func:`encode_query`."""
    return ConjunctiveQuery(
        [Variable(name) for name in encoded["answer"]],
        [_decode_atom(atom) for atom in encoded["body"]],
        [_decode_comparison(comparison)
         for comparison in encoded.get("comparisons", ())],
        name=encoded.get("name", "Q"))


def decode_rule(encoded: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_rule`."""
    kind = encoded.get("kind")
    if kind == "tgd":
        return TGD([_decode_atom(a) for a in encoded["head"]],
                   [_decode_atom(a) for a in encoded["body"]],
                   label=encoded.get("label", ""))
    if kind == "egd":
        return EGD(_decode_term(encoded["left"]),
                   _decode_term(encoded["right"]),
                   [_decode_atom(a) for a in encoded["body"]],
                   label=encoded.get("label", ""))
    if kind == "constraint":
        return NegativeConstraint(
            [_decode_atom(a) for a in encoded["body"]],
            comparisons=[_decode_comparison(c)
                         for c in encoded.get("comparisons", ())],
            label=encoded.get("label", ""))
    raise SnapshotFormatError(f"unknown rule kind {kind!r} in snapshot")


# ---------------------------------------------------------------------------
# Instance / fact codecs
# ---------------------------------------------------------------------------


def encode_instance(instance: DatabaseInstance) -> Dict[str, Any]:
    """Encode schema and rows of an instance (rows in canonical order)."""
    return {
        "schema": [[relation.schema.name, list(relation.schema.attributes)]
                   for relation in instance],
        "rows": {
            relation.schema.name: [encode_row(row)
                                   for row in relation.sorted_rows()]
            for relation in instance if len(relation)
        },
    }


def decode_instance(encoded: Dict[str, Any]) -> DatabaseInstance:
    """Inverse of :func:`encode_instance`.

    Rows ride the relation's bulk-load fast path (``Relation.bulk_load``):
    one arity scan, then a wholesale dictionary assignment — the writer
    serialized a valid instance and the checksum vouches for the bytes, so
    nothing is checked row by row.
    """
    instance = DatabaseInstance()
    for name, attributes in encoded["schema"]:
        instance.declare(name, attributes)
    for name, rows in encoded["rows"].items():
        relation = instance.relation(name)
        try:
            relation.bulk_load([decode_row(row) for row in rows])
        except ArityError:
            raise SnapshotFormatError(
                f"snapshot rows for relation {name!r} do not match its "
                f"declared arity {relation.schema.arity}") from None
    return instance


def _encode_fact(fact: Fact) -> List[Any]:
    predicate, row = fact
    return [predicate, encode_row(row)]


def _decode_fact(encoded: List[Any]) -> Fact:
    return (encoded[0], decode_row(encoded[1]))


def _fact_key(fact: Fact) -> Tuple:
    predicate, row = fact
    return (predicate, tuple(value_sort_key(value) for value in row))


def encode_provenance(provenance: Dict[Fact, Tuple[Fact, ...]]
                      ) -> Dict[str, List[Any]]:
    """Provenance graph as a fact table plus integer edges.

    A derived fact and its grounded body facts recur across many edges;
    encoding every distinct fact once and the edges as indexes keeps the
    file compact and lets a restore decode each fact exactly once.  Both
    the table and the edge list are canonically sorted, so the encoding is
    deterministic.
    """
    index: Dict[Fact, int] = {}
    ordered = sorted(
        {fact for fact, supports in provenance.items()
         for fact in (fact, *supports)},
        key=_fact_key)
    for position, fact in enumerate(ordered):
        index[fact] = position
    edges = sorted((index[fact], [index[body] for body in supports])
                   for fact, supports in provenance.items())
    return {"facts": [_encode_fact(fact) for fact in ordered],
            "edges": [[fact, supports] for fact, supports in edges]}


def decode_provenance(encoded: Dict[str, List[Any]]
                      ) -> Dict[Fact, Tuple[Fact, ...]]:
    """Inverse of :func:`encode_provenance`."""
    facts = [_decode_fact(fact) for fact in encoded["facts"]]
    return {facts[fact]: tuple(facts[body] for body in supports)
            for fact, supports in encoded["edges"]}


# ---------------------------------------------------------------------------
# Hashes
# ---------------------------------------------------------------------------


def _canonical(document: Any) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def schema_hash(instance: DatabaseInstance) -> str:
    """SHA-256 over the (sorted) relation schemas of ``instance``."""
    schemas = sorted([name, list(attributes)] for name, attributes in
                     ((relation.schema.name, relation.schema.attributes)
                      for relation in instance))
    return _sha256(_canonical(schemas))


def program_hash(tgds: Iterable[TGD], egds: Iterable[EGD],
                 constraints: Iterable[NegativeConstraint]) -> str:
    """SHA-256 over the canonical rule encoding (order-sensitive)."""
    return _sha256(_canonical({
        "tgds": [encode_rule(rule) for rule in tgds],
        "egds": [encode_rule(rule) for rule in egds],
        "constraints": [encode_rule(rule) for rule in constraints],
    }))


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------


def encode_maintained(materialized) -> List[Dict[str, Any]]:
    """Encode the maintained answer counts of the program's sessions.

    Entries are gathered across every query session (first session wins per
    query) and sorted by query text, so the encoding is deterministic.  A
    restored program hands them to the first session created over it —
    answering and maintenance resume without a single re-join.  Each
    session's entry dict is snapshot atomically (a C-level ``list()`` under
    the GIL) before iterating: readers install entries without holding the
    program's write lock, and a save must never crash — or encode a torn
    view — because a query was being answered concurrently.
    """
    collected: Dict[str, Any] = {}
    for session in list(getattr(materialized, "_sessions", ())):
        for key, entry in list(getattr(session, "_maintained", {}).items()):
            collected.setdefault(key, entry)
    encoded = []
    for key in sorted(collected):
        entry = collected[key]
        rows = sorted(entry.counts.items(),
                      key=lambda item: tuple(value_sort_key(value)
                                             for value in item[0]))
        encoded.append({"query": encode_query(entry.cq),
                        "counts": [[encode_row(row), support]
                                   for row, support in rows]})
    return encoded


def decode_maintained(encoded: List[Dict[str, Any]]
                      ) -> List[Tuple[ConjunctiveQuery, Dict[Tuple, int]]]:
    """Inverse of :func:`encode_maintained`."""
    return [(decode_query(item["query"]),
             {decode_row(row): support for row, support in item["counts"]})
            for item in encoded]


def save_program(materialized, path: PathLike,
                 extras: Optional[Dict[str, DatabaseInstance]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> Path:
    """Serialize ``materialized`` (a :class:`MaterializedProgram`) to ``path``.

    ``extras`` is an optional mapping of named auxiliary instances persisted
    alongside the program (the quality session stores the instance under
    assessment this way).  ``meta`` is an optional JSON-serializable mapping
    stored verbatim in the payload — the serving layer records the
    write-ahead-log position of a checkpoint there, so a restore knows the
    exact cut the snapshot represents (see :mod:`repro.serving`).  Returns
    the path written.
    """
    instance = materialized.instance
    payload: Dict[str, Any] = {
        "config": {
            "engine": materialized.engine,
            "max_steps": materialized._chaser.max_steps,
            "null_prefix": materialized._chaser.null_prefix,
            "record_provenance": materialized.record_provenance,
        },
        "version": materialized.version,
        "ambiguous": materialized._ambiguous,
        "nulls": {"prefix": materialized._nulls.prefix,
                  "next_index": materialized._nulls.next_index},
        "null_table": sorted(null.label for null in instance.nulls()),
        "rules": {
            "tgds": [encode_rule(rule) for rule in materialized._tgds],
            "egds": [encode_rule(rule) for rule in materialized._egds],
            "constraints": [encode_rule(rule)
                            for rule in materialized._constraints],
        },
        "edb": encode_instance(materialized.edb),
        "instance": encode_instance(instance),
        "provenance": (None if materialized._provenance is None
                       else encode_provenance(materialized._provenance)),
        "result": {
            "steps": materialized.result.steps,
            "rounds": materialized.result.rounds,
            "egd_merges": materialized.result.egd_merges,
            "mode": materialized.result.mode,
        },
        "stats": materialized.stats.as_dict(),
        "maintained": encode_maintained(materialized),
        "extras": {name: encode_instance(extra)
                   for name, extra in (extras or {}).items()},
        "meta": meta or {},
    }
    payload_text = _canonical(payload)
    header = {
        "magic": MAGIC,
        "format_version": FORMAT_VERSION,
        "schema_hash": schema_hash(instance),
        "program_hash": program_hash(materialized._tgds, materialized._egds,
                                     materialized._constraints),
        "payload_checksum": _sha256(payload_text),
    }
    path = Path(path)
    # Atomic replace: a crash mid-save must never destroy the previous
    # good snapshot or leave a truncated file behind.  A *failed* save must
    # not either: the temp file is removed on any error, so a checkpoint
    # that dies (full disk, unserializable value discovered late) leaves
    # the previous snapshot — and nothing else — on disk.  The contents
    # are fsynced before the rename and the directory entry after it, so
    # a snapshot that has been handed back is durable against power loss —
    # the serving daemon destroys the replayed WAL segment right after a
    # checkpoint, which is only safe once the snapshot actually is on disk.
    temp = path.with_name(path.name + ".tmp")
    try:
        with open(temp, "wb") as handle:
            handle.write((_canonical(header) + "\n" + payload_text + "\n")
                         .encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        fsync_directory(path.parent)
    except OSError as exc:
        _unlink_quietly(temp)
        raise SnapshotError(
            f"cannot write snapshot file {path}: {exc}") from exc
    except BaseException:
        _unlink_quietly(temp)
        raise
    return path


def wal_position(meta: Optional[Dict[str, Any]], default: int = 0) -> int:
    """The write-ahead-log cut recorded in a snapshot's ``meta`` mapping.

    Serving checkpoints stamp every snapshot with
    ``{"wal": {"lsn": L, "segment": "wal-<L, 16 digits>.log"}}`` — the LSN
    the serialized state is exact at, and the name of the segment that
    starts there.  Recovery (primary or replica) restores the snapshot and
    replays only WAL records with LSN > this cut.  Pre-segment snapshots
    carried ``{"wal": {"lsn": L, "file": "wal.log"}}``; the LSN is read
    the same way.  Returns ``default`` when the meta carries no usable
    position (e.g. a snapshot saved outside the serving tier).
    """
    position = (meta or {}).get("wal") or {}
    lsn = position.get("lsn", default)
    return lsn if isinstance(lsn, int) and not isinstance(lsn, bool) \
        else default


def fsync_directory(path: Path) -> None:
    """Flush a directory entry (rename durability); best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:  # pragma: no cover - already gone / unremovable
        pass


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------


def read_document(path: PathLike) -> Dict[str, Any]:
    """Read and verify a snapshot document (format, version, checksum).

    Returns the header fields plus the parsed payload under ``"payload"``.
    The checksum is verified over the raw payload bytes before parsing, so
    truncation and bit flips are rejected without deserializing anything.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise SnapshotError(
            f"snapshot file {path} does not exist; save one with "
            "MaterializedProgram.save(path) first") from None
    except UnicodeDecodeError:
        raise SnapshotFormatError(
            f"{path} is not a repro snapshot (not UTF-8 text)") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot file {path}: {exc}") from None
    header_text, _, payload_text = text.partition("\n")
    try:
        header = json.loads(header_text)
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise SnapshotIntegrityError(
            f"snapshot file {path} is truncated or corrupted (unparseable "
            "header); delete it and re-save from a live session") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotFormatError(
            f"{path} is not a repro snapshot (missing {MAGIC!r} header)")
    format_version = header.get("format_version")
    if format_version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot file {path} uses format version {format_version!r}, "
            f"but this build reads version {FORMAT_VERSION}; re-save the "
            "snapshot from a live session of this build")
    checksum = header.get("payload_checksum")
    payload_text = payload_text.rstrip("\n")
    if not payload_text or checksum is None:
        raise SnapshotFormatError(
            f"snapshot file {path} has no payload/checksum; it was not "
            "written by save_program")
    if _sha256(payload_text) != checksum:
        raise SnapshotIntegrityError(
            f"snapshot file {path} is truncated or corrupted (payload "
            "checksum mismatch); delete it and re-save from a live session")
    try:
        payload = json.loads(payload_text)
    except (json.JSONDecodeError, UnicodeDecodeError):  # pragma: no cover
        raise SnapshotIntegrityError(
            f"snapshot file {path} is truncated or corrupted (unparseable "
            "payload); delete it and re-save from a live session") from None
    document = dict(header)
    document["payload"] = payload
    return document


def _check_program(document: Dict[str, Any], program,
                   snapshot_edb: DatabaseInstance, path: PathLike,
                   check_data: bool = True) -> None:
    """Reject a snapshot that is stale relative to ``program``.

    The EDB comparison is two-directional: a relation the program emptied
    (or never had) while the snapshot still carries rows is just as stale
    as one the program extended.  A program whose database is entirely
    empty is treated as rules-only and skips the data check, as does
    ``check_data=False`` (used when the snapshot's own EDB — which may
    include updates the session absorbed — is the authority).
    """
    expected = program_hash(program.tgds, program.egds, program.constraints)
    if document["program_hash"] != expected:
        raise SnapshotMismatchError(
            f"snapshot {path} was taken against a different ontology "
            "(program hash mismatch): the rules changed since it was "
            "saved; re-chase the current program instead of restoring")
    if not check_data or not program.database.total_tuples():
        return
    names = ({relation.schema.name for relation in program.database
              if len(relation)} |
             {relation.schema.name for relation in snapshot_edb
              if len(relation)})
    for name in sorted(names):
        live = (set(program.database.relation(name))
                if program.database.has_relation(name) else set())
        stored = (set(snapshot_edb.relation(name))
                  if snapshot_edb.has_relation(name) else set())
        if live != stored:
            raise SnapshotMismatchError(
                f"snapshot {path} was taken against different extensional "
                f"data (relation {name!r} differs); re-chase the current "
                "program instead of restoring")


def load_program(path: PathLike, program=None, engine: Optional[str] = None,
                 document: Optional[Dict[str, Any]] = None,
                 check_data: bool = True):
    """Restore a :class:`MaterializedProgram` from ``path`` without chasing.

    ``program`` (optional) supplies the live rules: its hash and EDB facts
    are verified against the snapshot, and its rule objects are reused.
    Without it, the rules are reconstructed from the snapshot itself.
    ``engine`` overrides the stored matching engine.  A pre-verified
    ``document`` (from :func:`read_document`) may be passed to avoid
    re-reading the file.  ``check_data=False`` keeps the rule-hash check
    but accepts the snapshot's EDB as the authority (for sessions whose
    EDB legitimately diverged from the program's pristine data through
    absorbed updates).
    """
    from ..datalog.chase import RESTRICTED, ChaseEngine, ChaseResult
    from ..relational.values import NullFactory
    from .stats import EngineStats
    from .session import MaterializedProgram, _ProvenanceLog
    from .versioning import VersionStore
    import threading

    if document is None:
        document = read_document(path)
    payload = document["payload"]
    edb = decode_instance(payload["edb"])

    if program is not None:
        _check_program(document, program, edb, path, check_data=check_data)
        tgds = list(program.tgds)
        egds = list(program.egds)
        constraints = list(program.constraints)
    else:
        tgds = [decode_rule(rule) for rule in payload["rules"]["tgds"]]
        egds = [decode_rule(rule) for rule in payload["rules"]["egds"]]
        constraints = [decode_rule(rule)
                       for rule in payload["rules"]["constraints"]]

    instance = decode_instance(payload["instance"])
    if schema_hash(instance) != document["schema_hash"]:
        raise SnapshotIntegrityError(
            f"snapshot {path} fails its schema hash — the header does not "
            "match the payload; the file was tampered with or mis-assembled")
    if sorted(null.label for null in instance.nulls()) != payload["null_table"]:
        raise SnapshotIntegrityError(
            f"snapshot {path} is internally inconsistent: the labeled-null "
            "table does not match the nulls of the serialized instance; "
            "the file was mis-assembled — re-save from a live session")

    config = payload["config"]
    materialized = MaterializedProgram.__new__(MaterializedProgram)
    materialized._chaser = ChaseEngine(
        mode=RESTRICTED, max_steps=config["max_steps"],
        check_constraints=False, null_prefix=config["null_prefix"],
        engine=engine if engine is not None else config["engine"])
    materialized.engine = materialized._chaser.engine
    materialized.record_provenance = config["record_provenance"]
    materialized._tgds = tgds
    materialized._egds = egds
    materialized._constraints = constraints
    materialized._edb = edb
    materialized.version = payload["version"]
    materialized.stats = EngineStats(engine=materialized.engine)
    for name, value in payload["stats"].items():
        if name != "engine":
            setattr(materialized.stats, name, value)
    materialized._queries = None
    materialized._sessions = []

    from ..datalog.program import DatalogProgram
    materialized._program = DatalogProgram(
        tgds=tgds, egds=egds, constraints=constraints, database=instance)
    materialized._nulls = NullFactory(payload["nulls"]["prefix"],
                                      start=payload["nulls"]["next_index"])
    materialized._ambiguous = payload["ambiguous"]
    if payload["provenance"] is None:
        materialized._provenance = None
        materialized._dependents = {}
    else:
        provenance = _ProvenanceLog()
        provenance.update(decode_provenance(payload["provenance"]))
        materialized._provenance = provenance
        dependents: Dict[Fact, List[Fact]] = {}
        for derived, supports in provenance.items():
            for body_fact in supports:
                dependents.setdefault(body_fact, []).append(derived)
        materialized._dependents = dependents

    result_meta = payload["result"]
    materialized.result = ChaseResult(
        instance=instance, steps=result_meta["steps"],
        rounds=result_meta["rounds"], terminated=True,
        mode=result_meta["mode"], egd_merges=result_meta["egd_merges"],
        violations=[], engine=materialized.engine, stats=materialized.stats,
        provenance=materialized._provenance)

    maintained = payload.get("maintained") or []
    materialized._restored_maintained = \
        decode_maintained(maintained) if maintained else None
    materialized.snapshot_meta = payload.get("meta") or {}

    materialized._write_lock = threading.RLock()
    materialized.versions = VersionStore()
    materialized.versions.publish(materialized.version, instance, changed=None)
    return materialized


def load_extras(path: PathLike,
                document: Optional[Dict[str, Any]] = None
                ) -> Dict[str, DatabaseInstance]:
    """The named auxiliary instances stored alongside a snapshot."""
    if document is None:
        document = read_document(path)
    return {name: decode_instance(encoded)
            for name, encoded in document["payload"].get("extras", {}).items()}
