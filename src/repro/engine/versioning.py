"""MVCC-style versioned relations for concurrent sessions.

A :class:`~repro.engine.session.MaterializedProgram` mutates one *working*
instance in place — the delta-driven chase depends on its incrementally
maintained indexes.  Concurrent readers therefore never touch the working
instance: after every effective update the program **publishes** an
immutable :class:`InstanceVersion` into a :class:`VersionStore`, and
readers pin a published version for the duration of a
:class:`ReadTransaction`.

* **Publication is copy-on-write at the relation level.**  A new version
  copies only the relations the update changed
  (:meth:`~repro.relational.instance.Relation.snapshot` — a structural copy
  that carries the already-built position-pattern indexes along) and
  *attaches* the previous version's relation objects for everything else,
  so untouched relations share rows and indexes across arbitrarily many
  versions.
* **Readers never block on writers.**  Pinning, unpinning and publishing
  each hold the store lock for a few dictionary operations; the chase work
  of an update happens under the program's separate write lock, which
  readers never acquire.  A reader that pinned version *v* keeps seeing
  exactly *v*'s relations while any number of updates publish *v+1, v+2,
  ...* — there is no torn state to observe, because published relations are
  never mutated.
* **Garbage collection** drops every version that is neither pinned nor the
  latest, as soon as its last pin is released (or a newer version is
  published).  A pinned version is never collected.
* **Answer maintenance piggybacks on publication.**  The writer computes
  maintained answer sets outside the lock — joining deletion deltas against
  :meth:`~VersionStore.latest_instance` (the pre-publication state, where
  the removed facts still exist) — and swaps them into the session caches
  under the same locked region that publishes the new version, so readers
  always observe a version together with exactly its answers.

See ``docs/ARCHITECTURE.md`` ("Durability and concurrency") for how the
session layer routes queries through this module.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set

from ..errors import VersioningError
from ..relational.instance import DatabaseInstance


class InstanceVersion:
    """One published, immutable version of a materialized instance."""

    __slots__ = ("version", "instance", "pins")

    def __init__(self, version: int, instance: DatabaseInstance):
        #: the :attr:`MaterializedProgram.version` this snapshot corresponds to
        self.version = version
        #: relation-level COW snapshot; treat as strictly read-only
        self.instance = instance
        #: number of open pins (read transactions) holding this version
        self.pins = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InstanceVersion(v{self.version}, "
                f"{self.instance.total_tuples()} facts, pins={self.pins})")


class VersionStore:
    """Published versions of one materialization, with pin-based GC.

    All methods are thread-safe.  The :attr:`lock` is public on purpose:
    the session layer takes it to make *invalidate caches + publish* (the
    writer) and *re-check latest + store a cache entry* (a reader) atomic
    with respect to each other — see ``QuerySession._answers_at``.
    """

    def __init__(self):
        self.lock = threading.RLock()
        self._versions: Dict[int, InstanceVersion] = {}
        self._latest: Optional[InstanceVersion] = None
        #: lifetime counters (exposed for tests and reports)
        self.published = 0
        self.collected = 0

    # -- publication ---------------------------------------------------------

    def prepare(self, working: DatabaseInstance,
                changed: Optional[Set[str]] = None) -> Dict[str, Any]:
        """Snapshot-copy the relations a publication will replace.

        The O(relation-size) copies run *outside* the store lock (the
        single writer holds the program's write lock, so the working
        instance cannot move under them); :meth:`publish` then only
        attaches and swaps under the lock, keeping reader pin/unpin stalls
        to a few dictionary operations.
        """
        return {relation.schema.name: relation.snapshot()
                for relation in working
                if changed is None or relation.schema.name in changed}

    def publish(self, version: int, working: DatabaseInstance,
                changed: Optional[Set[str]] = None,
                copies: Optional[Dict[str, Any]] = None) -> InstanceVersion:
        """Publish the working instance's current state as ``version``.

        ``changed`` names the relations the update may have touched;
        ``None`` means "unknown — copy everything".  Untouched relations are
        shared (attached) from the previous version, touched ones are
        snapshot-copied from the working instance (pass the result of
        :meth:`prepare` as ``copies`` to keep those copies out of the
        locked region).
        """
        if copies is None:
            copies = self.prepare(working, changed)
        with self.lock:
            previous = self._latest
            snapshot = DatabaseInstance()
            for relation in working:
                name = relation.schema.name
                copy = copies.get(name)
                if copy is not None:
                    snapshot.attach(copy)
                elif previous is not None and \
                        previous.instance.has_relation(name):
                    snapshot.attach(previous.instance.relation(name))
                else:  # brand-new relation outside ``changed``
                    snapshot.attach(relation.snapshot())
            published = InstanceVersion(version, snapshot)
            self._versions[version] = published
            self._latest = published
            self.published += 1
            self._collect_locked()
            return published

    # -- pinning -------------------------------------------------------------

    def latest(self) -> InstanceVersion:
        """The most recently published version (not pinned)."""
        with self.lock:
            if self._latest is None:
                raise VersioningError("no version has been published yet")
            return self._latest

    def latest_instance(self) -> DatabaseInstance:
        """The latest published instance (read-only).

        From a writer's perspective this is the *pre-publication* state:
        answer maintenance joins an update's deletion delta against it,
        because the removed facts are still present there (and never in the
        working instance the update already mutated).
        """
        return self.latest().instance

    def pin(self, version: Optional[int] = None) -> InstanceVersion:
        """Pin (and return) ``version``, or the latest when ``None``.

        A pinned version survives garbage collection until every pin is
        released with :meth:`unpin`.
        """
        with self.lock:
            if version is None:
                pinned = self._latest
                if pinned is None:
                    raise VersioningError("no version has been published yet")
            else:
                pinned = self._versions.get(version)
                if pinned is None:
                    raise VersioningError(
                        f"version {version} is not live (it was never "
                        f"published, or was garbage-collected); live "
                        f"versions: {sorted(self._versions)}")
            pinned.pins += 1
            return pinned

    def unpin(self, pinned: InstanceVersion) -> None:
        """Release one pin; collects the version once fully unpinned."""
        with self.lock:
            if pinned.pins <= 0:
                raise VersioningError(
                    f"version {pinned.version} is not pinned")
            pinned.pins -= 1
            self._collect_locked()

    def read(self, version: Optional[int] = None) -> "ReadTransaction":
        """Open a :class:`ReadTransaction` pinning one version."""
        return ReadTransaction(self, version=version)

    # -- garbage collection ----------------------------------------------------

    def _collect_locked(self) -> int:
        doomed = [key for key, held in self._versions.items()
                  if held.pins == 0 and held is not self._latest]
        for key in doomed:
            del self._versions[key]
        self.collected += len(doomed)
        return len(doomed)

    def collect(self) -> int:
        """Drop every unpinned, non-latest version; return how many."""
        with self.lock:
            return self._collect_locked()

    def live_versions(self) -> List[int]:
        """Version numbers currently retained (latest and/or pinned)."""
        with self.lock:
            return sorted(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self.lock:
            latest = self._latest.version if self._latest is not None else None
            return (f"VersionStore(live={sorted(self._versions)}, "
                    f"latest={latest}, published={self.published}, "
                    f"collected={self.collected})")


class ReadTransaction:
    """Pins one published version for a consistent sequence of reads.

    Usable as a context manager.  When opened through
    :meth:`QuerySession.read`, the transaction also answers queries — every
    answer is evaluated against (or cached for) the pinned version, so a
    transaction never observes two different versions ("no torn reads"),
    no matter how many updates are published while it is open.
    """

    def __init__(self, store: VersionStore, session=None,
                 version: Optional[int] = None):
        self._store = store
        self._session = session
        self._pinned: Optional[InstanceVersion] = store.pin(version)

    @property
    def pinned(self) -> InstanceVersion:
        if self._pinned is None:
            raise VersioningError("read transaction is already closed")
        return self._pinned

    @property
    def version(self) -> int:
        """The pinned version number."""
        return self.pinned.version

    @property
    def instance(self) -> DatabaseInstance:
        """The pinned instance (read-only)."""
        return self.pinned.instance

    # -- answering (when opened through a QuerySession) ------------------------

    def answers(self, query, allow_nulls: bool = False):
        """Answers of ``query`` against the pinned version."""
        return self._require_session()._answers_at(self.pinned, query,
                                                   allow_nulls=allow_nulls)

    def holds(self, query) -> bool:
        """Boolean answer of ``query`` against the pinned version."""
        return self._require_session()._holds_at(self.pinned, query)

    def _require_session(self):
        if self._session is None:
            raise VersioningError(
                "this read transaction pins an instance version but is not "
                "bound to a QuerySession; open it with session.read() to "
                "answer queries through it")
        return self._session

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the pin (idempotent)."""
        if self._pinned is not None:
            pinned, self._pinned = self._pinned, None
            self._store.unpin(pinned)

    def __enter__(self) -> "ReadTransaction":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._pinned is None else f"v{self._pinned.version}"
        return f"ReadTransaction({state})"
