"""Clean (quality) query answering: rewriting ``Q`` into ``Q^q``.

The second problem of Section V: given a query ``Q`` expressed over the
*original* relations ``S_i``, compute its **quality answers** — the answers
``Q`` would have over the quality versions ``S_i^q``.  The paper solves it
by rewriting ``Q`` into ``Q^q``, the same query with every occurrence of a
relation that has a quality version replaced by that quality version, and
answering ``Q^q`` in the context (which may trigger dimensional navigation
and data generation in the MD ontology).

This module provides the rewriting, the end-to-end clean answering entry
point, and a comparison helper that contrasts the ordinary answers of ``Q``
over ``D`` with its quality answers — the difference is what the quality
assessment of :mod:`repro.quality.assessment` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..datalog.answering import AnswerTuple, evaluate_query
from ..datalog.atoms import Atom
from ..datalog.chase import ChaseResult
from ..datalog.parser import parse_query
from ..datalog.rules import ConjunctiveQuery
from ..relational.instance import DatabaseInstance
from .context import Context

QueryLike = Union[ConjunctiveQuery, str]


def rewrite_query_to_quality(query: QueryLike, context: Context) -> ConjunctiveQuery:
    """Rewrite ``Q`` into ``Q^q`` by renaming relations to their quality versions.

    Only relations for which the context declares a quality version are
    renamed; other predicates (contextual predicates, ontology predicates,
    external sources) are left untouched.
    """
    cq = parse_query(query) if isinstance(query, str) else query
    renamed_atoms = []
    for atom in cq.body:
        if atom.predicate in context.quality_versions:
            renamed_atoms.append(Atom(context.quality_relation_name(atom.predicate),
                                      atom.terms, negated=atom.negated))
        else:
            renamed_atoms.append(atom)
    return ConjunctiveQuery(cq.answer_variables, renamed_atoms, cq.comparisons,
                            name=f"{cq.name}_q")


def quality_answers(context: Context, instance: DatabaseInstance, query: QueryLike,
                    chase_result: Optional[ChaseResult] = None,
                    engine: Optional[str] = None) -> Tuple[AnswerTuple, ...]:
    """Quality (clean) answers of ``query`` over ``instance`` through ``context``.

    The context program is assembled and chased (unless a pre-computed chase
    is supplied), the query is rewritten to its quality version ``Q^q`` and
    evaluated over the chased instance.  Answers containing labeled nulls
    are not returned — they are not certain.  ``engine`` selects the shared
    matching engine for both the chase and the query evaluation
    (``"indexed"``/``"naive"``; ``None`` = the process default).
    """
    if chase_result is None:
        # Thin wrapper over a one-shot quality session; callers answering
        # many queries (or applying updates) should hold the session.
        return context.session(instance, engine=engine,
                               record_provenance=False).quality_answers(query)
    rewritten = rewrite_query_to_quality(query, context)
    return evaluate_query(rewritten, chase_result.instance, allow_nulls=False,
                          engine=engine)


def direct_answers(instance: DatabaseInstance, query: QueryLike) -> Tuple[AnswerTuple, ...]:
    """Answers of ``query`` directly over the instance under assessment.

    This is the "no context" baseline the paper's introduction motivates:
    ``Measurements`` alone cannot discriminate quality tuples, so the direct
    answers over-report.
    """
    cq = parse_query(query) if isinstance(query, str) else query
    return evaluate_query(cq, instance, allow_nulls=True)


@dataclass
class CleanAnswerComparison:
    """Side-by-side comparison of direct answers and quality answers."""

    query: ConjunctiveQuery
    direct: Sequence[AnswerTuple]
    quality: Sequence[AnswerTuple]

    @property
    def spurious(self) -> List[AnswerTuple]:
        """Answers returned directly over ``D`` but not supported by quality data."""
        quality_set = set(self.quality)
        return [row for row in self.direct if row not in quality_set]

    @property
    def precision(self) -> float:
        """Fraction of direct answers that are also quality answers."""
        if not self.direct:
            return 1.0
        quality_set = set(self.quality)
        return sum(1 for row in self.direct if row in quality_set) / len(self.direct)

    def __str__(self) -> str:
        return (f"query {self.query.name}: {len(self.direct)} direct answers, "
                f"{len(self.quality)} quality answers, {len(self.spurious)} spurious "
                f"(precision {self.precision:.2f})")


def compare_answers(context: Context, instance: DatabaseInstance, query: QueryLike,
                    chase_result: Optional[ChaseResult] = None,
                    engine: Optional[str] = None) -> CleanAnswerComparison:
    """Compute direct and quality answers of ``query`` and compare them."""
    cq = parse_query(query) if isinstance(query, str) else query
    return CleanAnswerComparison(
        query=cq,
        direct=direct_answers(instance, cq),
        quality=quality_answers(context, instance, cq, chase_result=chase_result,
                                engine=engine),
    )
