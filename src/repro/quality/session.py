"""Quality-assessment sessions: keep quality versions materialized.

A :class:`QualitySession` is the session-shaped counterpart of the one-shot
:class:`~repro.quality.context.Context` methods: the assembled context
program is chased **once** into a
:class:`~repro.engine.session.MaterializedProgram`, and then

* quality versions stay materialized and are re-extracted only for
  relations an update actually touched;
* per-relation assessments are cached and re-computed only when either the
  assessed relation or its quality version changed;
* quality (clean) query answering caches the ``Q -> Q^q`` rewriting per
  query and evaluates through a :class:`~repro.engine.session.QuerySession`
  (cached parse + join plan), so quality-version queries ride the same
  counting-based answer maintenance as plain queries: an update moves the
  cached quality answers by its fact delta instead of re-running the
  rewritten join (``maintain_answers=False`` restores pure
  predicate-level invalidation);
* :meth:`add_facts` / :meth:`retract_facts` apply an update to the instance
  under assessment (or to any other EDB relation of the context program —
  external sources, dimensional data) and maintain the materialization
  incrementally through the delta-driven chase.

Every update returns the underlying
:class:`~repro.engine.session.UpdateResult`, whose ``changed_predicates``
drives the dirty tracking.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Set, Union

from ..datalog.chase import ChaseResult
from ..engine.session import (AnswerTuple, BatchAnswers, MaterializedProgram,
                              QueryLike, QuerySession, UpdateResult)
from ..engine.stats import EngineStats
from ..engine.versioning import ReadTransaction
from ..relational.instance import DatabaseInstance, Relation
from .assessment import DatabaseAssessment, assess_database
from .cleaning import rewrite_query_to_quality
from .context import Context


class QualitySession:
    """A context materialized against one instance, updatable in deltas."""

    def __init__(self, context: Context, instance: DatabaseInstance,
                 engine: Optional[str] = None, max_steps: int = 100_000,
                 record_provenance: bool = True,
                 maintain_answers: bool = True):
        self.context = context
        #: private copy of the instance under assessment, kept in sync with
        #: the materialization across updates
        self.instance = instance.copy()
        self.materialized = MaterializedProgram(
            context.assemble(self.instance), engine=engine, max_steps=max_steps,
            record_provenance=record_provenance)
        self.query_session = QuerySession(self.materialized,
                                          maintain_answers=maintain_answers)
        #: cache counters of this session's quality-layer caches (the chase
        #: and matching work is counted by ``materialized.stats``)
        self.stats = EngineStats(engine=self.materialized.engine)
        self._rewritten: Dict[str, object] = {}
        self._versions: Dict[str, Relation] = {}
        self._last_assessment: Optional[DatabaseAssessment] = None
        self._dirty_versions: Set[str] = set(context.quality_versions)
        self._dirty_assessments: Set[str] = set(context.quality_versions)

    # -- materialization state ----------------------------------------------

    def chase_result(self) -> ChaseResult:
        """The live chase result (for legacy ``chase_result=`` parameters)."""
        return self.materialized.result

    def read(self, version: Optional[int] = None) -> ReadTransaction:
        """A read transaction pinning one published materialization version.

        Quality-version extraction and clean query answering both run
        against published versions, so readers holding a transaction keep a
        consistent view while updates publish newer versions.
        """
        return self.query_session.read(version)

    def quality_version(self, relation: str) -> Relation:
        """The (cached) quality version of one assessed relation."""
        if relation in self._dirty_versions or relation not in self._versions:
            self.stats.cache_misses += 1
            # Extract from the latest *published* version, not the working
            # instance a concurrent update may be mutating.
            chased = self.materialized.versions.latest().instance
            self._versions[relation] = self.context.materialize_quality_version(
                chased, self.instance, relation)
            self._dirty_versions.discard(relation)
            self._dirty_assessments.add(relation)
        else:
            self.stats.cache_hits += 1
        return self._versions[relation]

    def quality_versions(self) -> Dict[str, Relation]:
        """Every declared quality version (re-extracting only stale ones)."""
        return {relation: self.quality_version(relation)
                for relation in sorted(self.context.quality_versions)}

    # -- assessment ---------------------------------------------------------

    def assess(self) -> DatabaseAssessment:
        """Assess every relation, re-computing only what an update touched.

        Partial re-assessment is delegated to
        :func:`~repro.quality.assessment.assess_database`: the previous
        assessment and the dirty-relation set tell it which
        :class:`~repro.quality.assessment.RelationAssessment` objects can be
        reused as-is.
        """
        versions = self.quality_versions()  # refreshes stale versions first
        previous = self._last_assessment
        changed = set(self._dirty_assessments) if previous is not None else None
        if previous is None:
            self.stats.cache_misses += len(versions)
        else:
            recomputed = sum(1 for relation in versions if relation in changed)
            self.stats.cache_misses += recomputed
            self.stats.cache_hits += len(versions) - recomputed
        assessment = assess_database(self.instance, versions,
                                     previous=previous, changed=changed)
        self._last_assessment = assessment
        self._dirty_assessments.clear()
        return assessment

    # -- clean query answering ----------------------------------------------

    def quality_answers(self, query: QueryLike) -> Sequence[AnswerTuple]:
        """Quality answers of ``query`` (rewriting cached per query text).

        Answers are an immutable tuple served from the underlying query
        session's maintained cache; updates move them by delta rather than
        invalidating them (see :mod:`repro.engine.session`).
        """
        key = query if isinstance(query, str) else str(query)
        rewritten = self._rewritten.get(key)
        if rewritten is None:
            self.stats.cache_misses += 1
            rewritten = rewrite_query_to_quality(query, self.context)
            self._rewritten[key] = rewritten
        else:
            self.stats.cache_hits += 1
        return self.query_session.answers(rewritten)

    def answer_many(self, queries: Sequence[QueryLike]) -> BatchAnswers:
        """Quality answers for a whole batch, with the batch's stats delta."""
        before = self.query_session.stats.snapshot()
        answers = [self.quality_answers(query) for query in queries]
        return BatchAnswers(answers=answers,
                            stats=self.query_session.stats.delta(before))

    # -- persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path],
             meta: Optional[Dict] = None) -> Path:
        """Snapshot the materialized context *and* the instance under
        assessment to ``path`` (one file, restorable with :meth:`load`).

        ``meta`` rides along in the snapshot payload exactly as for
        :meth:`MaterializedProgram.save` — the serving daemon records its
        write-ahead-log position there."""
        from ..engine.snapshot import save_program
        with self.materialized._write_lock:  # never serialize mid-update
            return save_program(self.materialized, path,
                                extras={"assessment": self.instance},
                                meta=meta)

    @classmethod
    def load(cls, context: Context, path: Union[str, Path],
             engine: Optional[str] = None) -> "QualitySession":
        """Restore a :meth:`save`-d quality session without re-chasing.

        The context is re-assembled against the persisted instance under
        assessment and verified against the snapshot's program hash, so a
        session restored against a changed context specification is
        rejected (:class:`~repro.errors.SnapshotMismatchError`) instead of
        silently assessing with stale rules.
        """
        from ..engine.snapshot import load_extras, load_program, read_document
        from ..errors import SnapshotFormatError
        document = read_document(path)
        extras = load_extras(path, document=document)
        if "assessment" not in extras:
            raise SnapshotFormatError(
                f"snapshot {path} has no instance under assessment; it was "
                "saved by MaterializedProgram.save, not QualitySession.save "
                "— restore it with MaterializedProgram.load instead")
        instance = extras["assessment"]
        program = context.assemble(instance)
        # check_data=False: the session may have absorbed updates to *any*
        # EDB relation (external sources, dimensional data), so its
        # persisted EDB legitimately diverges from the freshly assembled
        # context data — the snapshot is the authority for the data, the
        # program hash still rejects a changed context specification.
        materialized = load_program(path, program=program, engine=engine,
                                    document=document, check_data=False)
        session = cls.__new__(cls)
        session.context = context
        session.instance = instance
        session.materialized = materialized
        session.query_session = QuerySession(materialized)
        session.stats = EngineStats(engine=materialized.engine)
        session._rewritten = {}
        session._versions = {}
        session._last_assessment = None
        session._dirty_versions = set(context.quality_versions)
        session._dirty_assessments = set(context.quality_versions)
        return session

    # -- incremental updates ------------------------------------------------

    def add_facts(self, relation: str,
                  rows: Iterable[Sequence]) -> UpdateResult:
        """Insert rows into an EDB relation and refresh the materialization."""
        update = self.materialized.add_facts(
            (relation, tuple(row)) for row in rows)
        self._apply_locally(update, retract=False)
        self._mark_dirty(update)
        return update

    def retract_facts(self, relation: str,
                      rows: Iterable[Sequence]) -> UpdateResult:
        """Remove rows from an EDB relation and refresh the materialization."""
        update = self.materialized.retract_facts(
            (relation, tuple(row)) for row in rows)
        self._apply_locally(update, retract=True)
        self._mark_dirty(update)
        return update

    def _apply_locally(self, update: UpdateResult, retract: bool) -> None:
        """Mirror applied EDB changes into the instance under assessment."""
        for predicate, row in update.applied:
            if not self.instance.has_relation(predicate):
                continue  # contextual/ontology relation, not under assessment
            if retract:
                self.instance.relation(predicate).discard(row)
            else:
                self.instance.add(predicate, row)

    def _mark_dirty(self, update: UpdateResult) -> None:
        if update.strategy == "noop":
            return
        applied_predicates = {predicate for predicate, _ in update.applied}
        for assessed in self.context.quality_versions:
            quality_name = self.context.quality_relation_name(assessed)
            if update.touched(quality_name):
                self._dirty_versions.add(assessed)
            if assessed in applied_predicates or update.touched(assessed):
                self._dirty_assessments.add(assessed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QualitySession({self.context.name!r}, "
                f"version={self.materialized.version}, "
                f"dirty={sorted(self._dirty_versions)})")
