"""Quality predicates and contextual predicates.

In the contextual framework of Section V (Fig. 2), the context ``C``
contains, besides copies of the relations under assessment and the MD
ontology ``M``:

* **contextual predicates** — auxiliary relations defined by rules over the
  context (``Measurement'``, ``TakenByNurse``, ``TakenWithTherm`` in
  Example 7), possibly triggering dimensional navigation through the
  ontology's categorical relations;
* **quality predicates** ``P_i`` — contextual predicates that encode a
  single quality requirement (e.g. "taken by a certified nurse", "taken
  with a thermometer of brand B1").

Both are ordinary defined predicates; the distinction is bookkeeping that
helps reporting (which quality requirement filtered which tuples), so this
module only wraps a defining rule set with a role tag and a description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..datalog.parser import parse_rule
from ..datalog.rules import TGD
from ..errors import QualityError

CONTEXTUAL = "contextual"
QUALITY = "quality"

RuleLike = Union[TGD, str]


def _coerce_rules(rules: Sequence[RuleLike]) -> Tuple[TGD, ...]:
    coerced: List[TGD] = []
    for rule in rules:
        parsed = parse_rule(rule) if isinstance(rule, str) else rule
        if not isinstance(parsed, TGD):
            raise QualityError(
                f"contextual/quality predicates are defined by TGDs (rules), got "
                f"{type(parsed).__name__}")
        coerced.append(parsed)
    return tuple(coerced)


@dataclass
class ContextualPredicate:
    """A predicate defined inside the context by one or more rules."""

    name: str
    rules: Tuple[TGD, ...]
    role: str = CONTEXTUAL
    description: str = ""

    def __init__(self, name: str, rules: Sequence[RuleLike], role: str = CONTEXTUAL,
                 description: str = ""):
        if role not in (CONTEXTUAL, QUALITY):
            raise QualityError(f"unknown predicate role {role!r}")
        if not name:
            raise QualityError("a contextual predicate needs a name")
        self.name = name
        self.rules = _coerce_rules(rules)
        self.role = role
        self.description = description
        if not self.rules:
            raise QualityError(f"contextual predicate {name!r} needs at least one defining rule")
        for rule in self.rules:
            if name not in rule.head_predicates():
                raise QualityError(
                    f"every defining rule of {name!r} must have {name!r} in its head; "
                    f"got {rule}")

    def is_quality(self) -> bool:
        """``True`` when the predicate encodes a quality requirement ``P_i``."""
        return self.role == QUALITY

    def __str__(self) -> str:
        tag = "P" if self.is_quality() else "C"
        return f"[{tag}] {self.name}: " + "; ".join(str(rule) for rule in self.rules)


def quality_predicate(name: str, rules: Sequence[RuleLike],
                      description: str = "") -> ContextualPredicate:
    """Convenience constructor for a quality predicate ``P_i``."""
    return ContextualPredicate(name, rules, role=QUALITY, description=description)


def contextual_predicate(name: str, rules: Sequence[RuleLike],
                         description: str = "") -> ContextualPredicate:
    """Convenience constructor for an ordinary contextual predicate."""
    return ContextualPredicate(name, rules, role=CONTEXTUAL, description=description)
