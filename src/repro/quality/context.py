"""Contexts for multidimensional data-quality assessment (Section V, Fig. 2).

A :class:`Context` is the formal theory into which an instance ``D`` under
assessment is mapped.  It bundles

* **schema mappings** ``D → C``: every relation of ``D`` gets a contextual
  copy (``Measurements`` ↦ ``Measurements_c``), possibly renamed — the
  "footprint of a broader contextual relation" of the paper;
* an optional **MD ontology** ``M`` providing the dimensional data,
  dimensional rules and constraints;
* **external sources** ``E_i``: extra relations with data the context can
  use (nurse rosters, device registries, ...);
* **contextual and quality predicates** (``TakenByNurse``, ``TakenWithTherm``);
* **quality-version specifications** ``S_i^q``.

Assembling a context against a concrete instance ``D`` produces one
Datalog± program containing all of the above; chasing it materializes the
quality versions, and quality (clean) query answering rewrites a query over
the original relations into one over their quality versions
(:mod:`repro.quality.cleaning`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.chase import ChaseResult, chase
from ..datalog.program import DatalogProgram
from ..datalog.rules import TGD
from ..datalog.terms import Variable
from ..errors import ContextError
from ..ontology.mdontology import MDOntology
from ..relational.instance import DatabaseInstance, Relation
from ..relational.schema import RelationSchema
from .predicates import CONTEXTUAL, QUALITY, ContextualPredicate, RuleLike
from .versions import QualityVersionSpec, default_quality_name


def default_context_name(relation_name: str) -> str:
    """Default name of the contextual copy of a relation."""
    return f"{relation_name}_c"


class RelationMapping:
    """Mapping of one original relation into its contextual copy."""

    def __init__(self, source: str, target: str, arity: int):
        self.source = source
        self.target = target
        self.arity = arity

    def copy_rule(self) -> TGD:
        """The rule ``target(x̄) ← source(x̄)`` that transfers the data."""
        variables = [Variable(f"X{i}") for i in range(self.arity)]
        return TGD([Atom(self.target, variables)], [Atom(self.source, variables)],
                   label=f"map:{self.source}->{self.target}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationMapping({self.source!r} -> {self.target!r}, arity={self.arity})"


class Context:
    """A context ``C`` for assessing the quality of a database instance."""

    def __init__(self, ontology: Optional[MDOntology] = None, name: str = "context"):
        self.name = name
        self.ontology = ontology
        self.mappings: Dict[str, RelationMapping] = {}
        self.external_sources: DatabaseInstance = DatabaseInstance()
        self.predicates: List[ContextualPredicate] = []
        self.quality_versions: Dict[str, QualityVersionSpec] = {}
        self.extra_rules: List[TGD] = []

    # -- construction ------------------------------------------------------------

    def map_relation(self, source: str, arity: int,
                     target: Optional[str] = None) -> RelationMapping:
        """Declare that relation ``source`` of ``D`` is mapped into the context.

        ``target`` defaults to ``<source>_c``.  The mapping becomes a copy
        rule of the assembled program, so the contextual copy always reflects
        the instance under assessment.
        """
        mapping = RelationMapping(source, target or default_context_name(source), arity)
        self.mappings[source] = mapping
        return mapping

    def contextual_name(self, source: str) -> str:
        """The contextual copy name of an original relation."""
        try:
            return self.mappings[source].target
        except KeyError:
            raise ContextError(
                f"relation {source!r} is not mapped into the context; "
                f"mapped relations: {sorted(self.mappings)}") from None

    def add_external_source(self, name: str, attributes: Sequence[str],
                            rows: Iterable[Sequence] = ()) -> Relation:
        """Register an external source ``E_i`` with (optional) data."""
        relation = self.external_sources.declare(name, attributes)
        relation.add_all(rows)
        return relation

    def add_predicate(self, predicate: ContextualPredicate) -> ContextualPredicate:
        """Add a contextual or quality predicate."""
        self.predicates.append(predicate)
        return predicate

    def add_contextual_predicate(self, name: str, rules: Sequence[RuleLike],
                                 description: str = "") -> ContextualPredicate:
        """Declare a contextual predicate from its defining rules."""
        return self.add_predicate(ContextualPredicate(name, rules, role=CONTEXTUAL,
                                                      description=description))

    def add_quality_predicate(self, name: str, rules: Sequence[RuleLike],
                              description: str = "") -> ContextualPredicate:
        """Declare a quality predicate ``P_i`` from its defining rules."""
        return self.add_predicate(ContextualPredicate(name, rules, role=QUALITY,
                                                      description=description))

    def add_rule(self, rule: RuleLike) -> TGD:
        """Add a free-standing contextual rule (not tied to a named predicate)."""
        from ..datalog.parser import parse_rule
        parsed = parse_rule(rule) if isinstance(rule, str) else rule
        if not isinstance(parsed, TGD):
            raise ContextError(f"contextual rules must be TGDs, got {type(parsed).__name__}")
        self.extra_rules.append(parsed)
        return parsed

    def define_quality_version(self, relation: str, rules: Sequence[RuleLike],
                               quality_relation: Optional[str] = None,
                               description: str = "") -> QualityVersionSpec:
        """Specify the quality version ``S^q`` of an original relation."""
        spec = QualityVersionSpec(relation, rules, quality_relation=quality_relation,
                                  description=description)
        self.quality_versions[relation] = spec
        return spec

    def quality_relation_name(self, relation: str) -> str:
        """Name of the quality version of ``relation`` (default ``<relation>_q``)."""
        spec = self.quality_versions.get(relation)
        return spec.quality_relation if spec is not None else default_quality_name(relation)

    def quality_predicates(self) -> List[ContextualPredicate]:
        """The declared quality predicates ``P_i``."""
        return [predicate for predicate in self.predicates if predicate.is_quality()]

    # -- assembly ------------------------------------------------------------------

    def assemble(self, instance: DatabaseInstance) -> DatalogProgram:
        """Build the full Datalog± program for assessing ``instance``.

        The program contains (1) the MD ontology's compiled program (facts,
        referential constraints, dimensional rules and constraints), (2) the
        original instance plus the copy rules of the schema mappings, (3) the
        external sources, (4) the contextual/quality predicate definitions,
        and (5) the quality-version rules.
        """
        for source in self.mappings:
            if not instance.has_relation(source):
                raise ContextError(
                    f"the instance under assessment has no relation {source!r} "
                    "required by a context mapping")

        if self.ontology is not None:
            base = self.ontology.program()
            program = base.copy()
        else:
            program = DatalogProgram()

        # Original instance and its contextual copies.
        for relation in instance:
            target = program.database.declare(relation.schema.name, relation.schema.attributes)
            target.add_all(relation)
        for mapping in self.mappings.values():
            program.add_tgd(mapping.copy_rule())

        # External sources.
        for relation in self.external_sources:
            target = program.database.declare(relation.schema.name, relation.schema.attributes)
            target.add_all(relation)

        # Contextual and quality predicates, free rules, quality versions.
        for predicate in self.predicates:
            for rule in predicate.rules:
                program.add_tgd(rule)
        for rule in self.extra_rules:
            program.add_tgd(rule)
        for spec in self.quality_versions.values():
            for rule in spec.rules:
                program.add_tgd(rule)

        program.ensure_relations()
        return program

    # -- evaluation ------------------------------------------------------------------

    def chase(self, instance: DatabaseInstance, **chase_options) -> ChaseResult:
        """Assemble and chase the context program for ``instance``.

        ``chase_options`` are forwarded to :func:`repro.datalog.chase.chase`
        — including ``engine="indexed"``/``"naive"`` to pick the matching
        engine; the returned result carries the
        :class:`~repro.engine.stats.EngineStats` of the run.
        """
        return chase(self.assemble(instance), **chase_options)

    def session(self, instance: DatabaseInstance, engine: Optional[str] = None,
                max_steps: int = 100_000,
                record_provenance: bool = True) -> "QualitySession":
        """Open a :class:`~repro.quality.session.QualitySession` for ``instance``.

        The session keeps the assembled context program materialized across
        queries and incremental updates — the "chase once, answer many,
        update in deltas" posture; the one-shot methods below are thin
        wrappers over a fresh session (and skip provenance recording, which
        only incremental retraction needs).
        """
        from .session import QualitySession
        return QualitySession(self, instance, engine=engine, max_steps=max_steps,
                              record_provenance=record_provenance)

    def materialize_quality_version(self, chased: DatabaseInstance,
                                    instance: DatabaseInstance,
                                    relation: str) -> Relation:
        """Extract ``relation``'s quality version from a chased instance."""
        if relation not in self.quality_versions:
            raise ContextError(
                f"no quality version has been defined for relation {relation!r}")
        name = self.quality_relation_name(relation)
        materialized = chased.relation(name)
        original_schema = instance.relation(relation).schema
        if materialized.schema.arity != original_schema.arity:
            raise ContextError(
                f"quality version {name!r} has arity {materialized.schema.arity}, "
                f"expected {original_schema.arity} (same schema as {relation!r})")
        renamed = Relation(RelationSchema(name, original_schema.attributes))
        renamed.add_all(materialized)
        return renamed

    def quality_version(self, instance: DatabaseInstance, relation: str,
                        chase_result: Optional[ChaseResult] = None) -> Relation:
        """Materialize the quality version ``relation^q`` for ``instance``."""
        if relation not in self.quality_versions:
            raise ContextError(
                f"no quality version has been defined for relation {relation!r}")
        result = chase_result if chase_result is not None else self.chase(
            instance, check_constraints=False)
        return self.materialize_quality_version(result.instance, instance, relation)

    def quality_versions_for(self, instance: DatabaseInstance,
                             chase_result: Optional[ChaseResult] = None
                             ) -> Dict[str, Relation]:
        """Materialize every declared quality version (shared chase).

        With no pre-computed ``chase_result`` this is a thin wrapper over a
        one-shot :meth:`session`.
        """
        if chase_result is None:
            return self.session(instance,
                                record_provenance=False).quality_versions()
        return {
            relation: self.quality_version(instance, relation,
                                           chase_result=chase_result)
            for relation in self.quality_versions
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Context({self.name!r}, mappings={sorted(self.mappings)}, "
                f"predicates={[p.name for p in self.predicates]}, "
                f"quality_versions={sorted(self.quality_versions)})")
