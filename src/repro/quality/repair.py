"""Constraint-driven cleaning of categorical relations.

Example 1 of the paper sketches a cleaning action beyond quality *query
answering*: the inter-dimensional closure constraint implies that "the third
tuple in ``PatientWard`` should be discarded".  This module implements that
action as a simple, deterministic repair procedure in the spirit of database
repairs (Bertossi, 2011), restricted to denial constraints:

* find every violation of the ontology's negative constraints (including the
  auto-generated referential constraints of form (1));
* for each violation, remove one offending tuple from an *extensional*
  categorical relation — by default the tuple of the first categorical atom
  of the constraint body that matches an extensional fact;
* iterate until no violation remains (denial constraints are monotone, so
  removing tuples never introduces new violations; the loop is a safeguard
  against overlapping witnesses).

The result is a **repair report**: which tuples were removed, for which
constraint, plus the cleaned MD instance.  EGD conflicts are reported but
not repaired automatically (choosing which value to keep is application
dependent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..datalog.chase import ChaseResult
from ..datalog.rules import NegativeConstraint
from ..datalog.terms import Variable
from ..datalog.unify import apply_to_atom
from ..errors import QualityError
from ..ontology.mdontology import MDOntology
from ..relational.values import Null


@dataclass
class RemovedTuple:
    """One tuple removed by the repair procedure."""

    relation: str
    row: Tuple
    constraint: NegativeConstraint

    def __str__(self) -> str:
        return f"removed {self.relation}{self.row} (violates [{self.constraint}])"


@dataclass
class RepairReport:
    """Outcome of a repair run."""

    removed: List[RemovedTuple] = field(default_factory=list)
    iterations: int = 0
    clean: bool = True

    def removed_from(self, relation: str) -> List[Tuple]:
        """Rows removed from one relation."""
        return [entry.row for entry in self.removed if entry.relation == relation]

    def __str__(self) -> str:
        if not self.removed:
            return "no repairs needed"
        lines = [str(entry) for entry in self.removed]
        lines.append(f"({len(self.removed)} tuples removed in {self.iterations} pass(es))")
        return "\n".join(lines)


def _pick_offending_fact(violation, ontology: MDOntology) -> Optional[Tuple[str, Tuple]]:
    """Choose the extensional categorical fact to remove for one violation."""
    constraint = violation.constraint
    witness = violation.witness
    for atom in constraint.positive_atoms():
        if not ontology.vocabulary.is_categorical(atom.predicate):
            continue
        substitution = {Variable(name): _as_term(value) for name, value in witness.items()}
        grounded = apply_to_atom(substitution, atom)
        if not grounded.is_ground():
            continue
        row = grounded.to_fact_row()
        if any(isinstance(value, Null) for value in row):
            continue
        relation = ontology.md.database
        if relation.has_relation(atom.predicate) and row in relation.relation(atom.predicate):
            return atom.predicate, row
    return None


def _as_term(value):
    from ..datalog.terms import to_term
    return to_term(value)


def repair_md_instance(ontology: MDOntology, max_iterations: int = 10) -> RepairReport:
    """Remove extensional categorical tuples until no denial constraint is violated.

    The ontology's MD instance is modified **in place** (callers that want to
    keep the original should rebuild it); the ontology's caches are
    invalidated so subsequent reasoning sees the cleaned data.
    """
    report = RepairReport()
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        result: ChaseResult = ontology.check_consistency()
        if result.is_consistent:
            report.clean = True
            return report
        progress = False
        for violation in result.violations:
            choice = _pick_offending_fact(violation, ontology)
            if choice is None:
                continue
            relation_name, row = choice
            if ontology.md.database.relation(relation_name).discard(row):
                report.removed.append(RemovedTuple(relation_name, row, violation.constraint))
                progress = True
        # Rebuild the compiled program so the removal is visible.
        ontology._compiled = ontology.compiler.compile(ontology.md)
        ontology._invalidate()
        if not progress:
            report.clean = False
            return report
    report.clean = ontology.check_consistency().is_consistent
    if not report.clean:
        raise QualityError(
            f"repair did not converge within {max_iterations} iterations")
    return report
