"""Contextual, multidimensional data-quality assessment (Section V).

Contexts embed an MD ontology, contextual and quality predicates, and
quality-version specifications; clean query answering rewrites queries over
the original relations into queries over their quality versions; assessment
quantifies how far an instance departs from its quality version.
"""

from .predicates import (CONTEXTUAL, QUALITY, ContextualPredicate, contextual_predicate,
                         quality_predicate)
from .versions import QualityVersionSpec, default_quality_name
from .context import Context, RelationMapping, default_context_name
from .cleaning import (CleanAnswerComparison, compare_answers, direct_answers,
                       quality_answers, rewrite_query_to_quality)
from .assessment import (DatabaseAssessment, RelationAssessment, assess_database,
                         assess_relation)
from .repair import RemovedTuple, RepairReport, repair_md_instance
from .session import QualitySession

__all__ = [
    "QualitySession",
    "RemovedTuple",
    "RepairReport",
    "repair_md_instance",
    "CONTEXTUAL",
    "QUALITY",
    "ContextualPredicate",
    "contextual_predicate",
    "quality_predicate",
    "QualityVersionSpec",
    "default_quality_name",
    "Context",
    "RelationMapping",
    "default_context_name",
    "CleanAnswerComparison",
    "compare_answers",
    "direct_answers",
    "quality_answers",
    "rewrite_query_to_quality",
    "DatabaseAssessment",
    "RelationAssessment",
    "assess_database",
    "assess_relation",
]
