"""Quality-version specifications ``S_i^q``.

Section V defines, for every relation ``S_i`` of the instance under
assessment, a *quality version* ``S_i^q`` — a predicate whose extension
contains exactly the tuples of (the contextual image of) ``S_i`` that meet
the quality requirements.  In Example 7::

    Measurement'(t,p,v,y,b) ← Measurement_c(t,p,v), TakenByNurse(t,p,n,y),
                              TakenWithTherm(t,p,b)
    Measurement^q(t,p,v)    ← Measurement'(t,p,v,y,b), y = 'certified', b = 'B1'

A :class:`QualityVersionSpec` bundles the target relation name, the name of
its quality version and the defining rules.  Constant-equality conditions
(``y = 'certified'``) are expressed by simply using the constant in the rule
body, which the parser supports directly; the spec also accepts a
convenience ``conditions`` mapping that rewrites selected variables of the
rule head into constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..datalog.parser import parse_rule
from ..datalog.rules import TGD
from ..errors import QualityVersionError

RuleLike = Union[TGD, str]


def default_quality_name(relation_name: str) -> str:
    """The default name of the quality version of ``relation_name``."""
    return f"{relation_name}_q"


@dataclass
class QualityVersionSpec:
    """Specification of the quality version of one relation."""

    relation: str
    quality_relation: str
    rules: Tuple[TGD, ...]
    description: str = ""

    def __init__(self, relation: str, rules: Sequence[RuleLike],
                 quality_relation: Optional[str] = None, description: str = ""):
        if not relation:
            raise QualityVersionError("a quality version needs the name of the original relation")
        self.relation = relation
        self.quality_relation = quality_relation or default_quality_name(relation)
        self.description = description
        coerced: List[TGD] = []
        for rule in rules:
            parsed = parse_rule(rule) if isinstance(rule, str) else rule
            if not isinstance(parsed, TGD):
                raise QualityVersionError(
                    f"quality versions are defined by TGDs (rules), got "
                    f"{type(parsed).__name__}")
            coerced.append(parsed)
        self.rules = tuple(coerced)
        if not self.rules:
            raise QualityVersionError(
                f"quality version of {relation!r} needs at least one defining rule")
        for rule in self.rules:
            if self.quality_relation not in rule.head_predicates():
                raise QualityVersionError(
                    f"every defining rule of {self.quality_relation!r} must have it in the "
                    f"head; got {rule}")
            if rule.is_existential():
                raise QualityVersionError(
                    f"quality-version rules must not invent values (no existential "
                    f"variables); got {rule}")

    def __str__(self) -> str:
        return f"{self.quality_relation} (quality version of {self.relation}): " + \
            "; ".join(str(rule) for rule in self.rules)
