"""The Hospital and Time dimensions of the paper's running example (Fig. 1).

* **Hospital**: ``Ward → Unit → Institution → AllHospital``, with wards
  W1–W4, units Standard / Intensive / Terminal and institutions H1 / H2.
  W1 and W2 belong to the Standard unit (which is why, by the institutional
  guideline, their temperature measurements are taken with brand-B1
  thermometers), W3 to Intensive and W4 to Terminal.
* **Time**: ``Time → Day → Month → Year → AllTime``; the Time (instant)
  members are the measurement timestamps of Table I.

Member labels follow the paper (``W1``, ``Standard``, ``Sep/5``,
``Sep/5-12:10``); month members use the sortable form ``2005-09`` so that
"after August 2005" can also be expressed with a comparison when desired.
"""

from __future__ import annotations

from ..md.builder import DimensionBuilder
from ..md.instance import DimensionInstance

#: Wards and the unit each belongs to.
WARD_TO_UNIT = {
    "W1": "Standard",
    "W2": "Standard",
    "W3": "Intensive",
    "W4": "Terminal",
}

#: Units and the institution each belongs to.
UNIT_TO_INSTITUTION = {
    "Standard": "H1",
    "Intensive": "H1",
    "Terminal": "H2",
}

#: Measurement timestamps (Table I) and the day each belongs to.
TIME_TO_DAY = {
    "Sep/5-12:10": "Sep/5",
    "Sep/6-11:50": "Sep/6",
    "Sep/7-12:15": "Sep/7",
    "Sep/9-12:00": "Sep/9",
    "Sep/6-11:05": "Sep/6",
    "Sep/5-12:05": "Sep/5",
}

#: Days and the month each belongs to (sortable month labels).
DAY_TO_MONTH = {
    "Sep/5": "2005-09",
    "Sep/6": "2005-09",
    "Sep/7": "2005-09",
    "Sep/9": "2005-09",
    "Oct/5": "2005-10",
    "Aug/20": "2005-08",
}

#: Months and the year each belongs to.
MONTH_TO_YEAR = {
    "2005-08": "2005",
    "2005-09": "2005",
    "2005-10": "2005",
}


def build_hospital_dimension() -> DimensionInstance:
    """Build the Hospital dimension instance of Fig. 1 (left)."""
    builder = (DimensionBuilder("Hospital")
               .category_chain("Ward", "Unit", "Institution", "AllHospital"))
    for ward, unit in WARD_TO_UNIT.items():
        builder.member_edge("Ward", ward, "Unit", unit)
    for unit, institution in UNIT_TO_INSTITUTION.items():
        builder.member_edge("Unit", unit, "Institution", institution)
    for institution in sorted(set(UNIT_TO_INSTITUTION.values())):
        builder.member_edge("Institution", institution, "AllHospital", "allHospital")
    return builder.build()


def build_time_dimension() -> DimensionInstance:
    """Build the Time dimension instance of Fig. 1 (right)."""
    builder = (DimensionBuilder("Time")
               .category_chain("Time", "Day", "Month", "Year", "AllTime"))
    for instant, day in TIME_TO_DAY.items():
        builder.member_edge("Time", instant, "Day", day)
    for day, month in DAY_TO_MONTH.items():
        builder.member_edge("Day", day, "Month", month)
    for month, year in MONTH_TO_YEAR.items():
        builder.member_edge("Month", month, "Year", year)
    builder.member_edge("Year", "2005", "AllTime", "allTime")
    return builder.build()
