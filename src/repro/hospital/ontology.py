"""The hospital MD ontology: dimensional rules and constraints of Examples 4–6.

Rule and constraint numbers refer to the paper:

* **(6)** — EGD: all thermometers used in a unit are of the same type;
* **(7)** — upward navigation: ``PatientUnit`` is generated from
  ``PatientWard`` by rolling Ward up to Unit;
* **(8)** — downward navigation: ``Shifts`` is generated from
  ``WorkingSchedules`` by drilling Unit down to its wards, with an
  existential (unknown) shift attribute;
* **(9)** — downward navigation with an existential *categorical* variable
  (form (10)): each discharged patient was in exactly one — unknown — unit
  of the institution;
* the **closure constraint** of Example 1 (form (3), inter-dimensional):
  no patient was in the Intensive care unit after August 2005.

The referential constraints of form (1)/(5) are generated automatically by
the ontology compiler.
"""

from __future__ import annotations

from typing import Optional

from ..md.instance import MDInstance
from ..ontology.mdontology import MDOntology
from .data import build_md_instance

#: Rule (7): upward navigation Ward → Unit.
RULE_7_PATIENT_UNIT = (
    "PatientUnit(U, D, P) :- PatientWard(W, D, P), UnitWard(U, W)."
)

#: Rule (8): downward navigation Unit → Ward with an unknown shift.
RULE_8_SHIFTS = (
    "exists Z : Shifts(W, D, N, Z) :- WorkingSchedules(U, D, N, T), UnitWard(U, W)."
)

#: Rule (9) (form (10)): downward navigation with an unknown unit.
RULE_9_DISCHARGE = (
    "exists U : InstitutionUnit(I, U), PatientUnit(U, D, P) :- "
    "DischargePatients(I, D, P)."
)

#: Constraint (6): thermometers within one unit have a single type.
CONSTRAINT_6_THERMOMETER = (
    "T = T2 :- Thermometer(W, T, N), Thermometer(W2, T2, N2), "
    "UnitWard(U, W), UnitWard(U, W2)."
)

#: Example 1's closure constraint, one denial per month after August 2005
#: present in the Time dimension (form (3), inter-dimensional: Hospital+Time).
CLOSURE_CONSTRAINTS = [
    "false :- PatientWard(W, D, P), UnitWard('Intensive', W), MonthDay('2005-09', D).",
    "false :- PatientWard(W, D, P), UnitWard('Intensive', W), MonthDay('2005-10', D).",
]

#: The same closure requirement written with a comparison over sortable
#: month labels ("after August 2005"); used by the constraint experiment.
CLOSURE_CONSTRAINT_COMPARISON = (
    "false :- PatientWard(W, D, P), UnitWard('Intensive', W), MonthDay(M, D), "
    "M > '2005-08'."
)


def build_ontology(md: Optional[MDInstance] = None,
                   include_rule_7: bool = True,
                   include_rule_8: bool = True,
                   include_rule_9: bool = True,
                   include_thermometer_egd: bool = True,
                   include_closure_constraints: bool = False) -> MDOntology:
    """Build the hospital MD ontology.

    ``include_closure_constraints`` is off by default because the paper's
    ``PatientWard`` deliberately contains a tuple violating it (the tuple to
    be discarded); the constraint experiment turns it on to witness the
    violation.
    """
    md = md if md is not None else build_md_instance()
    ontology = MDOntology(md)
    if include_rule_7:
        ontology.add_rule(RULE_7_PATIENT_UNIT, label="rule (7)")
    if include_rule_8:
        ontology.add_rule(RULE_8_SHIFTS, label="rule (8)")
    if include_rule_9 and "DischargePatients" in md.relation_schemas:
        ontology.add_rule(RULE_9_DISCHARGE, label="rule (9)")
    if include_thermometer_egd and "Thermometer" in md.relation_schemas:
        ontology.add_constraint(CONSTRAINT_6_THERMOMETER, label="constraint (6)")
    if include_closure_constraints:
        for index, constraint in enumerate(CLOSURE_CONSTRAINTS, start=1):
            ontology.add_constraint(constraint, label=f"closure constraint #{index}")
    return ontology


def build_upward_only_ontology(md: Optional[MDInstance] = None) -> MDOntology:
    """The upward-navigating fragment (rule (7) only) used for FO rewriting.

    This is the "upward-navigating MD ontology" case of Section IV:
    non-recursive and roll-up only, hence first-order rewritable.
    """
    return build_ontology(md, include_rule_7=True, include_rule_8=False,
                          include_rule_9=False, include_thermometer_egd=False,
                          include_closure_constraints=False)
