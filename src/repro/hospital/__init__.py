"""The paper's running hospital example, packaged as a reusable scenario.

Dimensions of Fig. 1, tables I and III–V, the reconstructed ``PatientWard``
and ``Thermometer`` relations, the dimensional rules (7)–(9) and constraints
of Examples 4–6, and the Example-7 quality context — everything needed to
replay the paper end to end.
"""

from .dimensions import build_hospital_dimension, build_time_dimension
from .data import (DISCHARGE_PATIENTS_ROWS, MEASUREMENTS_QUALITY_ROWS, MEASUREMENTS_ROWS,
                   PATIENT_WARD_ROWS, SHIFTS_ROWS, THERMOMETER_ROWS,
                   WORKING_SCHEDULES_ROWS, build_md_instance, build_measurements_instance)
from .ontology import (CLOSURE_CONSTRAINTS, CLOSURE_CONSTRAINT_COMPARISON,
                       CONSTRAINT_6_THERMOMETER, RULE_7_PATIENT_UNIT, RULE_8_SHIFTS,
                       RULE_9_DISCHARGE, build_ontology, build_upward_only_ontology)
from .scenario import (DOCTOR_QUERY, MARK_SHIFT_QUERY, MARK_SHIFT_W2_QUERY,
                       HospitalScenario)

__all__ = [
    "build_hospital_dimension",
    "build_time_dimension",
    "DISCHARGE_PATIENTS_ROWS",
    "MEASUREMENTS_QUALITY_ROWS",
    "MEASUREMENTS_ROWS",
    "PATIENT_WARD_ROWS",
    "SHIFTS_ROWS",
    "THERMOMETER_ROWS",
    "WORKING_SCHEDULES_ROWS",
    "build_md_instance",
    "build_measurements_instance",
    "CLOSURE_CONSTRAINTS",
    "CLOSURE_CONSTRAINT_COMPARISON",
    "CONSTRAINT_6_THERMOMETER",
    "RULE_7_PATIENT_UNIT",
    "RULE_8_SHIFTS",
    "RULE_9_DISCHARGE",
    "build_ontology",
    "build_upward_only_ontology",
    "DOCTOR_QUERY",
    "MARK_SHIFT_QUERY",
    "MARK_SHIFT_W2_QUERY",
    "HospitalScenario",
]
