"""Table data of the paper's running example (Tables I, III, IV, V and Fig. 1).

The paper gives the contents of ``Measurements`` (Table I), its expected
quality version ``Measurements^q`` (Table II), ``WorkingSchedules``
(Table III), ``Shifts`` (Table IV) and ``DischargePatients`` (Table V)
verbatim; ``PatientWard`` and ``Thermometer`` are described in the narrative
(Examples 1 and 4) and are reconstructed here so that the quality version of
``Measurements`` comes out exactly as Table II:

* Tom Waits is in a Standard-unit ward (W1/W2) on Sep/5 and Sep/6 — those
  measurements were therefore taken with a brand-B1 thermometer and by a
  certified nurse (Helen), so they are the two quality tuples of Table II;
* on Sep/7 and Sep/9 he is in the Terminal-unit ward W4, so those
  measurements do not satisfy the guideline;
* Lou Reed is never in a Standard-unit ward, so none of his measurements
  qualify;
* the ``PatientWard`` tuple placing Lou Reed in the Intensive-care ward W3
  on Sep/6 is the "third tuple" that the inter-dimensional closure
  constraint of Example 1 flags for removal.
"""

from __future__ import annotations

from typing import List, Tuple

from ..md.builder import MDModelBuilder
from ..md.instance import MDInstance
from ..relational.instance import DatabaseInstance
from .dimensions import build_hospital_dimension, build_time_dimension

#: Table I — the relation under quality assessment.
MEASUREMENTS_ROWS: List[Tuple[str, str, float]] = [
    ("Sep/5-12:10", "Tom Waits", 38.2),
    ("Sep/6-11:50", "Tom Waits", 37.1),
    ("Sep/7-12:15", "Tom Waits", 37.7),
    ("Sep/9-12:00", "Tom Waits", 37.0),
    ("Sep/6-11:05", "Lou Reed", 37.5),
    ("Sep/5-12:05", "Lou Reed", 38.0),
]

#: Table II — the expected quality version of Table I.
MEASUREMENTS_QUALITY_ROWS: List[Tuple[str, str, float]] = [
    ("Sep/5-12:10", "Tom Waits", 38.2),
    ("Sep/6-11:50", "Tom Waits", 37.1),
]

#: PatientWard(Ward, Day; Patient) — reconstructed from the narrative.
PATIENT_WARD_ROWS: List[Tuple[str, str, str]] = [
    ("W1", "Sep/5", "Tom Waits"),
    ("W2", "Sep/6", "Tom Waits"),
    ("W3", "Sep/6", "Lou Reed"),     # the tuple flagged by the closure constraint
    ("W4", "Sep/7", "Tom Waits"),
    ("W4", "Sep/9", "Tom Waits"),
    ("W4", "Sep/5", "Lou Reed"),
]

#: Table III — WorkingSchedules(Unit, Day; Nurse, Type).
WORKING_SCHEDULES_ROWS: List[Tuple[str, str, str, str]] = [
    ("Intensive", "Sep/5", "Cathy", "cert."),
    ("Standard", "Sep/5", "Helen", "cert."),
    ("Standard", "Sep/6", "Helen", "cert."),
    ("Terminal", "Sep/5", "Susan", "non-c."),
    ("Standard", "Sep/9", "Mark", "non-c."),
]

#: Table IV — Shifts(Ward, Day; Nurse, Shift).
SHIFTS_ROWS: List[Tuple[str, str, str, str]] = [
    ("W4", "Sep/5", "Cathy", "night"),
    ("W1", "Sep/6", "Helen", "morning"),
    ("W4", "Sep/5", "Susan", "evening"),
]

#: Table V — DischargePatients(Institution, Day; Patient).
DISCHARGE_PATIENTS_ROWS: List[Tuple[str, str, str]] = [
    ("H1", "Sep/9", "Tom Waits"),
    ("H1", "Sep/6", "Lou Reed"),
    ("H2", "Oct/5", "Elvis Costello"),
]

#: Thermometer(Ward, ThermometerType; Nurse) — Example 4's categorical relation.
THERMOMETER_ROWS: List[Tuple[str, str, str]] = [
    ("W1", "B1", "Helen"),
    ("W2", "B1", "Helen"),
    ("W3", "B2", "Cathy"),
    ("W4", "B2", "Susan"),
]


def build_md_instance(include_discharge: bool = True,
                      include_thermometer: bool = True) -> MDInstance:
    """Build the full multidimensional instance of Fig. 1.

    ``PatientUnit`` is declared but left empty: its extension is *generated*
    by dimensional rule (7) (and, with ``include_discharge``, by rule (9)).
    """
    builder = (MDModelBuilder()
               .dimension(build_hospital_dimension())
               .dimension(build_time_dimension())
               .relation("PatientWard",
                         categorical=[("Ward", "Hospital", "Ward"),
                                      ("Day", "Time", "Day")],
                         non_categorical=["Patient"],
                         rows=PATIENT_WARD_ROWS)
               .relation("PatientUnit",
                         categorical=[("Unit", "Hospital", "Unit"),
                                      ("Day", "Time", "Day")],
                         non_categorical=["Patient"])
               .relation("WorkingSchedules",
                         categorical=[("Unit", "Hospital", "Unit"),
                                      ("Day", "Time", "Day")],
                         non_categorical=["Nurse", "Type"],
                         rows=WORKING_SCHEDULES_ROWS)
               .relation("Shifts",
                         categorical=[("Ward", "Hospital", "Ward"),
                                      ("Day", "Time", "Day")],
                         non_categorical=["Nurse", "Shift"],
                         rows=SHIFTS_ROWS))
    if include_discharge:
        builder.relation("DischargePatients",
                         categorical=[("Institution", "Hospital", "Institution"),
                                      ("Day", "Time", "Day")],
                         non_categorical=["Patient"],
                         rows=DISCHARGE_PATIENTS_ROWS)
    if include_thermometer:
        builder.relation("Thermometer",
                         categorical=[("Ward", "Hospital", "Ward")],
                         non_categorical=["ThermometerType", "Nurse"],
                         rows=THERMOMETER_ROWS)
    return builder.build()


def build_measurements_instance() -> DatabaseInstance:
    """The instance under assessment: the ``Measurements`` relation of Table I."""
    instance = DatabaseInstance()
    instance.declare("Measurements", ["Time", "Patient", "Value"])
    instance.add_all("Measurements", MEASUREMENTS_ROWS)
    return instance
