"""The complete hospital scenario: ontology + context + queries + expectations.

:class:`HospitalScenario` packages everything the examples, tests and
benchmarks need to replay the paper's running example end to end:

* the multidimensional instance of Fig. 1 and the ``Measurements`` relation
  of Table I (the instance under assessment);
* the MD ontology with rules (7)–(9) and constraint (6);
* the quality context of Example 7 / Fig. 2 (contextual predicates
  ``TakenByNurse`` and ``TakenWithTherm``, the broader relation
  ``MeasurementExt`` and the quality version ``Measurements_q``);
* the doctor's query, its quality rewriting, and the expected results
  (Table II, the Sep/9 answer of Example 5, ...).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..datalog.rules import ConjunctiveQuery
from ..datalog.parser import parse_query
from ..engine.session import UpdateResult
from ..md.instance import MDInstance
from ..ontology.mdontology import MDOntology
from ..quality.assessment import DatabaseAssessment
from ..quality.cleaning import CleanAnswerComparison, compare_answers
from ..quality.context import Context
from ..quality.session import QualitySession
from ..relational.instance import DatabaseInstance, Relation
from .data import (MEASUREMENTS_QUALITY_ROWS, build_md_instance,
    build_measurements_instance)
from .ontology import build_ontology

#: The doctor's query of Example 1/7, over the original ``Measurements``.
DOCTOR_QUERY = (
    "?(T, P, V) :- Measurements(T, P, V), P = 'Tom Waits', "
    "T >= 'Sep/5-11:45', T <= 'Sep/5-12:15'."
)

#: Example 5's query: dates on which Mark has a shift in ward W1.
MARK_SHIFT_QUERY = "?(D) :- Shifts('W1', D, 'Mark', S)."

#: Example 2's variant: dates on which Mark has a shift in ward W2.
MARK_SHIFT_W2_QUERY = "?(D) :- Shifts('W2', D, 'Mark', S)."

#: Definition of the contextual predicate TakenByNurse (Example 7).
TAKEN_BY_NURSE_RULE = (
    "TakenByNurse(T, P, N, Y) :- WorkingSchedules(U, D, N, Y), DayTime(D, T), "
    "PatientUnit(U, D, P)."
)

#: Definition of the quality predicate TakenWithTherm (Example 7): patients of
#: the Standard unit are measured with brand-B1 thermometers (the guideline).
TAKEN_WITH_THERM_RULE = (
    "TakenWithTherm(T, P, 'B1') :- PatientUnit('Standard', D, P), DayTime(D, T)."
)

#: The broader contextual relation Measurement' of Example 7.
MEASUREMENT_EXT_RULE = (
    "MeasurementExt(T, P, V, Y, B) :- Measurements_c(T, P, V), "
    "TakenByNurse(T, P, N, Y), TakenWithTherm(T, P, B)."
)

#: The quality version of Measurements: certified nurse and brand-B1 thermometer.
MEASUREMENTS_Q_RULE = (
    "Measurements_q(T, P, V) :- MeasurementExt(T, P, V, 'cert.', 'B1')."
)


class HospitalScenario:
    """The running example of the paper, ready to execute.

    Parameters
    ----------
    include_closure_constraints:
        Add the Example-1 closure constraints to the ontology (they are
        violated by the reconstructed ``PatientWard``, which is the point of
        the constraint experiment).
    include_rule_9:
        Add the form-(10) discharge rule of Example 6.
    """

    def __init__(self, include_closure_constraints: bool = False,
                 include_rule_9: bool = True):
        self.md: MDInstance = build_md_instance()
        self.ontology: MDOntology = build_ontology(
            self.md,
            include_rule_9=include_rule_9,
            include_closure_constraints=include_closure_constraints,
        )
        self.measurements: DatabaseInstance = build_measurements_instance()
        self.context: Context = self._build_context()
        self._session: Optional[QualitySession] = None

    # -- construction ------------------------------------------------------------

    def _build_context(self) -> Context:
        context = Context(ontology=self.ontology, name="hospital-context")
        context.map_relation("Measurements", arity=3)
        context.add_contextual_predicate(
            "TakenByNurse", [TAKEN_BY_NURSE_RULE],
            description="nurse (and certification status) that took each measurement")
        context.add_quality_predicate(
            "TakenWithTherm", [TAKEN_WITH_THERM_RULE],
            description="measurements taken with a brand-B1 thermometer "
                        "(institutional guideline for the Standard unit)")
        context.add_contextual_predicate(
            "MeasurementExt", [MEASUREMENT_EXT_RULE],
            description="the broader contextual relation Measurement' of Example 7")
        context.define_quality_version(
            "Measurements", [MEASUREMENTS_Q_RULE],
            description="measurements taken by a certified nurse with a B1 thermometer")
        return context

    # -- expectations ------------------------------------------------------------

    @staticmethod
    def expected_quality_measurements() -> List[Tuple[str, str, float]]:
        """Table II: the expected extension of ``Measurements^q``."""
        return list(MEASUREMENTS_QUALITY_ROWS)

    @staticmethod
    def expected_doctor_answers() -> Tuple[Tuple[str, str, float], ...]:
        """Expected quality answers of the doctor's query (tuple 1 of Table I)."""
        return (("Sep/5-12:10", "Tom Waits", 38.2),)

    @staticmethod
    def expected_mark_shift_dates() -> Tuple[Tuple[str], ...]:
        """Expected answer of Example 5: Mark has a shift in W1 on Sep/9."""
        return (("Sep/9",),)

    # -- execution ---------------------------------------------------------------

    def session(self) -> QualitySession:
        """The scenario's long-lived quality session (chased once, reused).

        Every quality question below runs against this materialization;
        :meth:`record_measurements` / :meth:`remove_measurements` update it
        incrementally, the way a live hospital feed would.
        """
        if self._session is None:
            self._session = self.context.session(self.measurements)
        return self._session

    def doctor_query(self) -> ConjunctiveQuery:
        """The doctor's query as a parsed conjunctive query."""
        return parse_query(DOCTOR_QUERY)

    def quality_measurements(self) -> Relation:
        """Materialize ``Measurements^q`` through the context (Table II)."""
        return self.session().quality_version("Measurements")

    def quality_answers_to_doctor_query(self) -> Tuple[Tuple, ...]:
        """Quality answers of the doctor's query (Example 7's ``Q^q``)."""
        return self.session().quality_answers(DOCTOR_QUERY)

    def compare_doctor_query(self) -> CleanAnswerComparison:
        """Direct vs quality answers for the doctor's query."""
        return compare_answers(self.context, self.measurements, DOCTOR_QUERY,
                               chase_result=self.session().chase_result())

    def assess(self) -> DatabaseAssessment:
        """Assess ``Measurements`` against its quality version."""
        return self.session().assess()

    # -- persistence --------------------------------------------------------------

    def save_session(self, path: Union[str, Path]) -> Path:
        """Snapshot the live quality session (materialization + data) to disk.

        A later process calls :meth:`restore_session` to pick up exactly
        where this one stopped — same quality versions, same assessments,
        same incremental-update capability — without re-chasing the
        context program.
        """
        return self.session().save(path)

    def restore_session(self, path: Union[str, Path]) -> QualitySession:
        """Restore the quality session saved by :meth:`save_session`.

        The scenario's ``measurements`` copy is re-synchronized from the
        persisted instance under assessment, so subsequent
        :meth:`record_measurements` / :meth:`remove_measurements` calls
        behave exactly as they would have in the original process.
        """
        self._session = QualitySession.load(self.context, path)
        self.measurements = self._session.instance.copy()
        return self._session

    # -- serving ------------------------------------------------------------------

    def serving_backend(self, engine: Optional[str] = None):
        """A serving-daemon backend over this scenario's quality context.

        ``ServingDaemon(scenario.serving_backend(), data_dir)`` serves the
        same quality session :meth:`session` materializes in-process —
        doctor's query, quality versions, assessments, live measurement
        feeds — over the line-JSON protocol, durable across restarts
        (snapshot + write-ahead log).  The
        :class:`~repro.serving.client.ServingClient` mirrors the session
        API, so the scenario runs unchanged against either; this is also
        what ``python -m repro.serving.daemon`` serves by default.
        """
        from ..serving.daemon import QualityBackend
        return QualityBackend(self.context, self.measurements, engine=engine)

    # -- live updates -------------------------------------------------------------

    def record_measurements(self,
                            rows: Iterable[Sequence]) -> UpdateResult:
        """Record new ``Measurements`` tuples (incremental materialization)."""
        update = self.session().add_facts("Measurements", rows)
        for _, row in update.applied:
            self.measurements.add("Measurements", row)
        return update

    def remove_measurements(self,
                            rows: Iterable[Sequence]) -> UpdateResult:
        """Retract ``Measurements`` tuples (provenance-driven deletion)."""
        update = self.session().retract_facts("Measurements", rows)
        for _, row in update.applied:
            self.measurements.relation("Measurements").discard(row)
        return update

    def mark_shift_answers(self, ward: str = "W1") -> Tuple[Tuple, ...]:
        """Answers of Example 5's query via the ontology chase."""
        query = MARK_SHIFT_QUERY if ward == "W1" else MARK_SHIFT_W2_QUERY
        return self.ontology.certain_answers(query)
