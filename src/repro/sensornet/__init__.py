"""The sensor-network scenario: deep downward navigation over a campus."""

from .data import SensorNetSpec
from .scenario import SensorNetworkScenario

__all__ = ["SensorNetSpec", "SensorNetworkScenario"]
