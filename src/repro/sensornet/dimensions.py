"""The Location and Calendar dimensions of the sensor-network scenario.

* **Location**: ``Sensor → Room → Floor → Building → Campus`` — a deep,
  strict hierarchy (every sensor sits in exactly one room, every room on
  one floor, ...) whose size is controlled by :class:`~repro.sensornet.data.SensorNetSpec`.
  The depth is the point: dimensional rules navigate it *downward* across
  three levels (building → floor → room → sensor), which the hospital
  scenario never does.
* **Calendar**: ``Day → Month → Year`` with days chunked into months of
  three.

Member labels are hierarchical (``B0``, ``B0-F1``, ``B0-F1-R0``,
``B0-F1-R0-S1``) so a member's ancestry is readable in tests and traces.
"""

from __future__ import annotations

from typing import List

from ..md.builder import DimensionBuilder
from ..md.instance import DimensionInstance

#: days per calendar month (fixed chunking keeps month labels stable)
DAYS_PER_MONTH = 3


def building_names(buildings: int) -> List[str]:
    return [f"B{index}" for index in range(buildings)]


def floor_names(buildings: int, floors_per_building: int) -> List[str]:
    return [f"{building}-F{floor}"
            for building in building_names(buildings)
            for floor in range(floors_per_building)]


def room_names(buildings: int, floors_per_building: int,
               rooms_per_floor: int) -> List[str]:
    return [f"{floor}-R{room}"
            for floor in floor_names(buildings, floors_per_building)
            for room in range(rooms_per_floor)]


def sensor_names(buildings: int, floors_per_building: int,
                 rooms_per_floor: int, sensors_per_room: int) -> List[str]:
    return [f"{room}-S{sensor}"
            for room in room_names(buildings, floors_per_building,
                                   rooms_per_floor)
            for sensor in range(sensors_per_room)]


def day_names(days: int) -> List[str]:
    return [f"day{index:02d}" for index in range(days)]


def month_of(day: str) -> str:
    return f"month{int(day[3:]) // DAYS_PER_MONTH}"


def build_location_dimension(buildings: int, floors_per_building: int,
                             rooms_per_floor: int,
                             sensors_per_room: int) -> DimensionInstance:
    """The five-level Location hierarchy, single campus at the top."""
    builder = (DimensionBuilder("Location")
               .category_chain("Sensor", "Room", "Floor", "Building",
                               "Campus"))
    for building in building_names(buildings):
        builder.member_edge("Building", building, "Campus", "mainCampus")
        for floor_index in range(floors_per_building):
            floor = f"{building}-F{floor_index}"
            builder.member_edge("Floor", floor, "Building", building)
            for room_index in range(rooms_per_floor):
                room = f"{floor}-R{room_index}"
                builder.member_edge("Room", room, "Floor", floor)
                for sensor_index in range(sensors_per_room):
                    builder.member_edge("Sensor", f"{room}-S{sensor_index}",
                                        "Room", room)
    return builder.build()


def build_calendar_dimension(days: int) -> DimensionInstance:
    """``Day → Month → Year``, months of :data:`DAYS_PER_MONTH` days."""
    builder = (DimensionBuilder("Calendar")
               .category_chain("Day", "Month", "Year"))
    months = []
    for day in day_names(days):
        month = month_of(day)
        builder.member_edge("Day", day, "Month", month)
        if month not in months:
            months.append(month)
    for month in months:
        builder.member_edge("Month", month, "Year", "y1")
    return builder.build()
