"""The sensor-network scenario: deep downward navigation + quality context.

A campus full of sensors streams ``SensorReadings(Sensor, Day, Value)``;
building-level inspections cascade down the Location hierarchy (building →
floor → room → sensor) through the three downward rules of
:mod:`repro.sensornet.ontology`.  The quality context declares a reading
*quality* when its sensor was audited that day — i.e. the downward chain
reached it — **and** the sensor is listed calibrated by the external
``CalibratedSensor`` source.  Both conditions mirror the paper's guideline
structure (a contextual navigation requirement plus an external quality
predicate), but every navigation step here runs downhill.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..quality.context import Context
from ..scenarios import QualityScenarioBase
from .data import (SensorNetSpec, build_md_instance, build_readings_instance,
    calibrated_sensors, spec_days, spec_sensors)
from .ontology import build_ontology

#: Quality predicate: the downward chain audited the sensor that day.
AUDITED_SENSOR_RULE = "AuditedSensor(S, D) :- SensorAudit(S, D, V)."

#: The quality version of SensorReadings: audited that day and calibrated.
SENSOR_READINGS_Q_RULE = (
    "SensorReadings_q(S, D, V) :- SensorReadings_c(S, D, V), "
    "AuditedSensor(S, D), CalibratedSensor(S)."
)


class SensorNetworkScenario(QualityScenarioBase):
    """A seeded sensor-network quality-assessment domain."""

    name = "sensornet"
    assessed_relation = "SensorReadings"

    def __init__(self, spec: Optional[SensorNetSpec] = None,
                 include_campus_rollup: bool = True,
                 include_sensor_audit: bool = True):
        self.spec = spec if spec is not None else SensorNetSpec()
        md = build_md_instance(self.spec)
        ontology = build_ontology(
            md, include_campus_rollup=include_campus_rollup,
            include_sensor_audit=include_sensor_audit)
        super().__init__(md=md, ontology=ontology,
                         context=self._build_context(ontology),
                         instance=build_readings_instance(self.spec))
        self._sensors = spec_sensors(self.spec)
        self._days = spec_days(self.spec)

    def _build_context(self, ontology) -> Context:
        context = Context(ontology=ontology, name="sensornet-context")
        context.map_relation("SensorReadings", arity=3)
        context.add_external_source(
            "CalibratedSensor", ["Sensor"],
            rows=calibrated_sensors(self.spec))
        context.add_quality_predicate(
            "AuditedSensor", [AUDITED_SENSOR_RULE],
            description="sensors reached by the downward inspection chain "
                        "on a given day")
        context.define_quality_version(
            "SensorReadings", [SENSOR_READINGS_Q_RULE],
            description="readings from a calibrated sensor audited that day")
        return context

    # -- traffic-compiler contract -----------------------------------------

    def queries(self) -> List[str]:
        probe = self._sensors[0]
        return [
            "?(B, D, I) :- BuildingInspection(B, D, I).",
            "?(C, D, I) :- CampusInspection(C, D, I).",
            "?(R, D) :- RoomCheck(R, D, W).",
            f"?(D) :- SensorAudit('{probe}', D, V).",
            "?(S, D, V) :- SensorReadings(S, D, V).",
        ]

    def quality_queries(self) -> List[str]:
        probe = self._sensors[-1]
        return [
            "?(S, D, V) :- SensorReadings(S, D, V).",
            f"?(D, V) :- SensorReadings('{probe}', D, V).",
        ]

    def fresh_assessed_row(self, rng: random.Random, index: int) -> Tuple:
        return (rng.choice(self._sensors), rng.choice(self._days),
                round(15.0 + 10.0 * rng.random(), 2))
