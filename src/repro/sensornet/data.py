"""Seeded data for the sensor-network scenario.

Everything is deterministic given :class:`SensorNetSpec` — same spec, same
multidimensional instance, same readings, same calibration set — so a
scenario built in one process (a benchmark compiling a traffic schedule)
matches the one a daemon bootstrapped in another.

``BuildingInspection`` is the only extensional inspection relation; the
floor, room and sensor levels (``FloorInspection``, ``RoomCheck``,
``SensorAudit``) are declared empty and *generated* by the downward
dimensional rules of :mod:`repro.sensornet.ontology`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..md.builder import MDModelBuilder
from ..md.instance import MDInstance
from ..relational.instance import DatabaseInstance
from ..workloads.generator import derive_rng
from .dimensions import (build_calendar_dimension, build_location_dimension,
    day_names, sensor_names)


@dataclass
class SensorNetSpec:
    """Size and seed knobs of the generated sensor network."""

    buildings: int = 2
    floors_per_building: int = 2
    rooms_per_floor: int = 2
    sensors_per_room: int = 2
    days: int = 6
    #: extensional ``BuildingInspection`` tuples
    inspections: int = 8
    #: ``SensorReadings`` tuples in the instance under assessment
    readings: int = 36
    #: fraction of sensors listed in the ``CalibratedSensor`` source
    calibrated_fraction: float = 0.7
    seed: int = 0

    def scaled(self, **overrides) -> "SensorNetSpec":
        data = dict(self.__dict__)
        data.update(overrides)
        return SensorNetSpec(**data)


def spec_sensors(spec: SensorNetSpec) -> List[str]:
    return sensor_names(spec.buildings, spec.floors_per_building,
                        spec.rooms_per_floor, spec.sensors_per_room)


def spec_days(spec: SensorNetSpec) -> List[str]:
    return day_names(spec.days)


def build_md_instance(spec: SensorNetSpec) -> MDInstance:
    """The multidimensional instance: dimensions + inspection relations."""
    rng = derive_rng(random.Random(spec.seed), "sensornet-inspections")
    buildings = [f"B{index}" for index in range(spec.buildings)]
    days = spec_days(spec)
    inspection_rows = [(rng.choice(buildings), rng.choice(days),
                        f"inspector{index % 3}")
                       for index in range(spec.inspections)]
    return (MDModelBuilder()
            .dimension(build_location_dimension(
                spec.buildings, spec.floors_per_building,
                spec.rooms_per_floor, spec.sensors_per_room))
            .dimension(build_calendar_dimension(spec.days))
            .relation("BuildingInspection",
                      categorical=[("Building", "Location", "Building"),
                                   ("Day", "Calendar", "Day")],
                      non_categorical=["Inspector"],
                      rows=inspection_rows)
            .relation("CampusInspection",
                      categorical=[("Campus", "Location", "Campus"),
                                   ("Day", "Calendar", "Day")],
                      non_categorical=["Inspector"])
            .relation("FloorInspection",
                      categorical=[("Floor", "Location", "Floor"),
                                   ("Day", "Calendar", "Day")],
                      non_categorical=["Inspector", "Note"])
            .relation("RoomCheck",
                      categorical=[("Room", "Location", "Room"),
                                   ("Day", "Calendar", "Day")],
                      non_categorical=["Note"])
            .relation("SensorAudit",
                      categorical=[("Sensor", "Location", "Sensor"),
                                   ("Day", "Calendar", "Day")],
                      non_categorical=["Note"])
            .build())


def build_readings_instance(spec: SensorNetSpec) -> DatabaseInstance:
    """The instance under assessment: ``SensorReadings(Sensor, Day, Value)``."""
    rng = derive_rng(random.Random(spec.seed), "sensornet-readings")
    sensors = spec_sensors(spec)
    days = spec_days(spec)
    instance = DatabaseInstance()
    instance.declare("SensorReadings", ["Sensor", "Day", "Value"])
    for index in range(spec.readings):
        instance.add("SensorReadings",
                     (rng.choice(sensors), rng.choice(days),
                      round(15.0 + 10.0 * rng.random(), 2)))
    return instance


def calibrated_sensors(spec: SensorNetSpec) -> List[Tuple[str]]:
    """The ``CalibratedSensor`` external-source rows (a seeded subset)."""
    rng = derive_rng(random.Random(spec.seed), "sensornet-calibration")
    return [(sensor,) for sensor in spec_sensors(spec)
            if rng.random() < spec.calibrated_fraction]
