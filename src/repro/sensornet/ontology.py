"""The sensor-network MD ontology: a three-step downward-navigation chain.

The hospital ontology drills down exactly one level (rule (8): unit →
ward).  This scenario's point is *depth*: one extensional relation at the
building level cascades down the Location hierarchy through three
downward dimensional rules (form (4) with existentials, as in the paper's
rule (8)), each consuming the — null-carrying — output of the previous
one:

* **floor rule** — every inspection of a building inspects each of its
  floors, with an unknown per-floor note;
* **room rule** — every floor inspection checks each room on the floor
  (unknown detail), navigating *through* the invented note;
* **sensor rule** — every room check audits each sensor in the room.

An upward roll-up (building → campus) rides along for contrast, so both
navigation directions fire on every ``BuildingInspection`` update.
"""

from __future__ import annotations

from typing import Optional

from ..md.instance import MDInstance
from ..ontology.mdontology import MDOntology

#: Upward navigation Building → Campus (form (4), as the paper's rule (7)).
RULE_CAMPUS_ROLLUP = (
    "CampusInspection(C, D, I) :- BuildingInspection(B, D, I), "
    "CampusBuilding(C, B)."
)

#: Downward navigation Building → Floor with an unknown note.
RULE_FLOOR_INSPECTION = (
    "exists Z : FloorInspection(F, D, I, Z) :- BuildingInspection(B, D, I), "
    "BuildingFloor(B, F)."
)

#: Downward navigation Floor → Room, consuming the floor rule's output.
RULE_ROOM_CHECK = (
    "exists W : RoomCheck(R, D, W) :- FloorInspection(F, D, I, Z), "
    "FloorRoom(F, R)."
)

#: Downward navigation Room → Sensor — the third step of the chain.
RULE_SENSOR_AUDIT = (
    "exists V : SensorAudit(S, D, V) :- RoomCheck(R, D, W), RoomSensor(R, S)."
)


def build_ontology(md: MDInstance,
                   include_campus_rollup: bool = True,
                   include_sensor_audit: bool = True) -> MDOntology:
    """Build the sensor-network MD ontology over ``md``.

    ``include_sensor_audit=False`` stops the downward chain at the room
    level (for experiments isolating chain depth); the floor and room
    rules are always present — they are the scenario.
    """
    ontology = MDOntology(md)
    if include_campus_rollup:
        ontology.add_rule(RULE_CAMPUS_ROLLUP, label="campus roll-up")
    ontology.add_rule(RULE_FLOOR_INSPECTION, label="floor inspection (down)")
    ontology.add_rule(RULE_ROOM_CHECK, label="room check (down)")
    if include_sensor_audit:
        ontology.add_rule(RULE_SENSOR_AUDIT, label="sensor audit (down)")
    return ontology


def build_default_ontology(md: Optional[MDInstance] = None) -> MDOntology:
    """The full ontology over the default-spec instance (convenience)."""
    if md is None:
        from .data import SensorNetSpec, build_md_instance
        md = build_md_instance(SensorNetSpec())
    return build_ontology(md)
