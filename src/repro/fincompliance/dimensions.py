"""The OrgUnit and FiscalCalendar dimensions of the compliance scenario.

* **OrgUnit**: ``Desk → Branch → Division → Bank`` — trading desks grouped
  into branches, branches into divisions, a single bank at the top.
  Member labels are hierarchical (``V0``, ``V0-B1``, ``V0-B1-K0``).
* **FiscalCalendar**: ``Day → Month → Year`` with days chunked into
  months of three — month membership is what the freeze-window negative
  constraints of :mod:`repro.fincompliance.ontology` navigate.
"""

from __future__ import annotations

from typing import List

from ..md.builder import DimensionBuilder
from ..md.instance import DimensionInstance

#: days per fiscal month (fixed chunking keeps month labels stable)
DAYS_PER_MONTH = 3


def division_names(divisions: int) -> List[str]:
    return [f"V{index}" for index in range(divisions)]


def branch_names(divisions: int, branches_per_division: int) -> List[str]:
    return [f"{division}-B{branch}"
            for division in division_names(divisions)
            for branch in range(branches_per_division)]


def desk_names(divisions: int, branches_per_division: int,
               desks_per_branch: int) -> List[str]:
    return [f"{branch}-K{desk}"
            for branch in branch_names(divisions, branches_per_division)
            for desk in range(desks_per_branch)]


def day_names(days: int) -> List[str]:
    return [f"d{index:02d}" for index in range(days)]


def month_of(day: str) -> str:
    return f"m{int(day[1:]) // DAYS_PER_MONTH}"


def build_orgunit_dimension(divisions: int, branches_per_division: int,
                            desks_per_branch: int) -> DimensionInstance:
    """The four-level OrgUnit hierarchy, single bank at the top."""
    builder = (DimensionBuilder("OrgUnit")
               .category_chain("Desk", "Branch", "Division", "Bank"))
    for division in division_names(divisions):
        builder.member_edge("Division", division, "Bank", "bank1")
        for branch_index in range(branches_per_division):
            branch = f"{division}-B{branch_index}"
            builder.member_edge("Branch", branch, "Division", division)
            for desk_index in range(desks_per_branch):
                builder.member_edge("Desk", f"{branch}-K{desk_index}",
                                    "Branch", branch)
    return builder.build()


def build_calendar_dimension(days: int) -> DimensionInstance:
    """``Day → Month → Year``, months of :data:`DAYS_PER_MONTH` days."""
    builder = (DimensionBuilder("FiscalCalendar")
               .category_chain("Day", "Month", "Year"))
    months = []
    for day in day_names(days):
        month = month_of(day)
        builder.member_edge("Day", day, "Month", month)
        if month not in months:
            months.append(month)
    for month in months:
        builder.member_edge("Month", month, "Year", "fy1")
    return builder.build()
