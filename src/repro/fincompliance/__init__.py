"""The financial-compliance scenario: disjunctive rules + denial constraints."""

from .data import FinComplianceSpec
from .scenario import FinancialComplianceScenario

__all__ = ["FinComplianceSpec", "FinancialComplianceScenario"]
