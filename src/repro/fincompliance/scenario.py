"""The financial-compliance scenario: disjunctive rules + denials, served.

A bank's desks stream ``Trades(Desk, Day, Trader, Amount)``; branch-level
approvals cascade down to desks, division audits generate disjunctive
branch reviews, the freeze-window denials police approvals against the
restricted-desk list, and the settlement EGD keeps per-branch currencies
functional.  A trade is *quality* when its desk held an approval that day
and the trader is certified by the external ``CertifiedTrader`` source.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..quality.context import Context
from ..scenarios import QualityScenarioBase
from .data import (FinComplianceSpec, TRADER_POOL, build_md_instance,
    build_trades_instance, certified_traders, spec_days, spec_desks)
from .ontology import build_ontology

#: Quality predicate: the desk held a (possibly inherited) approval that day.
APPROVED_DESK_RULE = "ApprovedDesk(K, D) :- DeskApproval(K, D, O, R)."

#: The quality version of Trades: approved desk and certified trader.
TRADES_Q_RULE = (
    "Trades_q(K, D, T, A) :- Trades_c(K, D, T, A), ApprovedDesk(K, D), "
    "CertifiedTrader(T)."
)


class FinancialComplianceScenario(QualityScenarioBase):
    """A seeded financial-compliance quality-assessment domain."""

    name = "fincompliance"
    assessed_relation = "Trades"

    def __init__(self, spec: Optional[FinComplianceSpec] = None,
                 include_branch_review: bool = True,
                 include_freeze_constraint: bool = True,
                 include_settlement_egd: bool = True):
        self.spec = spec if spec is not None else FinComplianceSpec()
        md = build_md_instance(self.spec)
        ontology = build_ontology(
            md, include_branch_review=include_branch_review,
            include_freeze_constraint=include_freeze_constraint,
            include_settlement_egd=include_settlement_egd)
        super().__init__(md=md, ontology=ontology,
                         context=self._build_context(ontology),
                         instance=build_trades_instance(self.spec))
        self._desks = spec_desks(self.spec)
        self._days = spec_days(self.spec)

    def _build_context(self, ontology) -> Context:
        context = Context(ontology=ontology, name="fincompliance-context")
        context.map_relation("Trades", arity=4)
        context.add_external_source(
            "CertifiedTrader", ["Trader"],
            rows=certified_traders(self.spec))
        context.add_quality_predicate(
            "ApprovedDesk", [APPROVED_DESK_RULE],
            description="desks covered by a branch approval on a given day")
        context.define_quality_version(
            "Trades", [TRADES_Q_RULE],
            description="trades on an approved desk by a certified trader")
        return context

    # -- traffic-compiler contract -----------------------------------------

    def queries(self) -> List[str]:
        probe = self._desks[-1]
        return [
            "?(B, D, O) :- BranchApproval(B, D, O).",
            "?(K, D) :- DeskApproval(K, D, O, R).",
            "?(D, R) :- BranchReview(B, D, R).",
            f"?(C) :- Settlement('{probe}', C).",
            "?(K, D, T, A) :- Trades(K, D, T, A).",
        ]

    def quality_queries(self) -> List[str]:
        probe = self._desks[1]
        return [
            "?(K, D, T, A) :- Trades(K, D, T, A).",
            f"?(D, T, A) :- Trades('{probe}', D, T, A).",
        ]

    def fresh_assessed_row(self, rng: random.Random, index: int) -> Tuple:
        return (rng.choice(self._desks), rng.choice(self._days),
                TRADER_POOL[index % len(TRADER_POOL)],
                round(1000.0 * rng.random(), 2))
