"""The compliance MD ontology: disjunctive navigation + denial constraints.

Rule classes the hospital scenario leaves cold, by paper form:

* **desk-approval rule** — plain downward navigation (form (4) with an
  existential reference number), branch → desk;
* **branch-review rule** — the form-(10) *disjunctive* shape of the
  paper's rule (9): the head invents an existential **categorical**
  member (*some* branch of the audited division hosted the review) shared
  between a parent-child atom and a data atom;
* **freeze-window constraints** — negative constraints (form (3),
  inter-dimensional: OrgUnit + FiscalCalendar): no desk of the restricted
  desk's branch may receive an approval during the freeze month;
* **settlement EGD** — form (2): all desks of one branch settle in a
  single currency.
"""

from __future__ import annotations

from ..md.instance import MDInstance
from ..ontology.mdontology import MDOntology
from .data import FREEZE_MONTH

#: Downward navigation Branch → Desk with an unknown reference number.
RULE_DESK_APPROVAL = (
    "exists R : DeskApproval(K, D, O, R) :- BranchApproval(B, D, O), "
    "BranchDesk(B, K)."
)

#: Form (10): a division audit was hosted by *some* branch of the division.
RULE_BRANCH_REVIEW = (
    "exists B : DivisionBranch(V, B), BranchReview(B, D, R) :- "
    "DivisionAudit(V, D, R)."
)

#: Form (3) denial: no approvals touch restricted desks in the freeze month.
FREEZE_CONSTRAINT = (
    "false :- DeskApproval(K, D, O, R), RestrictedDesk(K, X), "
    f"MonthDay('{FREEZE_MONTH}', D)."
)

#: Form (2) EGD: one settlement currency per branch.
SETTLEMENT_EGD = (
    "C = C2 :- Settlement(K, C), Settlement(K2, C2), "
    "BranchDesk(B, K), BranchDesk(B, K2)."
)


def build_ontology(md: MDInstance,
                   include_branch_review: bool = True,
                   include_freeze_constraint: bool = True,
                   include_settlement_egd: bool = True) -> MDOntology:
    """Build the compliance MD ontology over ``md``.

    Unlike the hospital closure constraints, the freeze constraint is *on*
    by default: the clean generator satisfies it, and
    :func:`~repro.fincompliance.data.violating_approval` is how a test
    makes ``is_consistent()`` flip.
    """
    ontology = MDOntology(md)
    ontology.add_rule(RULE_DESK_APPROVAL, label="desk approval (down)")
    if include_branch_review:
        ontology.add_rule(RULE_BRANCH_REVIEW,
                          label="branch review (form 10)")
    if include_settlement_egd:
        ontology.add_constraint(SETTLEMENT_EGD, label="settlement EGD")
    if include_freeze_constraint:
        ontology.add_constraint(FREEZE_CONSTRAINT,
                                label="freeze-window denial")
    return ontology
