"""Seeded data for the financial-compliance scenario.

Deterministic given :class:`FinComplianceSpec`.  The clean generator keeps
the extensional data consistent with the freeze-window negative
constraints (no approvals for the restricted desk's branch during the
freeze month) and the settlement EGD (all desks of one branch settle in
the branch's currency); :func:`violating_approval` returns the one row a
test adds to witness an inconsistency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..md.builder import MDModelBuilder
from ..md.instance import MDInstance
from ..relational.instance import DatabaseInstance
from ..workloads.generator import derive_rng
from .dimensions import (branch_names, build_calendar_dimension,
    build_orgunit_dimension, day_names, desk_names, month_of)

#: the month the freeze-window constraints forbid (days d00..d02)
FREEZE_MONTH = "m0"

#: currencies cycled per branch (the settlement EGD's function)
CURRENCIES = ("USD", "EUR", "GBP")

#: traders referenced by trades and the CertifiedTrader source
TRADER_POOL = tuple(f"trader{index}" for index in range(6))


@dataclass
class FinComplianceSpec:
    """Size and seed knobs of the generated compliance domain."""

    divisions: int = 2
    branches_per_division: int = 2
    desks_per_branch: int = 2
    days: int = 6
    #: extensional ``BranchApproval`` tuples
    approvals: int = 8
    #: extensional ``DivisionAudit`` tuples
    audits: int = 4
    #: ``Trades`` tuples in the instance under assessment
    trades: int = 36
    #: fraction of :data:`TRADER_POOL` listed in ``CertifiedTrader``
    certified_fraction: float = 0.7
    seed: int = 0

    def scaled(self, **overrides) -> "FinComplianceSpec":
        data = dict(self.__dict__)
        data.update(overrides)
        return FinComplianceSpec(**data)


def spec_desks(spec: FinComplianceSpec) -> List[str]:
    return desk_names(spec.divisions, spec.branches_per_division,
                      spec.desks_per_branch)


def spec_branches(spec: FinComplianceSpec) -> List[str]:
    return branch_names(spec.divisions, spec.branches_per_division)


def spec_days(spec: FinComplianceSpec) -> List[str]:
    return day_names(spec.days)


def restricted_desk(spec: FinComplianceSpec) -> str:
    """The desk listed in ``RestrictedDesk`` (its branch is frozen)."""
    return spec_desks(spec)[0]


def restricted_branch(spec: FinComplianceSpec) -> str:
    return spec_branches(spec)[0]


def violating_approval(spec: FinComplianceSpec) -> Tuple[str, str, str]:
    """A ``BranchApproval`` row that violates the freeze-window constraint
    (approval for the restricted branch on a freeze-month day)."""
    freeze_days = [day for day in spec_days(spec)
                   if month_of(day) == FREEZE_MONTH]
    return (restricted_branch(spec), freeze_days[0], "rogue-officer")


def build_md_instance(spec: FinComplianceSpec) -> MDInstance:
    """The multidimensional instance: dimensions + compliance relations."""
    rng = derive_rng(random.Random(spec.seed), "fincompliance-md")
    branches = spec_branches(spec)
    days = spec_days(spec)
    frozen = restricted_branch(spec)
    clear_days = [day for day in days if month_of(day) != FREEZE_MONTH]

    approval_rows = []
    for index in range(spec.approvals):
        branch = rng.choice(branches)
        day = rng.choice(clear_days if branch == frozen else days)
        approval_rows.append((branch, day, f"officer{index % 3}"))

    divisions = sorted({branch.split("-")[0] for branch in branches})
    audit_rows = [(rng.choice(divisions), rng.choice(days),
                   f"audit-ref{index}")
                  for index in range(spec.audits)]

    settlement_rows = [(desk, CURRENCIES[branch_index % len(CURRENCIES)])
                       for branch_index, branch in enumerate(branches)
                       for desk in spec_desks(spec)
                       if desk.startswith(branch + "-")]

    return (MDModelBuilder()
            .dimension(build_orgunit_dimension(
                spec.divisions, spec.branches_per_division,
                spec.desks_per_branch))
            .dimension(build_calendar_dimension(spec.days))
            .relation("BranchApproval",
                      categorical=[("Branch", "OrgUnit", "Branch"),
                                   ("Day", "FiscalCalendar", "Day")],
                      non_categorical=["Officer"],
                      rows=approval_rows)
            .relation("DeskApproval",
                      categorical=[("Desk", "OrgUnit", "Desk"),
                                   ("Day", "FiscalCalendar", "Day")],
                      non_categorical=["Officer", "Ref"])
            .relation("DivisionAudit",
                      categorical=[("Division", "OrgUnit", "Division"),
                                   ("Day", "FiscalCalendar", "Day")],
                      non_categorical=["Ref"],
                      rows=audit_rows)
            .relation("BranchReview",
                      categorical=[("Branch", "OrgUnit", "Branch"),
                                   ("Day", "FiscalCalendar", "Day")],
                      non_categorical=["Ref"])
            .relation("RestrictedDesk",
                      categorical=[("Desk", "OrgUnit", "Desk")],
                      non_categorical=["Reason"],
                      rows=[(restricted_desk(spec), "sanctions")])
            .relation("Settlement",
                      categorical=[("Desk", "OrgUnit", "Desk")],
                      non_categorical=["Currency"],
                      rows=settlement_rows)
            .build())


def build_trades_instance(spec: FinComplianceSpec) -> DatabaseInstance:
    """The instance under assessment:
    ``Trades(Desk, Day, Trader, Amount)``."""
    rng = derive_rng(random.Random(spec.seed), "fincompliance-trades")
    desks = spec_desks(spec)
    days = spec_days(spec)
    instance = DatabaseInstance()
    instance.declare("Trades", ["Desk", "Day", "Trader", "Amount"])
    for _ in range(spec.trades):
        instance.add("Trades",
                     (rng.choice(desks), rng.choice(days),
                      rng.choice(TRADER_POOL),
                      round(1000.0 * rng.random(), 2)))
    return instance


def certified_traders(spec: FinComplianceSpec) -> List[Tuple[str]]:
    """The ``CertifiedTrader`` external-source rows (a seeded subset)."""
    rng = derive_rng(random.Random(spec.seed), "fincompliance-certified")
    return [(trader,) for trader in TRADER_POOL
            if rng.random() < spec.certified_fraction]
