"""Query-workload helpers for benchmarks.

Small utilities to derive batches of conjunctive queries from a generated
workload or an arbitrary MD ontology: point queries on base relations,
roll-up queries on navigated relations, and boolean membership probes.  They
are deterministic so that pytest-benchmark timings are comparable across
runs.
"""

from __future__ import annotations

from typing import List, Sequence

from ..datalog.parser import parse_query
from ..datalog.rules import ConjunctiveQuery
from ..ontology.mdontology import MDOntology
from ..relational.values import value_sort_key


def point_queries(ontology: MDOntology, relation: str, attribute_index: int = 0,
                  limit: int = 10) -> List[ConjunctiveQuery]:
    """One query per distinct value at ``attribute_index`` of ``relation``.

    Each query asks for the remaining attributes of the tuples having that
    value — the MD analogue of a key lookup.
    """
    program = ontology.program()
    data = program.database.relation(relation)
    arity = data.schema.arity
    values = sorted({row[attribute_index] for row in data}, key=value_sort_key)[:limit]
    queries = []
    for value in values:
        variables = [f"V{i}" for i in range(arity)]
        head_vars = [v for i, v in enumerate(variables) if i != attribute_index]
        terms = [f"'{value}'" if i == attribute_index else variables[i] for i in range(arity)]
        queries.append(parse_query(
            f"?({', '.join(head_vars)}) :- {relation}({', '.join(terms)})."))
    return queries


def full_scan_query(ontology: MDOntology, relation: str) -> ConjunctiveQuery:
    """A query returning the whole (derived) extension of ``relation``."""
    program = ontology.program()
    arity = program.predicate_arities()[relation]
    variables = [f"V{i}" for i in range(arity)]
    return parse_query(f"?({', '.join(variables)}) :- {relation}({', '.join(variables)}).")


def boolean_probe(ontology: MDOntology, relation: str, row: Sequence) -> ConjunctiveQuery:
    """A boolean query asking whether ``row`` is (certainly) derivable."""
    terms = ", ".join(f"'{value}'" for value in row)
    return parse_query(f"? :- {relation}({terms}).")
