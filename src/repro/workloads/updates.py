"""Deterministic EDB update streams for incremental-materialization benchmarks.

The session layer (:mod:`repro.engine.session`) amortizes one chase across
many queries *and updates*; to exercise it the harness needs update
sequences of controlled size against a generated workload.  This module
produces them:

* :class:`UpdateStep` — one batch of inserts and retractions, in the
  ``(predicate, row)`` vocabulary of
  :meth:`~repro.engine.session.MaterializedProgram.add_facts`;
* :func:`generate_update_stream` — a seeded stream of such steps against a
  :class:`~repro.workloads.generator.GeneratedWorkload`, targeting either
  the ontology's base categorical relations (``target="base"``, for
  :class:`~repro.engine.session.MaterializedProgram` benchmarks) or the
  instance under assessment (``target="assessment"``, for
  :class:`~repro.quality.session.QualitySession` benchmarks).

Inserted rows reference existing bottom members (so dimensional navigation
fires on them) with fresh non-categorical payloads; retracted rows are
drawn from the current simulated extension, including rows added by earlier
steps.  Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..datalog.chase import Fact
from .generator import GeneratedWorkload, derive_rng

BASE = "base"
ASSESSMENT = "assessment"


@dataclass
class UpdateStep:
    """One update batch: facts to insert and facts to retract."""

    adds: List[Fact] = field(default_factory=list)
    retracts: List[Fact] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.adds) + len(self.retracts)


def _bottom_members_of(workload: GeneratedWorkload) -> List[List[str]]:
    """Bottom members per dimension, in dimension order."""
    members: List[List[str]] = []
    for dimension in workload.md.dimensions.values():  # insertion order = D0, D1, ...
        bottom = sorted(dimension.schema.bottom_categories())[0]
        members.append(sorted(dimension.members(bottom), key=str))
    return members


def generate_update_stream(workload: GeneratedWorkload, steps: int = 10,
                           adds_per_step: int = 2, retracts_per_step: int = 1,
                           seed: int = 0,
                           target: str = BASE) -> List[UpdateStep]:
    """A deterministic stream of :class:`UpdateStep` batches for ``workload``."""
    if target not in (BASE, ASSESSMENT):
        raise ValueError(f"unknown update target {target!r}")
    # A private child stream per (seed, target): base and assessment streams
    # built from the same seed never share generator state (so building them
    # in any order — or concurrently — yields identical steps).
    rng = derive_rng(random.Random(seed), f"update-stream:{target}")
    members = _bottom_members_of(workload)

    if target == BASE:
        if not workload.base_relation_names:
            raise ValueError("workload has no base relations to update")
        relation = workload.base_relation_names[0]
        database = workload.ontology.program().database
        current = list(database.relation(relation).rows())
        payload_arity = database.relation(relation).schema.arity - len(members)

        def fresh_row(step: int, index: int) -> Tuple:
            row = [rng.choice(dimension_members)
                   for dimension_members in members]
            row.extend(f"u{seed}_{step}_{index}_{attr}"
                       for attr in range(payload_arity))
            return tuple(row)
    else:
        relation = "Readings"
        current = list(
            workload.assessment_instance.relation(relation).rows())
        dimension0 = members[0]

        def fresh_row(step: int, index: int) -> Tuple:
            return (rng.choice(dimension0),
                    f"subject_u{seed}_{step}_{index}",
                    float(1000 * step + index))

    stream: List[UpdateStep] = []
    for step in range(steps):
        batch = UpdateStep()
        for index in range(adds_per_step):
            row = fresh_row(step, index)
            batch.adds.append((relation, row))
            current.append(row)
        for _ in range(min(retracts_per_step, max(0, len(current) - 1))):
            victim = current.pop(rng.randrange(len(current)))
            batch.retracts.append((relation, victim))
        stream.append(batch)
    return stream
