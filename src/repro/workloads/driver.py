"""Open-loop traffic harness: compile a declarative mix, fire it, report.

The closed-loop generators (:mod:`repro.workloads.updates`, the E12–E15
streams) issue the next operation only after the previous one returns, so
a slowdown in the system under test silently slows the *offered* load and
hides tail latency — the classic coordinated-omission trap.  This driver
is open-loop:

1. :func:`compile_schedule` turns a :class:`TrafficSpec` (operation mix
   over ``query`` / ``holds`` / ``add`` / ``retract`` / ``quality``,
   target QPS, duration, seed) plus a :class:`ScenarioBinding` into a
   deterministic, timestamped :class:`OpSchedule` — same spec and
   binding, byte-identical schedule (:meth:`OpSchedule.encode`).
2. :func:`run_schedule` fires the schedule against a target — an
   in-process quality session (:class:`SessionTarget`) or a serving
   daemon over the wire (:class:`ClientTarget`) — from a worker pool fed
   by an arrival clock that **never waits on the system under test**: an
   op whose turn arrives while every worker is busy is queued, and the
   lag between its scheduled and actual start is recorded as
   coordinated-omission *debt*, never skipped.
3. The :class:`RunReport` gives per-op-class p50/p95/p99 latency
   (measured from the *scheduled* arrival, so queueing counts), service
   time, debt, typed-error counts by exception class, and the busy-retry
   totals surfaced by :class:`~repro.serving.client.ServingClient`'s
   ``on_retry`` hook.

A daemon shutdown mid-run aborts cleanly: the first
:class:`~repro.errors.DaemonShutdownError` /
:class:`~repro.errors.DaemonUnavailableError` stops the arrival clock,
the remaining ops are counted ``cancelled``, and every worker is joined
before the report is returned — no stranded threads.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from queue import Queue
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..errors import DaemonShutdownError, DaemonUnavailableError
from .generator import derive_rng

OP_QUERY = "query"
OP_HOLDS = "holds"
OP_ADD = "add"
OP_RETRACT = "retract"
OP_QUALITY = "quality"

#: every op class a mix may mention, in canonical order
OP_CLASSES = (OP_QUERY, OP_HOLDS, OP_ADD, OP_RETRACT, OP_QUALITY)

#: errors that abort the run (the daemon is gone; retrying is noise)
STOP_ERRORS = (DaemonShutdownError, DaemonUnavailableError)


@dataclass(frozen=True)
class ScenarioBinding:
    """What the compiler needs from a scenario to build payloads."""

    #: the assessed relation add/retract ops target
    relation: str
    #: query texts the ``query``/``holds`` ops draw from
    queries: Sequence[str]
    #: query texts the ``quality`` answer ops draw from
    quality_queries: Sequence[str]
    #: rows seeding the retract pool (the relation's initial extension)
    initial_rows: Sequence[Tuple]
    #: ``fresh_row(rng, index)`` — a new deterministic assessed row
    fresh_row: Callable[[random.Random, int], Tuple]


@dataclass
class TrafficSpec:
    """The declarative description of one open-loop run."""

    #: op-class fractions (normalized; unknown classes are an error)
    mix: Mapping[str, float] = field(
        default_factory=lambda: {OP_QUERY: 0.6, OP_HOLDS: 0.2,
                                 OP_ADD: 0.1, OP_RETRACT: 0.05,
                                 OP_QUALITY: 0.05})
    #: target arrival rate (ops/second)
    qps: float = 100.0
    #: schedule length in seconds (ops = round(qps * duration))
    duration: float = 1.0
    seed: int = 0
    #: rows per ``add`` op
    adds_per_op: int = 2
    #: rows per ``retract`` op (bounded by the simulated pool)
    retracts_per_op: int = 1
    #: share of ``quality`` ops that run a full assessment (the rest
    #: ask quality answers)
    assess_fraction: float = 0.25

    def normalized_mix(self) -> Dict[str, float]:
        """The mix as positive fractions summing to 1 (validated)."""
        unknown = sorted(set(self.mix) - set(OP_CLASSES))
        if unknown:
            raise ValueError(f"unknown op classes in mix: {unknown}; "
                             f"known: {', '.join(OP_CLASSES)}")
        weights = {op: float(self.mix.get(op, 0.0)) for op in OP_CLASSES}
        if any(weight < 0 for weight in weights.values()):
            raise ValueError(f"negative mix fractions: {self.mix}")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("mix must have at least one positive fraction")
        return {op: weight / total for op, weight in weights.items()
                if weight > 0}


@dataclass(frozen=True)
class ScheduledOp:
    """One timestamped operation of a compiled schedule."""

    index: int
    #: scheduled arrival, seconds from the run's start
    at: float
    #: op class (one of :data:`OP_CLASSES`)
    op: str
    #: JSON-encodable payload: ``("q", text)`` for query/holds,
    #: ``("rows", [row, ...])`` for add/retract, ``("assess",)`` or
    #: ``("answers", text)`` for quality
    payload: Tuple


@dataclass
class OpSchedule:
    """A compiled, deterministic, timestamped op sequence."""

    spec: TrafficSpec
    relation: str
    ops: List[ScheduledOp]

    def class_counts(self) -> Counter:
        return Counter(op.op for op in self.ops)

    def encode(self) -> bytes:
        """Canonical bytes of the schedule — byte-identical across runs
        of the same spec + binding (the determinism oracle)."""
        def plain(value: Any) -> Any:
            if isinstance(value, (tuple, list)):
                return [plain(item) for item in value]
            return value
        return json.dumps(
            {"relation": self.relation,
             "ops": [[op.index, op.at, op.op, plain(op.payload)]
                     for op in self.ops]},
            separators=(",", ":"), sort_keys=True).encode("utf-8")


def compile_schedule(spec: TrafficSpec,
                     binding: ScenarioBinding) -> OpSchedule:
    """Compile ``spec`` against ``binding`` into an :class:`OpSchedule`.

    Deterministic: op classes and payloads come from child streams of the
    spec seed (:func:`~repro.workloads.generator.derive_rng`), arrivals
    are ``index / qps``, and retracted rows are drawn from a simulated
    pool that replays exactly at run time (initial rows plus every row an
    earlier ``add`` op introduced).  A ``retract`` drawn against an empty
    pool degrades to a ``query`` op rather than desynchronizing the
    stream.
    """
    if spec.qps <= 0 or spec.duration <= 0:
        raise ValueError("qps and duration must be positive")
    if not binding.queries:
        raise ValueError("binding has no queries for query/holds ops")
    mix = spec.normalized_mix()
    thresholds: List[Tuple[float, str]] = []
    upper = 0.0
    for op in OP_CLASSES:
        if op in mix:
            upper += mix[op]
            thresholds.append((upper, op))

    parent = random.Random(spec.seed)
    class_rng = derive_rng(parent, "op-classes")
    payload_rng = derive_rng(parent, "op-payloads")

    pool = [tuple(row) for row in binding.initial_rows]
    ops: List[ScheduledOp] = []
    fresh_index = 0
    total = max(1, int(round(spec.qps * spec.duration)))
    for index in range(total):
        draw = class_rng.random()
        op = thresholds[-1][1]
        for bound, candidate in thresholds:
            if draw < bound:
                op = candidate
                break
        if op == OP_RETRACT and not pool:
            op = OP_QUERY
        if op in (OP_QUERY, OP_HOLDS):
            payload = ("q", payload_rng.choice(list(binding.queries)))
        elif op == OP_ADD:
            rows = []
            for _ in range(max(1, spec.adds_per_op)):
                rows.append(tuple(binding.fresh_row(payload_rng,
                                                    fresh_index)))
                fresh_index += 1
            pool.extend(rows)
            payload = ("rows", tuple(rows))
        elif op == OP_RETRACT:
            count = min(max(1, spec.retracts_per_op), len(pool))
            rows = tuple(pool.pop(payload_rng.randrange(len(pool)))
                         for _ in range(count))
            payload = ("rows", rows)
        else:  # OP_QUALITY
            if (not binding.quality_queries
                    or payload_rng.random() < spec.assess_fraction):
                payload = ("assess",)
            else:
                payload = ("answers",
                           payload_rng.choice(list(binding.quality_queries)))
        ops.append(ScheduledOp(index=index, at=index / spec.qps, op=op,
                               payload=payload))
    return OpSchedule(spec=spec, relation=binding.relation, ops=ops)


# -- targets ----------------------------------------------------------------


class SessionTarget:
    """Fire a schedule at an in-process quality session.

    :class:`~repro.quality.session.QualitySession` is not internally
    locked, so every op — reads included — runs under one lock; the
    in-process target measures the engine serially, the wire target
    measures real concurrency.
    """

    def __init__(self, session, relation: str):
        self._session = session
        self.relation = relation
        self._lock = threading.Lock()

    def make_worker(self) -> Callable[[ScheduledOp], None]:
        session, relation, lock = self._session, self.relation, self._lock

        def execute(op: ScheduledOp) -> None:
            with lock:
                if op.op == OP_QUERY:
                    session.query_session.answers(op.payload[1])
                elif op.op == OP_HOLDS:
                    session.query_session.holds(op.payload[1])
                elif op.op == OP_ADD:
                    session.add_facts(relation,
                                      [tuple(row) for row in op.payload[1]])
                elif op.op == OP_RETRACT:
                    session.retract_facts(
                        relation, [tuple(row) for row in op.payload[1]])
                elif op.payload[0] == "assess":
                    session.assess()
                else:
                    session.quality_answers(op.payload[1])
        return execute

    def close(self) -> None:
        pass


class ClientTarget:
    """Fire a schedule at a serving daemon over the wire.

    ``connect`` is called once per worker (a
    :class:`~repro.serving.client.ServingClient` owns one socket and is
    not thread-safe) with an ``on_retry=`` keyword wired to this
    target's retry counter, e.g.::

        ClientTarget(lambda **kw: ServingClient.connect(
                         data_dir, busy_retries=100, **kw),
                     relation=binding.relation)
    """

    def __init__(self, connect: Callable[..., Any], relation: str):
        self._connect = connect
        self.relation = relation
        self._clients: List[Any] = []
        self._lock = threading.Lock()
        self.retries: Counter = Counter()

    def _note_retry(self, kind: str, attempt: int, floor: float) -> None:
        with self._lock:
            self.retries[kind] += 1

    def make_worker(self) -> Callable[[ScheduledOp], None]:
        client = self._connect(on_retry=self._note_retry)
        with self._lock:
            self._clients.append(client)
        relation = self.relation

        def execute(op: ScheduledOp) -> None:
            if op.op == OP_QUERY:
                client.answers(op.payload[1])
            elif op.op == OP_HOLDS:
                client.holds(op.payload[1])
            elif op.op == OP_ADD:
                client.add_facts([(relation, tuple(row))
                                  for row in op.payload[1]])
            elif op.op == OP_RETRACT:
                client.retract_facts([(relation, tuple(row))
                                      for row in op.payload[1]])
            elif op.payload[0] == "assess":
                client.assess()
            else:
                client.quality_answers(op.payload[1])
        return execute

    def close(self) -> None:
        with self._lock:
            clients, self._clients = list(self._clients), []
        for client in clients:
            client.close()


# -- the runner -------------------------------------------------------------


def _percentiles(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(values)

    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]
    return {"p50_ms": round(pick(0.50) * 1000, 3),
            "p95_ms": round(pick(0.95) * 1000, 3),
            "p99_ms": round(pick(0.99) * 1000, 3)}


@dataclass
class RunReport:
    """What one open-loop run measured."""

    #: per op class: count/ok/cancelled, errors by exception class,
    #: corrected-latency and service-time percentiles, debt stats
    classes: Dict[str, Dict[str, Any]]
    scheduled: int
    executed: int
    ok: int
    cancelled: int
    errors: Dict[str, int]
    #: busy/unavailable retries clients performed (wire target only)
    retries: Dict[str, int]
    #: wall-clock seconds from first scheduled arrival to full drain
    elapsed: float
    offered_qps: float
    achieved_qps: float
    #: total coordinated-omission debt (seconds ops started late)
    debt_seconds: float
    aborted: bool = False
    abort_error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"classes": self.classes, "scheduled": self.scheduled,
                "executed": self.executed, "ok": self.ok,
                "cancelled": self.cancelled, "errors": dict(self.errors),
                "retries": dict(self.retries),
                "elapsed": round(self.elapsed, 6),
                "offered_qps": round(self.offered_qps, 1),
                "achieved_qps": round(self.achieved_qps, 1),
                "debt_seconds": round(self.debt_seconds, 6),
                "aborted": self.aborted, "abort_error": self.abort_error}


#: per-executed-op record: (op class, error name or None, corrected
#: latency, service time, debt) — or (op class, CANCELLED, 0, 0, 0)
_CANCELLED = "__cancelled__"


def run_schedule(schedule: OpSchedule, target, workers: int = 4,
                 late_threshold: float = 0.001) -> RunReport:
    """Fire ``schedule`` at ``target`` from ``workers`` threads.

    The arrival clock (this thread) sleeps until each op's scheduled
    time and enqueues it — an unbounded queue, so a slow target never
    stalls arrivals.  Worker threads execute queued ops and measure:

    * **corrected latency** — completion minus *scheduled* arrival
      (queueing included: the coordinated-omission-safe number);
    * **service time** — completion minus actual start;
    * **debt** — actual start minus scheduled arrival, when positive.

    The first :data:`STOP_ERRORS` exception aborts the run: arrivals
    stop, queued and undispatched ops are counted ``cancelled``, and all
    workers are joined before returning.  Every other exception is
    recorded per class and the run continues.
    """
    queue: "Queue[Optional[ScheduledOp]]" = Queue()
    abort = threading.Event()
    abort_error: List[Optional[str]] = [None]
    records: List[List[Tuple]] = [[] for _ in range(workers)]
    executors = [target.make_worker() for _ in range(workers)]
    # Arrivals start slightly in the future so op 0 isn't born late.
    t0 = time.perf_counter() + 0.05

    def worker(slot: List[Tuple],
               execute: Callable[[ScheduledOp], None]) -> None:
        while True:
            op = queue.get()
            if op is None:
                return
            if abort.is_set():
                slot.append((op.op, _CANCELLED, 0.0, 0.0, 0.0))
                continue
            scheduled = t0 + op.at
            start = time.perf_counter()
            error = None
            try:
                execute(op)
            except STOP_ERRORS as exc:
                error = type(exc).__name__
                abort_error[0] = error
                abort.set()
            except Exception as exc:  # noqa: BLE001 - recorded, run goes on
                error = type(exc).__name__
            end = time.perf_counter()
            slot.append((op.op, error, end - scheduled, end - start,
                         max(0.0, start - scheduled)))

    threads = [threading.Thread(target=worker, args=(records[i], executors[i]),
                                name=f"driver-worker-{i}", daemon=True)
               for i in range(workers)]
    for thread in threads:
        thread.start()

    undispatched = 0
    try:
        for op in schedule.ops:
            if abort.is_set():
                undispatched += 1
                records[0].append((op.op, _CANCELLED, 0.0, 0.0, 0.0))
                continue
            wait = t0 + op.at - time.perf_counter()
            if wait > 0:
                time.sleep(wait)
            queue.put(op)
    finally:
        for _ in threads:
            queue.put(None)
        for thread in threads:
            thread.join()
        target.close()
    elapsed = max(1e-9, time.perf_counter() - t0)

    classes: Dict[str, Dict[str, Any]] = {}
    latencies: Dict[str, List[float]] = {}
    services: Dict[str, List[float]] = {}
    errors: Counter = Counter()
    ok = cancelled = executed = 0
    debt_total = 0.0
    for slot in records:
        for op_class, error, latency, service, debt in slot:
            stats = classes.setdefault(
                op_class, {"count": 0, "ok": 0, "cancelled": 0,
                           "errors": {}, "late_ops": 0, "max_debt_ms": 0.0,
                           "debt_seconds": 0.0})
            stats["count"] += 1
            if error == _CANCELLED:
                stats["cancelled"] += 1
                cancelled += 1
                continue
            executed += 1
            debt_total += debt
            stats["debt_seconds"] = round(stats["debt_seconds"] + debt, 6)
            stats["max_debt_ms"] = round(
                max(stats["max_debt_ms"], debt * 1000), 3)
            if debt > late_threshold:
                stats["late_ops"] += 1
            if error is not None:
                stats["errors"][error] = stats["errors"].get(error, 0) + 1
                errors[error] += 1
                continue
            stats["ok"] += 1
            ok += 1
            latencies.setdefault(op_class, []).append(latency)
            services.setdefault(op_class, []).append(service)
    for op_class, stats in classes.items():
        stats.update(_percentiles(latencies.get(op_class, [])))
        stats["service_p50_ms"] = _percentiles(
            services.get(op_class, []))["p50_ms"]
        stats["service_p99_ms"] = _percentiles(
            services.get(op_class, []))["p99_ms"]

    return RunReport(
        classes=classes,
        scheduled=len(schedule.ops),
        executed=executed,
        ok=ok,
        cancelled=cancelled,
        errors=dict(errors),
        retries=dict(getattr(target, "retries", {})),
        elapsed=elapsed,
        offered_qps=schedule.spec.qps,
        achieved_qps=executed / elapsed,
        debt_seconds=round(debt_total, 6),
        aborted=abort.is_set(),
        abort_error=abort_error[0])
