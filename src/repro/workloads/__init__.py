"""Synthetic multidimensional workloads for the benchmark harness."""

from .generator import GeneratedWorkload, WorkloadSpec, generate_workload
from .queries import boolean_probe, full_scan_query, point_queries
from .updates import UpdateStep, generate_update_stream

__all__ = [
    "GeneratedWorkload",
    "WorkloadSpec",
    "generate_workload",
    "boolean_probe",
    "full_scan_query",
    "point_queries",
    "UpdateStep",
    "generate_update_stream",
]
