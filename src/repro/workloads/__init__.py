"""Synthetic multidimensional workloads for the benchmark harness."""

from .driver import (ClientTarget, OpSchedule, RunReport, ScenarioBinding,
    ScheduledOp, SessionTarget, TrafficSpec, compile_schedule, run_schedule)
from .generator import (GeneratedWorkload, WorkloadSpec, derive_rng,
    generate_workload)
from .queries import boolean_probe, full_scan_query, point_queries
from .updates import UpdateStep, generate_update_stream

__all__ = [
    "GeneratedWorkload",
    "WorkloadSpec",
    "derive_rng",
    "generate_workload",
    "boolean_probe",
    "full_scan_query",
    "point_queries",
    "UpdateStep",
    "generate_update_stream",
    "ClientTarget",
    "OpSchedule",
    "RunReport",
    "ScenarioBinding",
    "ScheduledOp",
    "SessionTarget",
    "TrafficSpec",
    "compile_schedule",
    "run_schedule",
]
