"""The :class:`MDOntology` facade — the paper's core artifact ``M = (S_M, D_M, Σ_M)``.

An :class:`MDOntology` wraps a multidimensional instance, compiles it to a
Datalog± program (vocabulary + extensional facts + referential constraints),
accepts dimensional rules and constraints of the paper's forms (2)–(4) and
(10), and exposes the reasoning services built in :mod:`repro.datalog`:

* chase-based materialization and certain-answer query answering;
* the deterministic weakly-sticky query answering of Section IV;
* first-order (UCQ) rewriting for upward-navigating ontologies;
* consistency checking against dimensional constraints;
* class membership and separability analysis (Section III's claims).

Rules and queries can be given either as engine objects or as text in the
parser syntax of :mod:`repro.datalog.parser`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..datalog.answering import AnswerTuple, certainly_holds, evaluate_query
from ..datalog.chase import ChaseResult, chase
from ..datalog.parser import parse_query, parse_rule
from ..datalog.program import DatalogProgram
from ..datalog.rewriting import QueryRewriter, Rewriting
from ..datalog.rules import EGD, ConjunctiveQuery, NegativeConstraint, TGD
from ..datalog.ws_qa import DeterministicWSQAns
from ..errors import InconsistencyError, OntologyError, RewritingError
from ..md.instance import MDInstance
from ..md.schema import DimensionSchema
from .analysis import OntologyAnalysis, analyze
from .compiler import CompiledOntology, OntologyCompiler
from .predicates import OntologyVocabulary, PredicateNaming
from .rules import DimensionalConstraint, DimensionalRule

RuleLike = Union[TGD, str]
ConstraintLike = Union[EGD, NegativeConstraint, str]
QueryLike = Union[ConjunctiveQuery, str]


class MDOntology:
    """A multidimensional Datalog± ontology over an MD instance.

    Parameters
    ----------
    md:
        The multidimensional instance (dimensions + categorical relations).
    naming:
        Predicate naming scheme used by the compiler.
    include_transitive_rollups:
        Materialize non-adjacent parent–child predicates as well.
    generate_referential_constraints:
        Emit the form-(1) referential constraints (default ``True``).
    """

    def __init__(self, md: MDInstance, naming: Optional[PredicateNaming] = None,
                 include_transitive_rollups: bool = False,
                 generate_referential_constraints: bool = True):
        self.md = md
        self.compiler = OntologyCompiler(
            naming=naming,
            include_transitive_rollups=include_transitive_rollups,
            generate_referential_constraints=generate_referential_constraints,
        )
        self._compiled: CompiledOntology = self.compiler.compile(md)
        self.rules: List[DimensionalRule] = []
        self.constraints: List[DimensionalConstraint] = []
        self._program_cache: Optional[DatalogProgram] = None
        self._chase_cache: Optional[ChaseResult] = None

    # -- vocabulary and schemas ---------------------------------------------------

    @property
    def vocabulary(self) -> OntologyVocabulary:
        """The compiled predicate vocabulary ``K ∪ O ∪ R``."""
        return self._compiled.vocabulary

    @property
    def naming(self) -> PredicateNaming:
        """The naming scheme in force."""
        return self._compiled.naming

    def dimension_schemas(self) -> Dict[str, DimensionSchema]:
        """Dimension schemas, keyed by dimension name."""
        return {name: dim.schema for name, dim in self.md.dimensions.items()}

    # -- rules and constraints ------------------------------------------------------

    def add_rule(self, rule: RuleLike, label: str = "") -> DimensionalRule:
        """Add a dimensional rule (form (4) or (10)); text is parsed first."""
        tgd = parse_rule(rule) if isinstance(rule, str) else rule
        if not isinstance(tgd, TGD):
            raise OntologyError(f"a dimensional rule must be a TGD, got {type(tgd).__name__}")
        wrapped = DimensionalRule(tgd, self.vocabulary,
                                  dimension_schemas=self.dimension_schemas(), label=label)
        self.rules.append(wrapped)
        self._invalidate()
        return wrapped

    def add_constraint(self, constraint: ConstraintLike, label: str = "") -> DimensionalConstraint:
        """Add a dimensional constraint (form (2) EGD or form (3) denial)."""
        dependency = parse_rule(constraint) if isinstance(constraint, str) else constraint
        if not isinstance(dependency, (EGD, NegativeConstraint)):
            raise OntologyError(
                "a dimensional constraint must be an EGD or a negative constraint, "
                f"got {type(dependency).__name__}")
        wrapped = DimensionalConstraint(dependency, self.vocabulary, label=label)
        self.constraints.append(wrapped)
        self._invalidate()
        return wrapped

    def _invalidate(self) -> None:
        self._program_cache = None
        self._chase_cache = None

    # -- program assembly --------------------------------------------------------------

    def program(self) -> DatalogProgram:
        """The full Datalog± program ``M``: data + Σ_M (rules and constraints)."""
        if self._program_cache is None:
            base = self._compiled.program
            program = DatalogProgram(
                tgds=[rule.tgd for rule in self.rules],
                egds=[c.dependency for c in self.constraints if isinstance(c.dependency, EGD)],
                constraints=list(base.constraints) + [
                    c.dependency for c in self.constraints
                    if isinstance(c.dependency, NegativeConstraint)],
                database=base.database.copy(),
            )
            program.ensure_relations()
            self._program_cache = program
        return self._program_cache

    def extensional_fact_count(self) -> int:
        """Number of extensional facts of the compiled ontology."""
        return self._compiled.program.database.total_tuples()

    # -- reasoning services ---------------------------------------------------------------

    def chase(self, refresh: bool = False, **chase_options) -> ChaseResult:
        """Chase the ontology (cached across calls unless ``refresh``)."""
        if self._chase_cache is None or refresh or chase_options:
            result = chase(self.program(), **chase_options)
            if chase_options:
                return result
            self._chase_cache = result
        return self._chase_cache

    def _coerce_query(self, query: QueryLike) -> ConjunctiveQuery:
        return parse_query(query) if isinstance(query, str) else query

    def certain_answers(self, query: QueryLike) -> Tuple[AnswerTuple, ...]:
        """Certain answers via the chase (the reference semantics)."""
        cq = self._coerce_query(query)
        return evaluate_query(cq, self.chase().instance, allow_nulls=False)

    def answers_with_nulls(self, query: QueryLike) -> Tuple[AnswerTuple, ...]:
        """Query answers that may contain labeled nulls (open-world view)."""
        cq = self._coerce_query(query)
        return evaluate_query(cq, self.chase().instance, allow_nulls=True)

    def holds(self, query: QueryLike) -> bool:
        """Boolean certain answer of ``query``."""
        cq = self._coerce_query(query)
        return certainly_holds(self.program(), cq, chase_result=self.chase())

    def ws_answers(self, query: QueryLike, max_depth: Optional[int] = None) -> Tuple[AnswerTuple, ...]:
        """Answers via the deterministic weakly-sticky algorithm (Section IV)."""
        cq = self._coerce_query(query)
        solver = DeterministicWSQAns(self.program(), max_depth=max_depth)
        return solver.answers(cq)

    def ws_holds(self, query: QueryLike, max_depth: Optional[int] = None) -> bool:
        """Boolean answer via the deterministic weakly-sticky algorithm."""
        cq = self._coerce_query(query)
        solver = DeterministicWSQAns(self.program(), max_depth=max_depth)
        return solver.holds(cq)

    def rewrite(self, query: QueryLike) -> Rewriting:
        """First-order (UCQ) rewriting of ``query`` (upward-only ontologies)."""
        cq = self._coerce_query(query)
        if not self.analysis().summary()["fo_rewritable"]:
            raise RewritingError(
                "this ontology is not upward-navigating/non-recursive; "
                "first-order rewriting does not apply (use certain_answers or ws_answers)")
        rewriter = QueryRewriter([rule.tgd for rule in self.rules])
        return rewriter.rewrite(cq)

    def rewrite_answers(self, query: QueryLike) -> Tuple[AnswerTuple, ...]:
        """Answers obtained by evaluating the UCQ rewriting over the data."""
        rewriting = self.rewrite(query)
        return rewriting.evaluate(self.program().database)

    # -- consistency ------------------------------------------------------------------------

    def check_consistency(self, fail_fast: bool = False) -> ChaseResult:
        """Chase with constraint checking; violations are reported (or raised)."""
        return chase(self.program(), check_constraints=True, fail_fast=fail_fast)

    def is_consistent(self) -> bool:
        """``True`` when no dimensional or referential constraint is violated."""
        try:
            return self.check_consistency().is_consistent
        except InconsistencyError:
            return False

    # -- analysis ----------------------------------------------------------------------------

    def analysis(self) -> OntologyAnalysis:
        """Class membership / separability / navigation-direction report."""
        return analyze(self.vocabulary, self.rules, self.constraints)

    def is_weakly_sticky(self) -> bool:
        """Section III claim: the ontology's TGDs are weakly sticky."""
        return self.analysis().is_weakly_sticky

    def is_upward_only(self) -> bool:
        """``True`` when every navigating rule rolls up (Section IV rewriting case)."""
        return self.analysis().upward_only

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MDOntology({len(self.md.dimensions)} dimensions, "
                f"{len(self.md.relation_schemas)} categorical relations, "
                f"{len(self.rules)} rules, {len(self.constraints)} constraints)")
