"""Compilation of an MD instance into a Datalog± program.

The compiler realizes the representational half of Section III: given a
multidimensional instance (dimensions + categorical relations), it produces

* the **vocabulary** ``S_M = K ∪ O ∪ R`` (category, parent–child and
  categorical predicates, cf. :mod:`repro.ontology.predicates`),
* the **extensional instance** ``D_M`` — one unary fact per category member,
  one binary fact per member-level edge (parent first), and the tuples of
  the categorical relations, and
* the **referential negative constraints** of form (1), one per categorical
  attribute, unless disabled.

Dimensional rules and constraints (forms (2)–(4), (10)) are added on top of
the compiled program by :class:`~repro.ontology.mdontology.MDOntology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..datalog.program import DatalogProgram
from ..md.instance import MDInstance
from ..relational.instance import DatabaseInstance
from .predicates import (CategoryPredicate, OntologyVocabulary, ParentChildPredicate,
                         PredicateNaming)
from .rules import referential_constraint


@dataclass
class CompiledOntology:
    """The output of the compiler: vocabulary + Datalog± program."""

    vocabulary: OntologyVocabulary
    program: DatalogProgram
    naming: PredicateNaming

    def fact_count(self) -> int:
        """Number of extensional facts in the compiled program."""
        return self.program.database.total_tuples()


class OntologyCompiler:
    """Compiles :class:`~repro.md.instance.MDInstance` objects to Datalog±.

    Parameters
    ----------
    naming:
        Predicate naming scheme (category / parent–child predicate names).
    include_transitive_rollups:
        When ``True``, the compiler also materializes parent–child facts for
        *non-adjacent* category pairs (the transitive roll-up), under
        predicates named by the same scheme.  Dimensional rules that need to
        jump several levels in one join can then be written directly; the
        default keeps only the adjacent edges, as in the paper.
    generate_referential_constraints:
        When ``True`` (default), a form-(1) negative constraint is generated
        for every categorical attribute of every categorical relation.
    """

    def __init__(self, naming: Optional[PredicateNaming] = None,
                 include_transitive_rollups: bool = False,
                 generate_referential_constraints: bool = True):
        self.naming = naming if naming is not None else PredicateNaming()
        self.include_transitive_rollups = include_transitive_rollups
        self.generate_referential_constraints = generate_referential_constraints

    # -- public API -------------------------------------------------------------

    def compile(self, md: MDInstance) -> CompiledOntology:
        """Compile ``md`` into a vocabulary and a Datalog± program."""
        vocabulary = self.build_vocabulary(md)
        database = self.build_database(md, vocabulary)
        program = DatalogProgram(database=database)
        if self.generate_referential_constraints:
            for constraint in self.build_referential_constraints(md, vocabulary):
                program.add_constraint(constraint)
        return CompiledOntology(vocabulary=vocabulary, program=program, naming=self.naming)

    # -- vocabulary -------------------------------------------------------------

    def build_vocabulary(self, md: MDInstance) -> OntologyVocabulary:
        """Create the predicate families ``K``, ``O`` and ``R`` for ``md``."""
        vocabulary = OntologyVocabulary()
        for dimension in md.dimensions.values():
            schema = dimension.schema
            for category in schema.categories:
                vocabulary.add_category_predicate(CategoryPredicate(
                    name=self.naming.category_predicate(schema.name, category),
                    dimension=schema.name,
                    category=category,
                ))
            for child_category, parent_category in schema.edges:
                vocabulary.add_parent_child_predicate(ParentChildPredicate(
                    name=self.naming.parent_child_predicate(
                        schema.name, parent_category, child_category),
                    dimension=schema.name,
                    parent_category=parent_category,
                    child_category=child_category,
                ))
            if self.include_transitive_rollups:
                for lower in schema.categories:
                    for higher in schema.ancestors(lower):
                        if (lower, higher) in schema.edges:
                            continue
                        name = self.naming.parent_child_predicate(schema.name, higher, lower)
                        if name in vocabulary.parent_child_predicates:
                            continue
                        vocabulary.add_parent_child_predicate(ParentChildPredicate(
                            name=name, dimension=schema.name,
                            parent_category=higher, child_category=lower))
        for relation_schema in md.relations():
            vocabulary.add_categorical_predicate(relation_schema)
        return vocabulary

    # -- extensional data ---------------------------------------------------------

    def build_database(self, md: MDInstance,
                       vocabulary: OntologyVocabulary) -> DatabaseInstance:
        """Materialize ``D_M``: category, parent–child and categorical facts."""
        database = DatabaseInstance()

        for predicate in vocabulary.category_predicates.values():
            relation = database.declare(predicate.name, ["member"])
            dimension = md.dimension(predicate.dimension)
            for member in dimension.members(predicate.category):
                relation.add((member,))

        for predicate in vocabulary.parent_child_predicates.values():
            relation = database.declare(predicate.name, ["parent", "child"])
            dimension = md.dimension(predicate.dimension)
            adjacent = (predicate.child_category, predicate.parent_category) in \
                dimension.schema.edges
            if adjacent:
                pairs = dimension.edges_between(predicate.child_category,
                                                predicate.parent_category)
            else:
                # Transitive roll-up pairs (only reachable with
                # include_transitive_rollups=True).
                pairs = dimension.rollup_pairs(predicate.child_category,
                                               predicate.parent_category)
            for child_member, parent_member in pairs:
                relation.add((parent_member, child_member))

        for relation_schema in md.relations():
            relation = database.declare(relation_schema.name,
                                        relation_schema.attribute_names)
            relation.add_all(md.relation(relation_schema.name))
        return database

    # -- referential constraints ---------------------------------------------------

    def build_referential_constraints(self, md: MDInstance,
                                      vocabulary: OntologyVocabulary) -> List:
        """Form-(1) constraints linking categorical attributes to categories."""
        constraints = []
        for relation_schema in md.relations():
            for index, attribute in enumerate(relation_schema.categorical):
                category_predicate = self.naming.category_predicate(
                    attribute.dimension, attribute.category)
                constraints.append(referential_constraint(
                    relation_name=relation_schema.name,
                    attribute_position=index,
                    arity=relation_schema.arity,
                    category_predicate=category_predicate,
                ))
        return constraints
