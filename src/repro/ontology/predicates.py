"""Predicate vocabulary of a compiled MD ontology.

Section III defines the schema of an MD ontology as ``S_M = K ∪ O ∪ R``:

* ``K`` — unary **category predicates**, one per category (``Unit(u)``);
* ``O`` — binary **parent–child predicates**, one per category edge, with
  the *parent member first* (``UnitWard(u, w)``, ``DayTime(d, t)`` — the
  naming and argument order follow the paper's examples);
* ``R`` — **categorical predicates**, one per categorical relation, with
  categorical attributes first and non-categorical attributes last
  (``PatientWard(w, d; p)``).

:class:`OntologyVocabulary` records which predicate plays which role and
which argument positions are categorical; the compiler fills it in and the
rule validators, the weak-stickiness analysis, and the quality layer consult
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..errors import OntologyError
from ..md.relations import CategoricalRelationSchema

Position = Tuple[str, int]


@dataclass(frozen=True)
class CategoryPredicate:
    """A unary predicate holding the members of one category."""

    name: str
    dimension: str
    category: str


@dataclass(frozen=True)
class ParentChildPredicate:
    """A binary predicate holding member-level (parent, child) pairs."""

    name: str
    dimension: str
    parent_category: str
    child_category: str


class PredicateNaming:
    """Naming scheme mapping MD-model elements to predicate names.

    The default scheme mirrors the paper: a category predicate is named
    after its category (``Unit``), a parent–child predicate concatenates
    parent and child category names (``UnitWard``).  ``qualified=True``
    prefixes names with the dimension (``Hospital_Unit``) to avoid
    collisions when two dimensions share category names.
    """

    def __init__(self, qualified: bool = False):
        self.qualified = qualified

    def category_predicate(self, dimension: str, category: str) -> str:
        """Predicate name for a category."""
        return f"{dimension}_{category}" if self.qualified else category

    def parent_child_predicate(self, dimension: str, parent_category: str,
                               child_category: str) -> str:
        """Predicate name for a (parent, child) category edge."""
        base = f"{parent_category}{child_category}"
        return f"{dimension}_{base}" if self.qualified else base


class OntologyVocabulary:
    """The three predicate families ``K``, ``O``, ``R`` of an MD ontology."""

    def __init__(self):
        self.category_predicates: Dict[str, CategoryPredicate] = {}
        self.parent_child_predicates: Dict[str, ParentChildPredicate] = {}
        self.categorical_predicates: Dict[str, CategoricalRelationSchema] = {}

    # -- registration ---------------------------------------------------------

    def add_category_predicate(self, predicate: CategoryPredicate) -> CategoryPredicate:
        """Register a category predicate, rejecting name clashes across roles."""
        self._check_fresh(predicate.name)
        self.category_predicates[predicate.name] = predicate
        return predicate

    def add_parent_child_predicate(self, predicate: ParentChildPredicate) -> ParentChildPredicate:
        """Register a parent–child predicate."""
        self._check_fresh(predicate.name)
        self.parent_child_predicates[predicate.name] = predicate
        return predicate

    def add_categorical_predicate(self, schema: CategoricalRelationSchema
                                  ) -> CategoricalRelationSchema:
        """Register a categorical predicate (one per categorical relation)."""
        self._check_fresh(schema.name)
        self.categorical_predicates[schema.name] = schema
        return schema

    def _check_fresh(self, name: str) -> None:
        if name in self.category_predicates or name in self.parent_child_predicates \
                or name in self.categorical_predicates:
            raise OntologyError(
                f"predicate name {name!r} is already used by another ontology predicate; "
                "use PredicateNaming(qualified=True) to disambiguate")

    # -- classification ---------------------------------------------------------

    def role_of(self, predicate: str) -> str:
        """One of ``"category"``, ``"parent_child"``, ``"categorical"``, ``"other"``."""
        if predicate in self.category_predicates:
            return "category"
        if predicate in self.parent_child_predicates:
            return "parent_child"
        if predicate in self.categorical_predicates:
            return "categorical"
        return "other"

    def is_category(self, predicate: str) -> bool:
        """``True`` if ``predicate`` is a category predicate (family ``K``)."""
        return predicate in self.category_predicates

    def is_parent_child(self, predicate: str) -> bool:
        """``True`` if ``predicate`` is a parent–child predicate (family ``O``)."""
        return predicate in self.parent_child_predicates

    def is_categorical(self, predicate: str) -> bool:
        """``True`` if ``predicate`` is a categorical predicate (family ``R``)."""
        return predicate in self.categorical_predicates

    def arity_of(self, predicate: str) -> int:
        """Arity of an ontology predicate."""
        if self.is_category(predicate):
            return 1
        if self.is_parent_child(predicate):
            return 2
        if self.is_categorical(predicate):
            return self.categorical_predicates[predicate].arity
        raise OntologyError(f"unknown ontology predicate {predicate!r}")

    def categorical_positions(self) -> Set[Position]:
        """Positions that carry category members.

        These are the positions the paper's weak-stickiness argument relies
        on: the dimensional structure is fixed, so only a bounded set of
        values can ever occur there.  They comprise every position of the
        category and parent–child predicates plus the categorical-attribute
        positions of categorical predicates.
        """
        positions: Set[Position] = set()
        for name in self.category_predicates:
            positions.add((name, 0))
        for name in self.parent_child_predicates:
            positions.add((name, 0))
            positions.add((name, 1))
        for name, schema in self.categorical_predicates.items():
            for index in schema.categorical_positions():
                positions.add((name, index))
        return positions

    def non_categorical_positions(self) -> Set[Position]:
        """Positions of non-categorical attributes of categorical predicates."""
        positions: Set[Position] = set()
        for name, schema in self.categorical_predicates.items():
            for index in schema.non_categorical_positions():
                positions.add((name, index))
        return positions

    def is_categorical_position(self, predicate: str, index: int) -> bool:
        """``True`` if ``(predicate, index)`` carries category members."""
        return (predicate, index) in self.categorical_positions()

    def category_of_position(self, predicate: str, index: int) -> Optional[Tuple[str, str]]:
        """The ``(dimension, category)`` linked to a position, if any."""
        if self.is_category(predicate) and index == 0:
            info = self.category_predicates[predicate]
            return (info.dimension, info.category)
        if self.is_parent_child(predicate):
            info = self.parent_child_predicates[predicate]
            if index == 0:
                return (info.dimension, info.parent_category)
            if index == 1:
                return (info.dimension, info.child_category)
        if self.is_categorical(predicate):
            schema = self.categorical_predicates[predicate]
            if schema.is_categorical_position(index):
                attribute = schema.categorical[index]
                return (attribute.dimension, attribute.category)
        return None

    def predicates(self) -> Set[str]:
        """All predicate names of the vocabulary."""
        return (set(self.category_predicates) | set(self.parent_child_predicates)
                | set(self.categorical_predicates))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OntologyVocabulary(K={sorted(self.category_predicates)}, "
                f"O={sorted(self.parent_child_predicates)}, "
                f"R={sorted(self.categorical_predicates)})")
