"""MD ontologies in Datalog± — the paper's core contribution.

This package turns an extended-HM multidimensional instance into a Datalog±
ontology ``M = (S_M, D_M, Σ_M)`` (Section III), validates dimensional rules
and constraints against the paper's forms (1)–(4) and (10), and exposes the
query-answering and analysis services of Section IV on top of the generic
Datalog± engine.
"""

from .predicates import (CategoryPredicate, OntologyVocabulary, ParentChildPredicate,
                         PredicateNaming)
from .rules import (DOWNWARD, FORM_4, FORM_10, MIXED, NONE, UPWARD, DimensionalConstraint,
                    DimensionalRule, referential_constraint)
from .compiler import CompiledOntology, OntologyCompiler
from .analysis import OntologyAnalysis, analyze, is_downward_only, is_upward_only
from .mdontology import MDOntology

__all__ = [
    "CategoryPredicate",
    "OntologyVocabulary",
    "ParentChildPredicate",
    "PredicateNaming",
    "DOWNWARD",
    "FORM_4",
    "FORM_10",
    "MIXED",
    "NONE",
    "UPWARD",
    "DimensionalConstraint",
    "DimensionalRule",
    "referential_constraint",
    "CompiledOntology",
    "OntologyCompiler",
    "OntologyAnalysis",
    "analyze",
    "is_downward_only",
    "is_upward_only",
    "MDOntology",
]
