"""Analysis of compiled MD ontologies.

Section III of the paper makes three analytical claims about MD ontologies:

1. ontologies whose dimensional rules are of forms (1)–(4) are **weakly
   sticky** — because shared body variables only occur at categorical
   positions, where the fixed dimensional structure bounds the set of values;
2. adding rules of form (10) preserves weak stickiness — the new member
   nulls they invent are bounded because navigation only goes downward;
3. EGDs whose heads equate only categorical variables are **separable** from
   the TGDs; with form-(10) rules this becomes application dependent.

:func:`analyze` certifies these properties for a concrete ontology by
combining the generic Datalog± class machinery
(:mod:`repro.datalog.classes`, :mod:`repro.datalog.separability`) with the
MD-specific information in the vocabulary, and additionally reports the
navigation direction of every dimensional rule — which is what decides
whether the first-order rewriting of Section IV applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..datalog.classes import ClassReport, classify, is_non_recursive
from ..datalog.rules import EGD, TGD
from ..datalog.separability import SeparabilityReport, egd_separability_report
from .predicates import OntologyVocabulary
from .rules import DOWNWARD, DimensionalConstraint, DimensionalRule, UPWARD


@dataclass
class OntologyAnalysis:
    """Full analysis report of an MD ontology."""

    class_report: ClassReport
    separability: SeparabilityReport
    rule_directions: Dict[str, str]
    upward_only: bool
    downward_only: bool
    non_recursive: bool
    categorical_positions_finite_rank: bool
    notes: List[str] = field(default_factory=list)

    @property
    def is_weakly_sticky(self) -> bool:
        """Whether the compiled TGD set is weakly sticky."""
        return self.class_report.is_weakly_sticky

    @property
    def is_separable(self) -> bool:
        """Whether every EGD was certified separable."""
        return self.separability.separable

    def summary(self) -> Dict[str, bool]:
        """A compact dictionary used by reports and benchmarks."""
        return {
            **self.class_report.summary(),
            "separable_egds": self.is_separable,
            "upward_only": self.upward_only,
            "downward_only": self.downward_only,
            "non_recursive": self.non_recursive,
            "fo_rewritable": self.upward_only and self.non_recursive,
        }


def rule_directions(rules: Sequence[DimensionalRule]) -> Dict[str, str]:
    """Navigation direction per rule, keyed by the rule's label (or text)."""
    directions: Dict[str, str] = {}
    for index, rule in enumerate(rules):
        key = rule.label or f"rule#{index}"
        directions[key] = rule.direction
    return directions


def is_upward_only(rules: Sequence[DimensionalRule]) -> bool:
    """``True`` when every navigating rule navigates upward.

    These are the "upward-navigating MD ontologies" of Section IV for which
    the paper develops the first-order rewriting approach.
    """
    navigating = [rule for rule in rules if rule.direction != "none"]
    return bool(navigating) and all(rule.direction == UPWARD for rule in navigating) or \
        not navigating


def is_downward_only(rules: Sequence[DimensionalRule]) -> bool:
    """``True`` when every navigating rule navigates downward."""
    navigating = [rule for rule in rules if rule.direction != "none"]
    return bool(navigating) and all(rule.direction == DOWNWARD for rule in navigating)


def analyze(vocabulary: OntologyVocabulary,
            rules: Sequence[DimensionalRule],
            constraints: Sequence[DimensionalConstraint] = ()) -> OntologyAnalysis:
    """Analyze an MD ontology given its vocabulary, rules and constraints."""
    tgds: List[TGD] = [rule.tgd for rule in rules]
    egds: List[EGD] = [c.dependency for c in constraints if isinstance(c.dependency, EGD)]

    class_report = classify(tgds)
    separability = egd_separability_report(tgds, egds)
    directions = rule_directions(rules)
    upward_only = is_upward_only(rules)
    downward_only = is_downward_only(rules)
    non_recursive = is_non_recursive(tgds)

    # The paper's weak-stickiness argument: categorical positions carry a
    # bounded set of values.  We confirm that every categorical position that
    # participates in a marked join is of finite rank.
    categorical = vocabulary.categorical_positions()
    infinite_categorical = categorical & set(class_report.infinite_rank_positions)
    categorical_finite = not infinite_categorical

    notes: List[str] = []
    if not class_report.is_weakly_sticky:
        notes.append(f"not weakly sticky: {class_report.weakly_sticky_witness}")
    if not separability.separable:
        notes.append(
            "EGD separability could not be certified syntactically for "
            f"{len(separability.uncertified_egds)} EGD(s); the paper notes this becomes "
            "application dependent in the presence of form-(10) rules")
    if infinite_categorical:
        notes.append(
            f"categorical positions with infinite rank: {sorted(infinite_categorical)} "
            "(a form-(10) rule invents member nulls there)")
    if upward_only and non_recursive:
        notes.append("ontology is upward-navigating and non-recursive: "
                     "first-order query rewriting applies (Section IV)")

    return OntologyAnalysis(
        class_report=class_report,
        separability=separability,
        rule_directions=directions,
        upward_only=upward_only,
        downward_only=downward_only,
        non_recursive=non_recursive,
        categorical_positions_finite_rank=categorical_finite,
        notes=notes,
    )
