"""Dimensional rules and dimensional constraints (the paper's forms (1)–(4), (10)).

These classes wrap plain Datalog± dependencies with MD-aware validation and
metadata:

* :class:`DimensionalRule` — a TGD of form (4) (existential variables only
  at non-categorical positions; joins only on categorical positions) or of
  form (10) (downward navigation with existential *categorical* variables,
  possibly with parent–child atoms in the head);
* :class:`DimensionalConstraint` — an EGD of form (2) or a negative
  constraint of form (3), classified as intra- or inter-dimensional;
* :func:`referential_constraint` — builds the form-(1) negative constraint
  tying a categorical attribute to its category.

Validation needs to know which positions are categorical, which is exactly
what :class:`~repro.ontology.predicates.OntologyVocabulary` records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.rules import EGD, NegativeConstraint, TGD
from ..datalog.terms import Variable
from ..errors import DimensionalConstraintError, DimensionalRuleError
from ..md.schema import DimensionSchema
from .predicates import OntologyVocabulary

UPWARD = "upward"
DOWNWARD = "downward"
MIXED = "mixed"
NONE = "none"

FORM_4 = "form-4"
FORM_10 = "form-10"


def _role_check(vocabulary: OntologyVocabulary, atom: Atom, allowed_roles: Set[str],
                where: str) -> None:
    role = vocabulary.role_of(atom.predicate)
    if role not in allowed_roles:
        raise DimensionalRuleError(
            f"{where}: atom {atom} over {role!r} predicate {atom.predicate!r} is not "
            f"allowed (allowed roles: {sorted(allowed_roles)})")


class DimensionalRule:
    """A dimensional rule: a TGD of the paper's form (4) or form (10).

    Parameters
    ----------
    tgd:
        The underlying TGD.
    vocabulary:
        The ontology vocabulary used to classify predicates and positions.
    dimension_schemas:
        Optional map of dimension name → :class:`DimensionSchema`, used for
        the level check of form (10) (body categories must be at the same or
        a higher level than head categories).
    label:
        Human-readable name (e.g. ``"rule (7)"``).
    """

    def __init__(self, tgd: TGD, vocabulary: OntologyVocabulary,
                 dimension_schemas: Optional[Dict[str, DimensionSchema]] = None,
                 label: str = ""):
        self.tgd = tgd
        self.vocabulary = vocabulary
        self.label = label or tgd.label
        self.form = self._validate(dimension_schemas or {})
        self.direction = self._navigation_direction()

    # -- validation -----------------------------------------------------------

    def _validate(self, dimension_schemas: Dict[str, DimensionSchema]) -> str:
        vocabulary = self.vocabulary
        tgd = self.tgd
        where = f"dimensional rule {self.label or tgd}"

        # Body: categorical, parent-child and category atoms only.
        for atom in tgd.body:
            _role_check(vocabulary, atom, {"categorical", "parent_child", "category"}, where)

        head_categorical = [a for a in tgd.head if vocabulary.is_categorical(a.predicate)]
        head_parent_child = [a for a in tgd.head if vocabulary.is_parent_child(a.predicate)]
        head_other = [a for a in tgd.head
                      if not vocabulary.is_categorical(a.predicate)
                      and not vocabulary.is_parent_child(a.predicate)]
        if head_other:
            raise DimensionalRuleError(
                f"{where}: head atoms must be categorical or parent-child atoms, "
                f"got {[str(a) for a in head_other]}")
        if len(head_categorical) != 1:
            raise DimensionalRuleError(
                f"{where}: a dimensional rule must have exactly one categorical head atom "
                f"(the paper splits conjunctive heads into single-atom rules), got "
                f"{len(head_categorical)}")

        existentials = set(tgd.existential_variables())
        existential_categorical = self._existential_categorical_positions(existentials)

        if not head_parent_child and not existential_categorical:
            self._validate_form_4(existentials, where)
            return FORM_4
        self._validate_form_10(dimension_schemas, where)
        return FORM_10

    def _existential_categorical_positions(self, existentials: Set[Variable]
                                           ) -> List[Tuple[Atom, int]]:
        """Head occurrences of existential variables at categorical positions."""
        found = []
        for atom in self.tgd.head:
            for index, term in enumerate(atom.terms):
                if term in existentials and \
                        self.vocabulary.is_categorical_position(atom.predicate, index):
                    found.append((atom, index))
        return found

    def _validate_form_4(self, existentials: Set[Variable], where: str) -> None:
        # Existential variables only at non-categorical positions (already
        # known from the caller); additionally the paper requires shared body
        # variables to occur only at categorical positions.
        for variable in self.tgd.join_variables():
            for atom in self.tgd.body:
                for index, term in enumerate(atom.terms):
                    if term != variable:
                        continue
                    if not self.vocabulary.is_categorical_position(atom.predicate, index):
                        raise DimensionalRuleError(
                            f"{where}: join variable {variable} occurs at the "
                            f"non-categorical position {index} of {atom.predicate!r}; "
                            "form (4) only allows joins on categorical attributes")

    def _validate_form_10(self, dimension_schemas: Dict[str, DimensionSchema],
                          where: str) -> None:
        # Body: categorical atoms only (the paper's form (10)).
        for atom in self.tgd.body:
            if not self.vocabulary.is_categorical(atom.predicate):
                raise DimensionalRuleError(
                    f"{where}: form (10) rules may only have categorical atoms in the "
                    f"body, got {atom}")
        if not dimension_schemas:
            return
        # Level check: every body categorical attribute must be linked to a
        # category at the same or a higher level than every head categorical
        # attribute of the same dimension.
        head_atom = next(a for a in self.tgd.head
                         if self.vocabulary.is_categorical(a.predicate))
        head_categories = self._linked_categories(head_atom)
        for atom in self.tgd.body:
            for dimension, category in self._linked_categories(atom):
                schema = dimension_schemas.get(dimension)
                if schema is None:
                    continue
                for head_dimension, head_category in head_categories:
                    if head_dimension != dimension:
                        continue
                    same = category == head_category
                    higher = schema.is_above(category, head_category)
                    if not (same or higher):
                        raise DimensionalRuleError(
                            f"{where}: form (10) requires body categories to be at the "
                            f"same or a higher level than head categories; "
                            f"{category!r} is not >= {head_category!r} in dimension "
                            f"{dimension!r}")

    def _linked_categories(self, atom: Atom) -> List[Tuple[str, str]]:
        linked = []
        for index in range(atom.arity):
            info = self.vocabulary.category_of_position(atom.predicate, index)
            if info is not None:
                linked.append(info)
        return linked

    # -- navigation direction ---------------------------------------------------

    def _navigation_direction(self) -> str:
        """Infer the navigation direction(s) enabled by this rule.

        Following the paper's reading of form (4): with a body join between a
        categorical atom ``R_i`` and a parent–child atom ``D(parent, child)``,
        the rule navigates *upward* when the child variable occurs in ``R_i``
        and the parent variable occurs in the head, and *downward* when the
        parent variable occurs in ``R_i`` (or the body at large) and the child
        variable occurs in the head.  Form (10) rules navigate downward by
        construction.
        """
        if self.form == FORM_10:
            return DOWNWARD
        head_variables = set(self.tgd.head_variables())
        body_categorical_variables = {
            term
            for atom in self.tgd.body
            if self.vocabulary.is_categorical(atom.predicate)
            for term in atom.terms
            if isinstance(term, Variable)
        }
        directions: Set[str] = set()
        for atom in self.tgd.body:
            if not self.vocabulary.is_parent_child(atom.predicate):
                continue
            parent_term, child_term = atom.terms[0], atom.terms[1]
            if isinstance(child_term, Variable) and child_term in body_categorical_variables \
                    and isinstance(parent_term, Variable) and parent_term in head_variables:
                directions.add(UPWARD)
            if isinstance(parent_term, Variable) and parent_term in body_categorical_variables \
                    and isinstance(child_term, Variable) and child_term in head_variables:
                directions.add(DOWNWARD)
        if not directions:
            return NONE
        if len(directions) == 2:
            return MIXED
        return directions.pop()

    # -- convenience ------------------------------------------------------------

    def is_upward(self) -> bool:
        """``True`` if the rule performs (only) upward navigation."""
        return self.direction == UPWARD

    def is_downward(self) -> bool:
        """``True`` if the rule performs (only) downward navigation."""
        return self.direction == DOWNWARD

    def dimensions(self) -> Set[str]:
        """Dimensions touched by the rule (via linked categories)."""
        result: Set[str] = set()
        for atom in (*self.tgd.body, *self.tgd.head):
            for dimension, _category in self._linked_categories(atom):
                result.add(dimension)
        return result

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.tgd}{tag} ({self.form}, {self.direction})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DimensionalRule({self})"


class DimensionalConstraint:
    """A dimensional constraint: an EGD (form (2)) or a denial (form (3))."""

    def __init__(self, dependency, vocabulary: OntologyVocabulary, label: str = ""):
        if not isinstance(dependency, (EGD, NegativeConstraint)):
            raise DimensionalConstraintError(
                f"a dimensional constraint must be an EGD or a negative constraint, "
                f"got {type(dependency).__name__}")
        self.dependency = dependency
        self.vocabulary = vocabulary
        self.label = label or getattr(dependency, "label", "")
        self._validate()

    def _validate(self) -> None:
        where = f"dimensional constraint {self.label or self.dependency}"
        for atom in self.dependency.body:
            role = self.vocabulary.role_of(atom.predicate)
            if role == "other":
                raise DimensionalConstraintError(
                    f"{where}: atom {atom} does not use an ontology predicate")

    @property
    def kind(self) -> str:
        """``"egd"`` or ``"denial"``."""
        return "egd" if isinstance(self.dependency, EGD) else "denial"

    def dimensions(self) -> Set[str]:
        """Dimensions referenced by the constraint body."""
        result: Set[str] = set()
        for atom in self.dependency.body:
            for index in range(atom.arity):
                info = self.vocabulary.category_of_position(atom.predicate, index)
                if info is not None:
                    result.add(info[0])
        return result

    def is_inter_dimensional(self) -> bool:
        """``True`` if the constraint spans more than one dimension."""
        return len(self.dimensions()) > 1

    def is_intra_dimensional(self) -> bool:
        """``True`` if the constraint involves at most one dimension."""
        return len(self.dimensions()) <= 1

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        scope = "inter" if self.is_inter_dimensional() else "intra"
        return f"{self.dependency}{tag} ({self.kind}, {scope}-dimensional)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DimensionalConstraint({self})"


def referential_constraint(relation_name: str, attribute_position: int, arity: int,
                           category_predicate: str, label: str = "") -> NegativeConstraint:
    """Build the form-(1) constraint ``⊥ ← R(..., e, ...), ¬K(e)``.

    ``attribute_position`` is the 0-based position of the categorical
    attribute within ``R`` and ``category_predicate`` the category predicate
    it must belong to.
    """
    variables = [Variable(f"X{i}") for i in range(arity)]
    relation_atom = Atom(relation_name, variables)
    category_atom = Atom(category_predicate, [variables[attribute_position]], negated=True)
    return NegativeConstraint(
        [relation_atom, category_atom],
        label=label or f"ref:{relation_name}[{attribute_position}]→{category_predicate}")
