"""Checkpointing and compaction policies for the serving daemon.

The daemon's data directory holds::

    data_dir/
        snapshot-<lsn, 16 digits>.snap   -- engine snapshots, newest wins
        wal.log                          -- the current write-ahead log
        daemon.json                      -- live address (transient)

A **checkpoint** is the compaction step: serialize the materialized state
to ``snapshot-<last applied LSN>.snap`` (atomic tmp+rename, with the LSN
recorded in the snapshot's ``meta`` so recovery knows the exact cut), then
start a fresh WAL based at that LSN (atomic tmp+rename over ``wal.log`` —
this is how replayed log segments are pruned), then drop superseded
snapshots beyond the configured safety margin.  Every step is
individually atomic and ordered so that a crash *anywhere* inside a
checkpoint leaves a recoverable directory:

* crash before the snapshot rename → previous snapshot + full WAL;
* crash after the snapshot, before the WAL rotation → new snapshot + old
  WAL, whose records are all ≤ the snapshot's LSN and are skipped on
  replay (each record's LSN is compared against the snapshot ``meta``);
* crash after the rotation, before pruning → extra old snapshots, removed
  by the next successful checkpoint.

A checkpoint that *fails* (:class:`~repro.errors.SnapshotError` — full
disk, unserializable value) is ordered save-first precisely so the
previous snapshot and the current WAL are untouched: the daemon keeps
serving and retries at the next trigger.

:class:`CompactionPolicy` decides *when* to checkpoint: after every N
records, or when the WAL outgrows a byte budget — whichever comes first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from .wal import WriteAheadLog, maybe_crash

PathLike = Union[str, Path]

WAL_NAME = "wal.log"
ADDRESS_NAME = "daemon.json"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.snap$")


def wal_path(data_dir: PathLike) -> Path:
    """The data directory's current write-ahead log file."""
    return Path(data_dir) / WAL_NAME


def address_path(data_dir: PathLike) -> Path:
    """The transient file advertising the live daemon's host/port."""
    return Path(data_dir) / ADDRESS_NAME


def snapshot_path(data_dir: PathLike, lsn: int) -> Path:
    """The snapshot file for a checkpoint taken at ``lsn``."""
    return Path(data_dir) / f"snapshot-{lsn:016d}.snap"


def list_snapshots(data_dir: PathLike) -> List[Tuple[int, Path]]:
    """Every snapshot in the directory as ``(lsn, path)``, oldest first."""
    found = []
    for entry in Path(data_dir).iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return sorted(found)


def latest_snapshot(data_dir: PathLike) -> Optional[Tuple[int, Path]]:
    """The newest snapshot, or ``None`` for a virgin data directory."""
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        return None
    snapshots = list_snapshots(data_dir)
    return snapshots[-1] if snapshots else None


def prune_snapshots(data_dir: PathLike, keep: int) -> List[Path]:
    """Remove all but the ``keep`` newest snapshots; returns what went."""
    snapshots = list_snapshots(data_dir)
    doomed = snapshots[:-keep] if keep > 0 else snapshots
    removed = []
    for _, path in doomed:
        try:
            path.unlink()
            removed.append(path)
        except OSError:  # pragma: no cover - already gone / unremovable
            pass
    return removed


@dataclass(frozen=True)
class CompactionPolicy:
    """When to checkpoint, and how many old snapshots to keep around.

    ``checkpoint_every_records`` triggers on update count since the last
    checkpoint, ``max_wal_bytes`` on the WAL's on-disk size; either may be
    ``None`` to disable that trigger.  ``keep_snapshots`` is the safety
    margin of superseded snapshots retained for manual recovery (the
    newest one is always kept).
    """

    checkpoint_every_records: Optional[int] = 256
    max_wal_bytes: Optional[int] = 4 * 1024 * 1024
    keep_snapshots: int = 2

    def due(self, records_since_checkpoint: int, wal_bytes: int) -> bool:
        """``True`` when a checkpoint should run after the current record."""
        if records_since_checkpoint <= 0:
            return False  # nothing new to compact
        if self.checkpoint_every_records is not None and \
                records_since_checkpoint >= self.checkpoint_every_records:
            return True
        return self.max_wal_bytes is not None and \
            wal_bytes >= self.max_wal_bytes


def run_checkpoint(data_dir: PathLike,
                   save: Callable[[Path, dict], Path],
                   wal: WriteAheadLog, last_lsn: int,
                   keep_snapshots: int = 2,
                   sync: bool = True) -> WriteAheadLog:
    """Checkpoint the serving state at ``last_lsn`` and rotate the WAL.

    ``save`` is the backend's snapshot writer (``save(path, meta)`` — e.g.
    :meth:`~repro.engine.session.MaterializedProgram.save`); it must be
    atomic and leave the previous snapshot intact on failure, which the
    engine's tmp+rename save guarantees.  The caller must hold its write
    lock, so ``last_lsn`` describes exactly the state being serialized (a
    checkpoint-consistent cut).  Returns the fresh, rotated WAL; on any
    failure before the rotation the passed ``wal`` remains open and valid.
    """
    data_dir = Path(data_dir)
    target = snapshot_path(data_dir, last_lsn)
    save(target, {"wal": {"lsn": last_lsn, "file": WAL_NAME}})
    maybe_crash("checkpoint-after-snapshot")
    # The fresh log is created (and renamed over wal.log) *before* the old
    # handle is closed: if the creation fails (disk full, fd exhaustion),
    # the passed ``wal`` is still open and valid and the daemon keeps
    # appending to it.  The caller holds the write lock, so nothing can
    # append between the rename and the close.
    fresh = WriteAheadLog.create(wal.path, base_lsn=last_lsn, sync=sync)
    wal.close()
    maybe_crash("checkpoint-after-rotate")
    prune_snapshots(data_dir, keep_snapshots)
    return fresh
