"""Checkpointing, WAL segmentation and compaction for the serving daemon.

The daemon's data directory holds::

    data_dir/
        snapshot-<lsn, 16 digits>.snap   -- engine snapshots, newest wins
        wal-<base lsn, 16 digits>.log    -- WAL segments, highest base = live
        daemon.json                      -- live address (transient)

The WAL is **segmented**: each checkpoint seals the current segment and
starts a fresh one, ``wal-<lsn>.log``, based at the checkpoint's LSN.
Segments chain contiguously — each segment's base LSN equals the last
record LSN of its predecessor — so restoring *any* retained snapshot and
replaying every segment past its cut reproduces the live state; older
snapshots stay replayable for as long as their segments survive.  Only
whole segments are ever deleted (:func:`prune_segments`), and only once
the **oldest retained snapshot** no longer needs them — nothing is
truncated or rewritten in place.

A **checkpoint** is the compaction step: serialize the materialized state
to ``snapshot-<last applied LSN>.snap`` (atomic tmp+rename, with the LSN
recorded in the snapshot's ``meta`` so recovery knows the exact cut), then
start the next segment at that LSN, then drop superseded snapshots beyond
the configured safety margin and the segments none of the survivors need.
Every step is individually atomic and ordered so that a crash *anywhere*
inside a checkpoint leaves a recoverable directory:

* crash before the snapshot rename → previous snapshot + full segments;
* crash after the snapshot, before the rotation → new snapshot + old
  segments, whose records are all ≤ the snapshot's LSN and are skipped on
  replay (each record's LSN is compared against the snapshot ``meta``);
* crash after the rotation, before pruning → extra old snapshots and
  segments, removed by the next successful checkpoint.

A checkpoint that *fails* (:class:`~repro.errors.SnapshotError` — full
disk, unserializable value) is ordered save-first precisely so the
previous snapshot and the live segment are untouched: the daemon keeps
serving and retries at the next trigger.

Pre-segment data directories (a single ``wal.log``) are migrated on
recovery by :func:`migrate_legacy_wal` — a rename to the segment name the
log's own header declares.

:class:`CompactionPolicy` decides *when* to checkpoint: after every N
records, or when the live segment outgrows a byte budget — whichever
comes first.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from ..engine.snapshot import fsync_directory
from ..errors import WALCorruptionError
from .wal import WriteAheadLog, maybe_crash, scan_wal

PathLike = Union[str, Path]

#: the pre-segment (single-file) WAL name; migrated on recovery
LEGACY_WAL_NAME = "wal.log"
ADDRESS_NAME = "daemon.json"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.snap$")
_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.log$")


def address_path(data_dir: PathLike) -> Path:
    """The transient file advertising the live daemon's host/port."""
    return Path(data_dir) / ADDRESS_NAME


def snapshot_path(data_dir: PathLike, lsn: int) -> Path:
    """The snapshot file for a checkpoint taken at ``lsn``."""
    return Path(data_dir) / f"snapshot-{lsn:016d}.snap"


def segment_path(data_dir: PathLike, base_lsn: int) -> Path:
    """The WAL segment file based at ``base_lsn``."""
    return Path(data_dir) / f"wal-{base_lsn:016d}.log"


def list_snapshots(data_dir: PathLike) -> List[Tuple[int, Path]]:
    """Every snapshot in the directory as ``(lsn, path)``, oldest first."""
    found = []
    for entry in Path(data_dir).iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return sorted(found)


def latest_snapshot(data_dir: PathLike) -> Optional[Tuple[int, Path]]:
    """The newest snapshot, or ``None`` for a virgin data directory."""
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        return None
    snapshots = list_snapshots(data_dir)
    return snapshots[-1] if snapshots else None


def list_segments(data_dir: PathLike) -> List[Tuple[int, Path]]:
    """Every WAL segment as ``(base_lsn, path)``, oldest first."""
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        return []
    found = []
    for entry in data_dir.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return sorted(found)


def current_segment(data_dir: PathLike) -> Optional[Tuple[int, Path]]:
    """The live (highest-based) segment, or ``None`` when there is none."""
    segments = list_segments(data_dir)
    return segments[-1] if segments else None


def migrate_legacy_wal(data_dir: PathLike) -> Optional[Path]:
    """Rename a pre-segment ``wal.log`` to the segment name its own header
    declares (``wal-<base lsn>.log``); returns the new path, or ``None``
    when there is nothing to migrate.  The rename is atomic, so a crash
    mid-migration leaves either layout — both recoverable."""
    data_dir = Path(data_dir)
    legacy = data_dir / LEGACY_WAL_NAME
    if not legacy.exists():
        return None
    base_lsn = scan_wal(legacy).header["base_lsn"]
    target = segment_path(data_dir, base_lsn)
    if target.exists():
        raise WALCorruptionError(
            f"both the legacy {legacy.name} and the segment {target.name} "
            "exist; they claim the same base LSN — move one of them away "
            "before recovering")
    os.replace(legacy, target)
    fsync_directory(data_dir)
    return target


def prune_snapshots(data_dir: PathLike, keep: int) -> List[Path]:
    """Remove all but the ``keep`` newest snapshots; returns what went.

    The newest snapshot is never removed (``keep`` is clamped to 1) —
    recovery and replica seeding both need it, so ``keep <= 0`` means
    "no safety margin", not "delete everything"."""
    snapshots = list_snapshots(data_dir)
    doomed = snapshots[:-max(1, keep)]
    removed = []
    for _, path in doomed:
        try:
            path.unlink()
            removed.append(path)
        except OSError:  # pragma: no cover - already gone / unremovable
            pass
    return removed


def prune_segments(data_dir: PathLike, min_needed_lsn: int) -> List[Path]:
    """Remove whole segments that no retained snapshot needs.

    ``min_needed_lsn`` is the cut of the **oldest** snapshot still kept: a
    segment is prunable exactly when the *next* segment's base LSN is ≤
    that cut (every record it holds is already folded into all retained
    snapshots).  The live segment is never pruned.  Returns what went.
    """
    segments = list_segments(data_dir)
    removed = []
    for (_, path), (next_base, _) in zip(segments, segments[1:]):
        if next_base > min_needed_lsn:
            break
        try:
            path.unlink()
            removed.append(path)
        except OSError:  # pragma: no cover - already gone / unremovable
            break
    return removed


@dataclass(frozen=True)
class CompactionPolicy:
    """When to checkpoint, and how many old snapshots to keep around.

    ``checkpoint_every_records`` triggers on update count since the last
    checkpoint, ``max_wal_bytes`` on the live segment's on-disk size;
    either may be ``None`` to disable that trigger.  ``keep_snapshots`` is
    the safety margin of superseded snapshots retained for manual recovery
    (the newest one is always kept) — their WAL segments are retained with
    them, so each kept snapshot stays independently replayable.
    """

    checkpoint_every_records: Optional[int] = 256
    max_wal_bytes: Optional[int] = 4 * 1024 * 1024
    keep_snapshots: int = 2

    def due(self, records_since_checkpoint: int, wal_bytes: int) -> bool:
        """``True`` when a checkpoint should run after the current record."""
        if records_since_checkpoint <= 0:
            return False  # nothing new to compact
        if self.checkpoint_every_records is not None and \
                records_since_checkpoint >= self.checkpoint_every_records:
            return True
        return self.max_wal_bytes is not None and \
            wal_bytes >= self.max_wal_bytes


def run_checkpoint(data_dir: PathLike,
                   save: Callable[[Path, dict], Path],
                   wal: WriteAheadLog, last_lsn: int,
                   keep_snapshots: int = 2,
                   sync: bool = True) -> WriteAheadLog:
    """Checkpoint the serving state at ``last_lsn`` and rotate to a fresh
    segment.

    ``save`` is the backend's snapshot writer (``save(path, meta)`` — e.g.
    :meth:`~repro.engine.session.MaterializedProgram.save`); it must be
    atomic and leave the previous snapshot intact on failure, which the
    engine's tmp+rename save guarantees.  The caller must hold its write
    lock, so ``last_lsn`` describes exactly the state being serialized (a
    checkpoint-consistent cut).  Returns the fresh segment's WAL; on any
    failure before the rotation the passed ``wal`` remains open and valid.
    """
    data_dir = Path(data_dir)
    target = snapshot_path(data_dir, last_lsn)
    save(target, {"wal": {"lsn": last_lsn,
                          "segment": segment_path(data_dir, last_lsn).name}})
    maybe_crash("checkpoint-after-snapshot")
    # The next segment is created *before* the sealed one's handle is
    # closed: if the creation fails (disk full, fd exhaustion), the passed
    # ``wal`` is still open and valid and the daemon keeps appending to
    # it.  The caller holds the write lock, so nothing can append between
    # the creation and the close.
    fresh = WriteAheadLog.create(segment_path(data_dir, last_lsn),
                                 base_lsn=last_lsn, sync=sync)
    wal.close()
    maybe_crash("checkpoint-after-rotate")
    prune_snapshots(data_dir, keep_snapshots)
    retained = list_snapshots(data_dir)
    if retained:
        prune_segments(data_dir, retained[0][0])
    return fresh
